"""Tests for the corpus generators, static analyzers, and reporting."""

import pytest

from repro.baselines import (
    Mythril,
    Osiris,
    Oyente,
    Securify,
    Slither,
    STATIC_ANALYZERS,
)
from repro.compiler import compile_source
from repro.corpus import (
    compile_corpus,
    generate_d1,
    generate_d2,
    generate_d3,
)
from repro.corpus.d1 import D1_SIZE_THRESHOLD, classify_by_size
from repro.corpus.d2 import D2_CLASS_TOTALS, D2_CONTRACT_COUNT, class_totals
from repro.oracles.base import BugClass
from repro.reporting import (
    aggregate_fuzzer_detection,
    aggregate_static_detection,
    format_table,
    score_against_ground_truth,
)
from repro.reporting.results import BugDetectionCell, totals


@pytest.fixture(scope="module")
def d2_corpus():
    return generate_d2()


@pytest.fixture(scope="module")
def d1_small_sample():
    corpus = generate_d1(n_small=6, n_large=0, seed=3)
    return compile_corpus(corpus)


class TestD1Generator:
    def test_deterministic(self):
        first = generate_d1(n_small=3, n_large=1, seed=9)
        second = generate_d1(n_small=3, n_large=1, seed=9)
        assert [c.source for c in first] == [c.source for c in second]

    def test_all_compile(self, d1_small_sample):
        for contract in d1_small_sample:
            assert contract.artifact.runtime_code

    def test_size_split_matches_threshold(self):
        corpus = compile_corpus(generate_d1(n_small=3, n_large=2, seed=5))
        small, large = classify_by_size(corpus)
        assert all(c.instruction_count <= D1_SIZE_THRESHOLD for c in small)
        assert all(c.instruction_count > D1_SIZE_THRESHOLD for c in large)
        assert len(large) == 2

    def test_contracts_have_branches(self, d1_small_sample):
        for contract in d1_small_sample:
            assert contract.artifact.total_branches >= 4


class TestD2Generator:
    def test_contract_count(self, d2_corpus):
        assert len(d2_corpus) == D2_CONTRACT_COUNT

    def test_class_totals_match_paper(self, d2_corpus):
        assert class_totals(d2_corpus) == D2_CLASS_TOTALS

    def test_all_compile(self, d2_corpus):
        for contract in d2_corpus[:30]:
            assert contract.artifact.runtime_code

    def test_ef_contracts_have_no_ether_out(self, d2_corpus):
        from repro.analysis.disassembler import disassemble
        from repro.evm.opcodes import Op
        send_ops = {Op.CALL, Op.DELEGATECALL, Op.SELFDESTRUCT}
        for contract in d2_corpus:
            if BugClass.EF in contract.expected_bugs:
                present = {ins.opcode
                           for ins in disassemble(
                               contract.artifact.runtime_code)}
                assert not (present & send_ops), contract.name

    def test_deterministic(self):
        assert [c.source for c in generate_d2()] == \
            [c.source for c in generate_d2()]

    def test_multi_bug_contracts_exist(self, d2_corpus):
        multi = [c for c in d2_corpus if len(c.expected_bugs) == 2]
        assert len(multi) == sum(D2_CLASS_TOTALS.values()) - \
            D2_CONTRACT_COUNT


class TestD3Generator:
    def test_count_and_compile(self):
        corpus = compile_corpus(generate_d3(count=5, seed=1))
        assert len(corpus) == 5

    def test_injected_bug_profile_io_heavy(self):
        corpus = generate_d3(count=50, seed=2)
        with_io = sum(BugClass.IO in c.expected_bugs for c in corpus)
        with_us = sum(BugClass.US in c.expected_bugs for c in corpus)
        assert with_io > with_us

    def test_fp_bait_present(self):
        corpus = generate_d3(count=60, seed=3)
        assert any(c.benign_lookalikes for c in corpus)


VULNERABLE_PROXY = """
contract Proxy {
    function run(address target, uint256 data) public {
        target.delegatecall(data);
    }
}
"""

TIMESTAMP_LOTTERY = """
contract Lottery {
    uint256 wins = 0;
    function roll() public payable {
        if (block.timestamp % 10 == 1) { wins += 1; }
    }
}
"""


class TestStaticAnalyzers:
    def test_capability_matrix_matches_table1(self):
        assert BugClass.IO in Oyente.supported
        assert BugClass.UD not in Oyente.supported
        assert BugClass.EF not in Mythril.supported
        assert Securify.supported == {BugClass.RE, BugClass.UE}
        assert BugClass.IO not in Slither.supported
        assert BugClass.EF in Slither.supported

    def test_slither_finds_delegatecall_proxy(self):
        artifact = compile_source(VULNERABLE_PROXY)
        result = Slither().analyze(artifact)
        assert BugClass.UD in result.findings

    def test_oyente_flags_timestamp(self):
        artifact = compile_source(TIMESTAMP_LOTTERY)
        result = Oyente().analyze(artifact)
        assert BugClass.BD in result.findings

    def test_mythril_times_out_on_path_heavy_contract(self):
        corpus = generate_d3(count=3, seed=4)
        results = [Mythril().analyze(c.artifact) for c in corpus]
        assert any(r.timeout for r in results)

    def test_timeout_clears_findings(self):
        corpus = generate_d3(count=3, seed=4)
        for contract in corpus:
            result = Mythril().analyze(contract.artifact)
            if result.timeout:
                assert result.findings == set()

    def test_osiris_skips_guarded_arithmetic(self):
        guarded = compile_source("""
        contract Safe {
            uint256 total = 0;
            function add(uint256 v) public {
                require(total + v >= total);
                total += v;
            }
        }
        """)
        # the guard is a GT/LT-shaped comparison downstream of calldata
        result = Osiris().analyze(guarded)
        assert BugClass.IO not in result.findings

    def test_osiris_flags_unguarded_arithmetic(self):
        unguarded = compile_source("""
        contract Unsafe {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """)
        result = Osiris().analyze(unguarded)
        assert BugClass.IO in result.findings

    def test_all_tools_run_on_d2_sample(self, d2_corpus):
        for tool_cls in STATIC_ANALYZERS:
            tool = tool_cls()
            for contract in d2_corpus[:8]:
                result = tool.analyze(contract.artifact)
                assert result.findings <= set(tool.supported)

    def test_findings_restricted_to_supported(self):
        artifact = compile_source(TIMESTAMP_LOTTERY)
        result = Securify().analyze(artifact)  # BD unsupported
        assert BugClass.BD not in result.findings


class TestReporting:
    def test_score_against_ground_truth(self, d2_corpus):
        contract = d2_corpus[0]
        some_class = next(iter(contract.expected_bugs))
        tps, fns, fps = score_against_ground_truth(
            contract, {some_class, BugClass.TO})
        assert some_class in tps
        assert BugClass.TO in fps or BugClass.TO in contract.expected_bugs

    def test_lookalikes_not_counted_as_fp(self, d2_corpus):
        contract = next(c for c in d2_corpus if c.benign_lookalikes)
        lookalike = next(iter(contract.benign_lookalikes))
        _, _, fps = score_against_ground_truth(contract, {lookalike})
        assert lookalike not in fps

    def test_aggregate_static_detection_counts_failures(self, d2_corpus):
        sample = d2_corpus[:10]
        results = {c.name: Mythril().analyze(c.artifact) for c in sample}
        cells = aggregate_static_detection(sample, results)
        total = totals(cells)
        annotated = sum(len(c.expected_bugs) for c in sample)
        assert total.tp + total.fn + total.failed == annotated

    def test_cell_formatting(self):
        cell = BugDetectionCell(tp=3, fn=1, failed=2)
        assert str(cell) == "3 / 1 / 2"
        assert str(BugDetectionCell(supported=False)) == "n/a"

    def test_format_table_alignment(self):
        table = format_table(["tool", "cov"], [["MuFuzz", "90%"],
                                               ["sFuzz", "65%"]],
                             title="demo")
        lines = table.splitlines()
        assert "MuFuzz" in table
        assert len(lines[2].split("|")) == 2
