"""The campaign orchestrator: jobs, backends, store, determinism."""

from __future__ import annotations

import os

import pytest

from repro.core.campaign import CampaignResult
from repro.oracles.base import BugClass, Finding
from repro.orchestrator import (
    BACKENDS,
    CampaignJob,
    ResultStore,
    backend_for,
    build_matrix,
    create_backend,
    execute_job,
    merge_trials,
    run_jobs,
    run_matrix,
    summarize,
)
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE

BROKEN_SOURCE = "contract Broken { function f( public"

#: tiny budget: orchestration behaviour, not fuzzing quality, is under test
FAST = {"iterations": 15}

#: parallel worker count for the backend-parity tests; CI sweeps 1/2/4
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def _job(**kw) -> CampaignJob:
    base = dict(name="Crowdsale", source=CROWDSALE_SOURCE,
                preset="mufuzz", overrides=dict(FAST))
    base.update(kw)
    return CampaignJob(**base)


class TestJobModel:
    def test_trial_seeds_are_distinct_and_stable(self):
        seeds = [_job(trial=t).derived_seed() for t in range(10)]
        assert len(set(seeds)) == 10
        assert seeds == [_job(trial=t).derived_seed() for t in range(10)]

    def test_seed_varies_along_every_matrix_axis(self):
        base = _job().derived_seed()
        assert _job(preset="sfuzz").derived_seed() != base
        assert _job(name="Other").derived_seed() != base
        assert _job(base_seed=2).derived_seed() != base

    def test_explicit_rng_seed_bypasses_derivation(self):
        job = _job(overrides={"rng_seed": 17})
        assert job.derived_seed() == 17
        assert job.build_config().rng_seed == 17

    def test_config_comes_from_preset_registry(self):
        config = _job(overrides={"iterations": 33}).build_config()
        assert config.name == "MuFuzz"
        assert config.iterations == 33
        with pytest.raises(ValueError):
            _job(preset="nonesuch").build_config()

    def test_job_id_is_filesystem_safe(self):
        job_id = _job(name="weird name/../x").job_id
        assert "/" not in job_id and " " not in job_id

    def test_fingerprint_tracks_content(self):
        assert _job().fingerprint() == _job().fingerprint()
        assert _job().fingerprint() != _job(source=GAME_SOURCE).fingerprint()
        assert _job().fingerprint() != \
            _job(overrides={"iterations": 16}).fingerprint()

    def test_supported_classes_round_trip(self):
        job = _job(supported_bug_classes=["RE", "IO"])
        assert job.supported_set() == {BugClass.RE, BugClass.IO}
        assert CampaignJob.from_dict(job.to_dict()) == job

    def test_build_matrix_shape_and_uniqueness(self):
        jobs = build_matrix(
            [("Crowdsale", CROWDSALE_SOURCE), ("Game", GAME_SOURCE)],
            presets=("mufuzz", "sfuzz"), trials=2)
        assert len(jobs) == 8
        assert len({job.job_id for job in jobs}) == 8

    def test_build_matrix_rejects_duplicate_contract_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            build_matrix([("A", CROWDSALE_SOURCE), ("A", GAME_SOURCE)],
                         presets=("mufuzz",))


class TestExecuteJob:
    def test_ok_outcome_carries_result(self):
        outcome = execute_job(_job())
        assert outcome.ok and outcome.status == "ok"
        assert isinstance(outcome.result, CampaignResult)
        assert outcome.result.iterations > 0

    def test_compile_error_is_captured_not_raised(self):
        outcome = execute_job(_job(name="Broken", source=BROKEN_SOURCE))
        assert outcome.status == "error"
        assert outcome.result is None
        assert outcome.error  # traceback text


class TestResultStore:
    def test_save_load_round_trip(self, tmp_path):
        job = _job()
        outcome = execute_job(job)
        store = ResultStore(tmp_path)
        assert store.save(outcome) is not None
        loaded = store.load(job)
        assert loaded is not None and loaded.ok
        # wall-clock time is normalized out of the canonical artifact
        expected = CampaignResult.from_dict(
            {**outcome.result.to_dict(), "wall_time": 0.0})
        assert loaded.result == expected

    def test_stale_fingerprint_is_not_reused(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(execute_job(_job()))
        edited = _job(source=CROWDSALE_SOURCE + "\n// edited\n")
        assert store.path_for(edited) == store.path_for(_job())
        assert store.load(edited) is None

    def test_failures_are_not_persisted(self, tmp_path):
        store = ResultStore(tmp_path)
        outcome = execute_job(_job(name="Broken", source=BROKEN_SOURCE))
        assert store.save(outcome) is None
        assert store.completed_ids() == set()

    def test_persisted_bytes_are_reproducible(self, tmp_path):
        job = _job()
        store = ResultStore(tmp_path)
        store.save(execute_job(job))
        first = store.canonical_records()[job.job_id]
        store.save(execute_job(job))
        assert store.canonical_records()[job.job_id] == first

    def test_canonical_records_identical_across_backends(self, tmp_path):
        """The byte-identity surface: both store backends persist the
        exact same canonical record text for the same outcome, and the
        sqlite export materializes the json backend's files."""
        outcome = execute_job(_job())
        stores = {name: ResultStore(tmp_path / name, backend=name)
                  for name in ("json", "sqlite")}
        for store in stores.values():
            store.save(outcome)
        canon = {name: store.canonical_records()
                 for name, store in stores.items()}
        assert canon["json"] == canon["sqlite"]
        exported = stores["sqlite"].export(tmp_path / "exported")
        assert [p.read_text() for p in exported] == \
            [stores["json"].path_for(_job()).read_text()]


class TestRunMatrix:
    def test_resume_skips_completed_jobs(self, tmp_path):
        contracts = [("Crowdsale", CROWDSALE_SOURCE)]
        kw = dict(presets=("mufuzz", "sfuzz"), trials=2, overrides=FAST,
                  workers=1, results_dir=tmp_path)
        first = run_matrix(contracts, **kw)
        assert first.executed == 4 and first.cached == 0
        second = run_matrix(contracts, **kw)
        assert second.executed == 0 and second.cached == 4
        assert [(o.job.job_id, o.result) for o in second.outcomes] == \
            [(o.job.job_id,
              CampaignResult.from_dict(
                  {**o.result.to_dict(), "wall_time": 0.0}))
             for o in first.outcomes]

    def test_budget_specs_fold_into_every_job(self):
        """run_matrix's budget parameters reach each campaign's config
        and govern it through the engine's single Budget authority."""
        run = run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                         presets=("mufuzz",),
                         overrides={"iterations": None, "rng_seed": 5},
                         tx_budget=120, workers=1)
        (result,) = (o.result for o in run.outcomes)
        assert result.transactions >= 120

    def test_budget_spec_conflicts_with_override(self):
        with pytest.raises(ValueError, match="tx_budget"):
            run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                       presets=("mufuzz",),
                       overrides={"iterations": None, "tx_budget": 5},
                       tx_budget=120, workers=1)

    def test_one_broken_contract_does_not_kill_the_matrix(self):
        run = run_matrix(
            [("Crowdsale", CROWDSALE_SOURCE), ("Broken", BROKEN_SOURCE)],
            presets=("mufuzz",), overrides=FAST, workers=1)
        assert len(run.errors) == 1
        assert run.errors[0].job.name == "Broken"
        assert [job.name for job, _ in run.ok_results()] == ["Crowdsale"]

    def test_summaries_aggregate_trials(self):
        run = run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                         presets=("mufuzz",), trials=3, overrides=FAST,
                         workers=1)
        (summary,) = summarize(run.outcomes)
        assert summary.trials == 3
        results = run.results_for("mufuzz")["Crowdsale"]
        assert summary.mean_coverage == pytest.approx(
            sum(r.coverage for r in results) / 3)
        assert summary.best_coverage == max(r.coverage for r in results)


class TestBackends:
    """The pluggable execution backends: registry and auto-selection,
    the three-way determinism guard, compile-cache amortization, worker
    recycling, and timeout kill-and-respawn."""

    def test_registry_and_auto_selection(self):
        assert set(BACKENDS) == {"inline", "spawn", "pool"}
        assert backend_for(workers=1, job_timeout=None) == "inline"
        assert backend_for(workers=4, job_timeout=None) == "pool"
        assert backend_for(workers=1, job_timeout=5.0) == "pool"
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("nonesuch")

    def test_inline_rejects_job_timeout(self):
        with pytest.raises(ValueError, match="inline"):
            create_backend("inline", job_timeout=1.0)

    def test_invalid_recycle_after_rejected(self):
        with pytest.raises(ValueError, match="recycle_after"):
            create_backend("pool", recycle_after=-5)
        with pytest.raises(ValueError, match="recycle_after"):
            create_backend("pool", recycle_after=0.5)  # would truncate to 0
        with pytest.raises(ValueError, match="recycle_after"):
            create_backend("pool", recycle_after=2.5)  # silent truncation
        # 0 and None both mean "never recycle"
        assert create_backend("pool", recycle_after=0).recycle_after is None
        assert create_backend("pool").recycle_after is None

    def test_all_backends_byte_identical(self, tmp_path):
        """The determinism guard: every backend must persist exactly the
        same bytes for the same matrix, at any worker count (CI sweeps
        ``REPRO_TEST_WORKERS`` over 1, 2, and 4)."""
        contracts = [("Crowdsale", CROWDSALE_SOURCE), ("Game", GAME_SOURCE)]
        kw = dict(presets=("mufuzz", "sfuzz"), trials=2, overrides=FAST)
        persisted = {}
        for backend in sorted(BACKENDS):
            results_dir = tmp_path / backend
            run = run_matrix(contracts, backend=backend, workers=WORKERS,
                             results_dir=results_dir, **kw)
            assert not run.errors and not run.timeouts, backend
            assert run.backend == backend
            assert run.executed == 8
            persisted[backend] = ResultStore(results_dir) \
                .canonical_records()
        assert len(persisted["inline"]) == 8
        assert persisted["inline"] == persisted["spawn"] == \
            persisted["pool"]

    @pytest.mark.skipif(os.environ.get("REPRO_TEST_WORKERS") is not None,
                        reason="wall-clock comparison: once per suite is "
                               "enough; skip in the CI worker sweep")
    def test_pool_amortizes_compilation_and_beats_spawn(self):
        """20 cells over 2 contracts: each pool worker compiles each
        contract at most once (hits >= cells - contracts x workers), and
        skipping per-job interpreter boot + import + compile makes the
        pool measurably faster than spawn at the same worker count."""
        contracts = [("Crowdsale", CROWDSALE_SOURCE), ("Game", GAME_SOURCE)]
        kw = dict(presets=("mufuzz", "sfuzz"), trials=5, overrides=FAST,
                  workers=2)
        pool = run_matrix(contracts, backend="pool", **kw)
        spawn = run_matrix(contracts, backend="spawn", **kw)
        assert not pool.errors and not spawn.errors
        assert pool.executed == spawn.executed == 20
        assert pool.stats["compile_cache_hits"] >= 20 - 2 * 2
        assert pool.stats["compile_cache_misses"] <= 2 * 2
        assert spawn.stats["compile_cache_hits"] == 0  # always-cold caches
        assert pool.elapsed < spawn.elapsed, \
            f"pool {pool.elapsed:.2f}s vs spawn {spawn.elapsed:.2f}s"

    def test_pool_recycles_workers_after_quota(self):
        jobs = build_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                            presets=("mufuzz",), trials=6, overrides=FAST)
        engine = create_backend("pool", workers=1, recycle_after=2)
        outcomes = engine.run(jobs)
        assert all(o.ok for o in outcomes)
        assert engine.stats["workers_recycled"] == 2
        # every fresh incarnation recompiles once: recycling trades cache
        # warmth for bounded per-process memory
        assert engine.stats["compile_cache_misses"] == 3
        assert engine.stats["compile_cache_hits"] == 3

    def test_pool_timeout_kills_worker_and_queue_continues(self):
        hang = _job(name="Hang", overrides={"iterations": 50_000_000})
        fast = [_job(trial=t) for t in range(4)]
        engine = create_backend("pool", workers=2, job_timeout=2.0)
        outcomes = engine.run([hang] + fast)
        by_id = {o.job.job_id: o for o in outcomes}
        assert by_id["Hang__mufuzz__t000"].status == "timeout"
        assert "timeout" in by_id["Hang__mufuzz__t000"].error
        assert all(o.ok for job_id, o in by_id.items()
                   if job_id != "Hang__mufuzz__t000")
        assert engine.stats["workers_killed"] == 1

    def test_spawn_timeout_and_error_parity(self):
        """The spawn backend keeps the guarantees the pool advertises as
        'everything spawn guarantees': timeout kill, captured per-job
        errors, and unaffected neighbours — tested on spawn explicitly
        now that run_jobs auto-selects the pool."""
        hang = _job(name="Hang", overrides={"iterations": 50_000_000})
        broken = _job(name="Broken", source=BROKEN_SOURCE)
        engine = create_backend("spawn", workers=2, job_timeout=2.0)
        outcomes = engine.run([hang, broken, _job()])
        by_name = {o.job.name: o for o in outcomes}
        assert by_name["Hang"].status == "timeout"
        assert "timeout" in by_name["Hang"].error
        assert by_name["Broken"].status == "error"
        assert "Traceback" in by_name["Broken"].error
        assert by_name["Crowdsale"].ok
        assert engine.stats["workers_killed"] == 1

    def test_pool_isolates_a_broken_job(self):
        jobs = build_matrix(
            [("Crowdsale", CROWDSALE_SOURCE), ("Broken", BROKEN_SOURCE)],
            presets=("mufuzz",), trials=2, overrides=FAST)
        outcomes = run_jobs(jobs, workers=2, backend="pool")
        by_name: dict = {}
        for outcome in outcomes:
            by_name.setdefault(outcome.job.name, []).append(outcome)
        assert all(o.ok for o in by_name["Crowdsale"])
        assert all(o.status == "error" for o in by_name["Broken"])
        assert "Traceback" in by_name["Broken"][0].error


class TestParallelExecution:
    """The worker-pool path: spawn processes, crash capture, timeouts, and
    the determinism guard — parallel runs must persist byte-identical
    results to a serial run of the same matrix."""

    def test_parallel_run_matches_serial_byte_for_byte(self, tmp_path):
        contracts = [("Crowdsale", CROWDSALE_SOURCE), ("Game", GAME_SOURCE)]
        kw = dict(presets=("mufuzz", "sfuzz"), trials=1, overrides=FAST)
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial = run_matrix(contracts, workers=1, results_dir=serial_dir,
                            **kw)
        parallel = run_matrix(contracts, workers=2,
                              results_dir=parallel_dir, **kw)
        assert not serial.errors and not parallel.errors
        serial_records = ResultStore(serial_dir).canonical_records()
        parallel_records = ResultStore(parallel_dir).canonical_records()
        assert sorted(serial_records) == sorted(parallel_records)
        assert len(serial_records) == 4
        for job_id, text in serial_records.items():
            assert parallel_records[job_id] == text, job_id

    def test_worker_error_is_captured_and_others_finish(self):
        jobs = build_matrix(
            [("Crowdsale", CROWDSALE_SOURCE), ("Broken", BROKEN_SOURCE)],
            presets=("mufuzz",), overrides=FAST)
        outcomes = run_jobs(jobs, workers=2)
        by_name = {o.job.name: o for o in outcomes}
        assert by_name["Crowdsale"].ok
        assert by_name["Broken"].status == "error"
        assert "Traceback" in by_name["Broken"].error

    def test_job_timeout_terminates_the_worker(self):
        job = _job(overrides={"iterations": 50_000_000})
        (outcome,) = run_jobs([job], workers=2, job_timeout=1.0)
        assert outcome.status == "timeout"
        assert outcome.result is None
        assert "timeout" in outcome.error


class TestMergeTrials:
    def _result(self, coverage, findings=()):
        return CampaignResult(
            fuzzer="MuFuzz", contract="C", coverage=coverage,
            iterations=10, total_steps=100, wall_time=0.1,
            findings=list(findings), curve=[(50, coverage)])

    def test_merges_mean_coverage_and_unions_findings(self):
        reentrancy = Finding(bug_class=BugClass.RE, contract="C", pc=4,
                             line=2, description="re")
        overflow = Finding(bug_class=BugClass.IO, contract="C", pc=9,
                           line=3, description="io")
        merged = merge_trials([
            self._result(0.4, [reentrancy]),
            self._result(0.8, [reentrancy, overflow]),
        ])
        assert merged.coverage == pytest.approx(0.6)
        assert merged.bug_classes == {BugClass.RE, BugClass.IO}
        assert len(merged.findings) == 2  # deduplicated union
        assert merged.iterations == 20

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_trials([])
