"""Oracle tests: each bug class has a triggering and a non-triggering case."""

import pytest

from repro.chain import Chain, ReentrantAgent, RejectingAgent
from repro.chain.transactions import Transaction
from repro.compiler import compile_source, encode_call
from repro.evm.opcodes import Op
from repro.oracles import BugClass, OracleContext, all_oracles, oracle_for
from repro.oracles.base import FindingCollector
from tests.conftest import ALICE, BOB

ATTACKER = 0x999
REJECTOR = 0x888


class Harness:
    """Deploy a contract, run transactions, collect oracle findings."""

    def __init__(self, source: str, deploy_value: int = 10 ** 18) -> None:
        self.chain = Chain()
        self.chain.create_account(ALICE)
        self.chain.create_account(BOB)
        self.agent = ReentrantAgent(ATTACKER)
        self.chain.register_agent(ATTACKER, self.agent)
        self.chain.register_agent(REJECTOR, RejectingAgent())
        self.artifact = compile_source(source)
        self.deployed = self.chain.deploy(self.artifact, sender=ALICE,
                                          value=deploy_value)
        self.ctx = OracleContext(
            artifact=self.artifact, address=self.deployed.address,
            deployer=ALICE,
            attacker_addresses=frozenset({ATTACKER, REJECTOR}))
        self.oracles = all_oracles()
        self.collector = FindingCollector()

    def call(self, function: str, *args, sender: int = ALICE,
             value: int = 0, arm: bool = True):
        fn = self.artifact.abi.function(function)
        data = encode_call(fn, list(args))
        if arm:
            self.agent.arm(data)
        receipt = self.chain.apply(Transaction(
            sender=sender, to=self.deployed.address, value=value, data=data))
        for oracle in self.oracles:
            self.collector.extend(oracle.on_receipt(receipt, self.ctx))
        return receipt

    def finalize(self) -> set:
        for oracle in self.oracles:
            self.collector.extend(oracle.finalize(self.ctx))
        return self.collector.classes()

    @property
    def classes(self) -> set:
        return self.collector.classes()


class TestBlockDependency:
    def test_timestamp_branch_flagged(self):
        harness = Harness("""
        contract T {
            uint256 wins = 0;
            function roll() public {
                if (block.timestamp % 10 == 3) { wins += 1; }
            }
        }
        """)
        harness.call("roll")
        assert BugClass.BD in harness.classes

    def test_block_number_branch_flagged(self):
        harness = Harness("""
        contract T {
            uint256 wins = 0;
            function roll() public {
                if (block.number > 100) { wins += 1; }
            }
        }
        """)
        harness.call("roll")
        assert BugClass.BD in harness.classes

    def test_timestamp_stored_without_branch_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 last = 0;
            function ping() public { last = block.timestamp; }
        }
        """)
        harness.call("ping")
        assert BugClass.BD not in harness.classes

    def test_taint_through_storage_across_transactions(self):
        harness = Harness("""
        contract T {
            uint256 seed = 0;
            uint256 wins = 0;
            function set() public { seed = block.timestamp; }
            function use() public { if (seed % 2 == 0) { wins += 1; } }
        }
        """)
        harness.call("set")
        harness.call("use")
        assert BugClass.BD in harness.classes


class TestUnprotectedDelegatecall:
    def test_calldata_target_unguarded_flagged(self):
        harness = Harness("""
        contract T {
            function run(address target, uint256 data) public {
                target.delegatecall(data);
            }
        }
        """)
        harness.call("run", BOB, 1)
        assert BugClass.UD in harness.classes

    def test_guarded_delegatecall_not_flagged(self):
        harness = Harness("""
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function run(address target, uint256 data) public {
                require(msg.sender == owner);
                target.delegatecall(data);
            }
        }
        """)
        harness.call("run", BOB, 1, sender=ALICE)
        assert BugClass.UD not in harness.classes

    def test_fixed_target_not_flagged(self):
        harness = Harness("""
        contract T {
            address lib;
            constructor() public { lib = msg.sender; }
            function run(uint256 data) public { lib.delegatecall(data); }
        }
        """)
        harness.call("run", 1)
        assert BugClass.UD not in harness.classes


class TestEtherFreeze:
    def test_deposit_only_contract_flagged(self):
        harness = Harness("""
        contract T {
            mapping(address => uint256) deposits;
            function put() public payable { deposits[msg.sender] += msg.value; }
        }
        """, deploy_value=0)
        harness.call("put", value=1000)
        assert BugClass.EF in harness.finalize()

    def test_contract_with_withdraw_not_flagged(self):
        harness = Harness("""
        contract T {
            function put() public payable {}
            function take(uint256 v) public { msg.sender.transfer(v); }
        }
        """)
        harness.call("put", value=1000)
        assert BugClass.EF not in harness.finalize()

    def test_never_receives_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 x = 0;
            function poke() public { x += 1; }
        }
        """, deploy_value=0)
        harness.call("poke")
        assert BugClass.EF not in harness.finalize()


class TestIntegerOverflow:
    def test_add_overflow_flagged(self):
        harness = Harness("""
        contract T {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """)
        harness.call("add", (1 << 256) - 1)
        harness.call("add", 2)
        assert BugClass.IO in harness.classes

    def test_sub_underflow_flagged(self):
        harness = Harness("""
        contract T {
            mapping(address => uint256) bal;
            function take(uint256 v) public { bal[msg.sender] -= v; }
        }
        """)
        harness.call("take", 1)
        assert BugClass.IO in harness.classes

    def test_guarded_arithmetic_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 total = 0;
            function add(uint256 v) public {
                require(total + v >= total);
                total += v;
            }
        }
        """)
        harness.call("add", (1 << 256) - 1)
        harness.call("add", 2)  # reverts: overflow is caught by the guard
        assert BugClass.IO not in harness.classes

    def test_normal_arithmetic_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """)
        harness.call("add", 10)
        harness.call("add", 20)
        assert BugClass.IO not in harness.classes


class TestReentrancy:
    VULNERABLE = """
    contract T {
        mapping(address => uint256) shares;
        function join() public payable { shares[msg.sender] += msg.value; }
        function redeem() public {
            uint256 owed = shares[msg.sender];
            if (owed > 0) {
                bool sent = msg.sender.call.value(owed)();
                require(sent);
                shares[msg.sender] = 0;
            }
        }
    }
    """

    def test_dao_pattern_flagged(self):
        harness = Harness(self.VULNERABLE)
        harness.call("join", sender=ALICE, value=10_000, arm=False)
        harness.call("join", sender=ATTACKER, value=1_000, arm=False)
        harness.call("redeem", sender=ATTACKER)
        assert BugClass.RE in harness.classes

    def test_transfer_based_withdraw_not_flagged(self):
        harness = Harness("""
        contract T {
            mapping(address => uint256) shares;
            function join() public payable { shares[msg.sender] += msg.value; }
            function redeem() public {
                uint256 owed = shares[msg.sender];
                shares[msg.sender] = 0;
                msg.sender.transfer(owed);
            }
        }
        """)
        harness.call("join", sender=ATTACKER, value=1_000, arm=False)
        harness.call("redeem", sender=ATTACKER)
        assert BugClass.RE not in harness.classes

    def test_no_reentry_without_attacker_share(self):
        harness = Harness(self.VULNERABLE)
        harness.call("join", sender=ALICE, value=10_000, arm=False)
        harness.call("redeem", sender=BOB)
        assert BugClass.RE not in harness.classes


class TestUnprotectedSelfDestruct:
    def test_anyone_can_kill_flagged(self):
        harness = Harness("""
        contract T {
            function kill() public { selfdestruct(msg.sender); }
        }
        """)
        harness.call("kill", sender=BOB)
        assert BugClass.US in harness.classes

    def test_owner_guarded_kill_not_flagged(self):
        harness = Harness("""
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function kill() public {
                require(msg.sender == owner);
                selfdestruct(owner);
            }
        }
        """)
        harness.call("kill", sender=BOB)     # reverts
        harness.call("kill", sender=ALICE)   # deployer destroys own contract
        assert BugClass.US not in harness.classes


class TestStrictEquality:
    def test_balance_equality_flagged(self):
        harness = Harness("""
        contract T {
            uint256 bonus = 0;
            function check() public {
                if (this.balance == 88 finney) { bonus = 1; }
            }
        }
        """)
        harness.call("check")
        assert BugClass.SE in harness.classes

    def test_balance_inequality_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 ok = 0;
            function check() public {
                if (this.balance >= 1 finney) { ok = 1; }
            }
        }
        """)
        harness.call("check")
        assert BugClass.SE not in harness.classes

    def test_plain_equality_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 ok = 0;
            function check(uint256 v) public {
                if (v == 88) { ok = 1; }
            }
        }
        """)
        harness.call("check", 88)
        assert BugClass.SE not in harness.classes


class TestTxOrigin:
    def test_origin_auth_flagged(self):
        harness = Harness("""
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function claim() public { require(tx.origin == owner); }
        }
        """)
        harness.call("claim")
        assert BugClass.TO in harness.classes

    def test_sender_auth_not_flagged(self):
        harness = Harness("""
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function claim() public { require(msg.sender == owner); }
        }
        """)
        harness.call("claim")
        assert BugClass.TO not in harness.classes


class TestUnhandledException:
    def test_failed_unchecked_send_flagged(self):
        harness = Harness("""
        contract T {
            function pay(address to, uint256 v) public { to.send(v); }
        }
        """)
        harness.call("pay", REJECTOR, 100)
        assert BugClass.UE in harness.classes

    def test_successful_send_not_flagged(self):
        harness = Harness("""
        contract T {
            function pay(address to, uint256 v) public { to.send(v); }
        }
        """)
        harness.call("pay", BOB, 100)
        assert BugClass.UE not in harness.classes

    def test_checked_send_not_flagged(self):
        harness = Harness("""
        contract T {
            function pay(address to, uint256 v) public {
                require(to.send(v));
            }
        }
        """)
        harness.call("pay", REJECTOR, 100)  # reverts, but flag was checked
        assert BugClass.UE not in harness.classes

    def test_if_checked_send_not_flagged(self):
        harness = Harness("""
        contract T {
            uint256 failures = 0;
            function pay(address to, uint256 v) public {
                bool ok = to.send(v);
                if (!ok) { failures += 1; }
            }
        }
        """)
        harness.call("pay", REJECTOR, 100)
        assert BugClass.UE not in harness.classes


class TestInfrastructure:
    def test_findings_deduplicate_by_pc(self):
        harness = Harness("""
        contract T {
            uint256 wins = 0;
            function roll() public {
                if (block.timestamp % 10 == 3) { wins += 1; }
            }
        }
        """)
        harness.call("roll")
        harness.call("roll")
        bd = [f for f in harness.collector.all()
              if f.bug_class == BugClass.BD]
        assert len(bd) == 1

    def test_findings_carry_source_lines(self):
        harness = Harness("""
        contract T {
            function kill() public { selfdestruct(msg.sender); }
        }
        """)
        harness.call("kill", sender=BOB)
        finding = harness.collector.all()[0]
        assert finding.line == 3

    def test_oracle_registry_covers_all_classes(self):
        oracles = all_oracles()
        assert {o.bug_class for o in oracles} == set(BugClass)

    def test_oracle_subset_restriction(self):
        oracles = all_oracles({BugClass.RE, BugClass.UE})
        assert {o.bug_class for o in oracles} == {BugClass.RE, BugClass.UE}

    def test_oracle_for_single_class(self):
        assert oracle_for(BugClass.IO).bug_class == BugClass.IO


class TestRevertedSubcallRegressions:
    """Oracles must not fire on state recorded inside a subcall that later
    reverted — the machine rolls those trace events back (the ether-freeze
    and overflow cases from the trace-pollution fix)."""

    TRIVIAL_NO_SEND = """
    contract Hoarder {
        uint256 total = 0;
        function poke() public { total = total + 1; }
    }
    """

    def _receipt_from_raw(self, callee_code: bytes, cut: int,
                          value: int = 0):
        """Run an attacker frame that CALLs ``cut`` (which reverts) and
        wrap the resulting trace in a successful receipt."""
        from repro.chain.blockchain import BlockContext
        from repro.chain.state import WorldState
        from repro.chain.transactions import Transaction, TransactionReceipt
        from repro.evm.machine import Machine, Message
        from tests.test_evm import asm, push1

        world = WorldState()
        world.account(cut)
        world.set_code(cut, callee_code)
        world.account(0xA77)
        world.set_balance(0xA77, 10 ** 6)
        machine = Machine(world, BlockContext())
        outer = asm(push1(0), push1(0), push1(0), push1(0), (value, 2),
                    (cut, 2), (100000, 3), Op.CALL, Op.STOP)
        msg = Message(address=0xA77, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=outer)
        result = machine.execute(msg)
        assert result.success
        tx = Transaction(sender=0xB, to=0xA77)
        return TransactionReceipt(tx=tx, success=True, trace=machine.trace)

    def test_ether_freeze_not_fired_on_reverted_receive(self):
        from repro.oracles.ether_freeze import EtherFreezeOracle
        from repro.compiler import compile_source
        from repro.oracles import OracleContext
        from tests.test_evm import asm, push1

        artifact = compile_source(self.TRIVIAL_NO_SEND)
        cut = 0xC07
        # the contract under test receives ether, then reverts the frame:
        # the transfer rolled back, so no ether was actually frozen
        receipt = self._receipt_from_raw(
            asm(push1(0), push1(0), Op.REVERT), cut, value=500)
        ctx = OracleContext(artifact=artifact, address=cut, deployer=ALICE)
        oracle = EtherFreezeOracle()
        assert list(oracle.on_receipt(receipt, ctx)) == []
        assert list(oracle.finalize(ctx)) == []

    def test_overflow_in_reverted_subcall_not_reported(self):
        from repro.oracles.overflow import IntegerOverflowOracle
        from repro.compiler import compile_source
        from repro.oracles import OracleContext
        from tests.test_evm import asm, push1

        artifact = compile_source(self.TRIVIAL_NO_SEND)
        cut = 0xC07
        callee = asm(push1(2), ((1 << 256) - 1, 32), Op.ADD, Op.POP,
                     push1(0), push1(0), Op.REVERT)
        receipt = self._receipt_from_raw(callee, cut)
        ctx = OracleContext(artifact=artifact, address=cut, deployer=ALICE)
        oracle = IntegerOverflowOracle()
        assert list(oracle.on_receipt(receipt, ctx)) == []
