"""Unit tests for the analysis layer: disassembler, CFG, data-flow, prefix."""

import pytest

from repro.analysis import (
    analyze_contract,
    build_cfg,
    disassemble,
    jumpi_pcs,
    PrefixAnalyzer,
)
from repro.analysis import surface as surface_mod
from repro.analysis.surface import (
    BUG_CLASS_CODES,
    SurfaceDataflow,
    compute_surface,
    surface_for,
)
from repro.analysis.distance import (
    UNSEEN_DISTANCE,
    distances_from_trace,
    seed_distance,
)
from repro.compiler import compile_source
from repro.evm.opcodes import Op
from repro.evm.trace import BranchEvent, ExecutionTrace
from repro.lang.parser import parse_source
from tests.conftest import CROWDSALE_SOURCE
from tests.test_oracles import Harness


class TestDisassembler:
    def test_simple_sequence(self):
        code = bytes([Op.CALLER, Op.ORIGIN, Op.EQ, Op.STOP])
        instructions = disassemble(code)
        assert [i.name for i in instructions] == [
            "CALLER", "ORIGIN", "EQ", "STOP"]

    def test_push_operand_decoded(self):
        code = bytes([0x61, 0x12, 0x34, Op.STOP])  # PUSH2 0x1234
        instructions = disassemble(code)
        assert instructions[0].operand == 0x1234
        assert instructions[1].pc == 3

    def test_truncated_push_zero_pads_right(self):
        # PUSH3 with 1 byte of data: the EVM reads the two missing
        # immediate bytes as zero, so the value is 0x010000, not 1.
        code = bytes([0x62, 0x01])
        instructions = disassemble(code)
        assert instructions[0].operand == 0x010000

    def test_jumpi_pcs(self, crowdsale_artifact):
        pcs = jumpi_pcs(crowdsale_artifact.runtime_code)
        assert pcs == sorted(crowdsale_artifact.branch_info)


class TestCFG:
    def test_blocks_partition_code(self, crowdsale_artifact):
        cfg = build_cfg(crowdsale_artifact.runtime_code)
        instruction_count = len(disassemble(crowdsale_artifact.runtime_code))
        total = sum(len(b.instructions) for b in cfg.blocks.values())
        assert total == instruction_count

    def test_jumpi_block_has_two_successors(self, crowdsale_artifact):
        cfg = build_cfg(crowdsale_artifact.runtime_code)
        jumpi_blocks = [b for b in cfg.blocks.values()
                        if b.terminator.opcode == Op.JUMPI]
        assert jumpi_blocks
        for block in jumpi_blocks:
            assert len(block.successors) == 2

    def test_revert_block_has_no_successors(self, crowdsale_artifact):
        cfg = build_cfg(crowdsale_artifact.runtime_code)
        for block in cfg.blocks.values():
            if block.terminator.opcode == Op.REVERT:
                assert block.successors == []

    def test_block_at_lookup(self, crowdsale_artifact):
        cfg = build_cfg(crowdsale_artifact.runtime_code)
        for pc in jumpi_pcs(crowdsale_artifact.runtime_code):
            block = cfg.block_at(pc)
            assert block is not None
            assert block.terminator.pc == pc

    def test_reachability_finds_call_from_entry(self, crowdsale_artifact):
        cfg = build_cfg(crowdsale_artifact.runtime_code)
        reachable = cfg.reachable_opcodes_from(0)
        assert Op.CALL in reachable  # transfers exist downstream of entry


class TestDataflow:
    def test_crowdsale_read_write_sets(self):
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        dataflow = analyze_contract(contract)
        invest = dataflow.of("invest")
        assert invest.writes == {"invests", "invested", "phase"}
        assert {"invested", "goal"} <= invest.reads
        refund = dataflow.of("refund")
        assert "phase" in refund.reads
        assert refund.writes == {"invests"}
        withdraw = dataflow.of("withdraw")
        assert {"phase", "invested", "owner"} <= withdraw.reads
        assert withdraw.writes == set()

    def test_crowdsale_raw_self_dependency(self):
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        dataflow = analyze_contract(contract)
        assert "invested" in dataflow.of("invest").raw_self_deps
        assert "invests" in dataflow.of("invest").raw_self_deps

    def test_crowdsale_repeat_candidates(self):
        """The paper's core example: invest must be repeatable (§IV-A)."""
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        dataflow = analyze_contract(contract)
        assert "invest" in dataflow.repeat_candidates()

    def test_branch_reads(self):
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        dataflow = analyze_contract(contract)
        assert {"invested", "goal"} <= dataflow.of("invest").branch_reads
        assert "phase" in dataflow.of("withdraw").branch_reads

    def test_write_read_edges_order_invest_first(self):
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        dataflow = analyze_contract(contract)
        edges = dataflow.write_read_edges()
        assert ("invest", "withdraw", "phase") in edges
        assert ("invest", "refund", "phase") in edges

    def test_local_alias_counts_as_branch_read(self):
        source = """
        contract T {
            uint256 level = 0;
            function f() public {
                uint256 snapshot = level;
                if (snapshot > 5) { level = 0; }
            }
        }
        """
        contract = parse_source(source).contracts[0]
        dataflow = analyze_contract(contract)
        assert "level" in dataflow.of("f").branch_reads

    def test_internal_call_effects_propagate(self):
        source = """
        contract T {
            uint256 total = 0;
            function bump() internal { total += 1; }
            function f() public { bump(); }
        }
        """
        contract = parse_source(source).contracts[0]
        dataflow = analyze_contract(contract)
        assert "total" in dataflow.of("f").writes
        assert "total" in dataflow.of("f").raw_self_deps

    def test_modifier_reads_merge_into_function(self):
        source = """
        contract T {
            address owner;
            uint256 x = 0;
            modifier onlyOwner() { require(msg.sender == owner); _; }
            constructor() public { owner = msg.sender; }
            function f() public onlyOwner { x = 1; }
        }
        """
        contract = parse_source(source).contracts[0]
        dataflow = analyze_contract(contract)
        assert "owner" in dataflow.of("f").reads

    def test_stateless_function_not_stateful(self):
        source = """
        contract T {
            uint256 x = 0;
            function pure_fn(uint256 v) public {}
            function writes(uint256 v) public { x = v; }
        }
        """
        contract = parse_source(source).contracts[0]
        dataflow = analyze_contract(contract)
        assert dataflow.stateful_functions() == ["writes"]


class TestPrefixAnalyzer:
    def test_nested_scores_count_prefix_branches(self):
        analyzer = PrefixAnalyzer(b"")
        path = [
            BranchEvent(pc=10, address=1, depth=0),
            BranchEvent(pc=20, address=1, depth=0),
            BranchEvent(pc=30, address=1, depth=0),
        ]
        scores = analyzer.nested_scores(path)
        assert scores == {10: 1, 20: 2, 30: 3}

    def test_nested_scores_keep_deepest(self):
        analyzer = PrefixAnalyzer(b"")
        path = [
            BranchEvent(pc=10, address=1, depth=0),
            BranchEvent(pc=20, address=1, depth=0),
            BranchEvent(pc=10, address=1, depth=0),
        ]
        assert analyzer.nested_scores(path)[10] == 3

    def test_vulnerable_reachability_on_crowdsale(self, crowdsale_artifact):
        analyzer = PrefixAnalyzer(crowdsale_artifact.runtime_code)
        # the withdraw `if` guards a transfer: CALL must be reachable from
        # at least one branch direction of some JUMPI
        any_call = any(
            Op.CALL in analyzer.reachability(pc).taken
            or Op.CALL in analyzer.reachability(pc).fallthrough
            for pc in crowdsale_artifact.branch_info)
        assert any_call

    def test_reachability_cached(self, crowdsale_artifact):
        analyzer = PrefixAnalyzer(crowdsale_artifact.runtime_code)
        pc = next(iter(crowdsale_artifact.branch_info))
        first = analyzer.reachability(pc)
        assert analyzer.reachability(pc) is first


class TestDistances:
    def _trace_with_branch(self, pc=5, taken=False, dist_true=7,
                           dist_false=0):
        trace = ExecutionTrace()
        event = BranchEvent(pc=pc, address=1, depth=0, taken=taken,
                            dist_true=dist_true, dist_false=dist_false)
        trace.branches.append(event)
        return trace

    def test_distance_to_untaken_direction(self):
        trace = self._trace_with_branch(taken=False, dist_true=7)
        distances = distances_from_trace(trace)
        assert distances[(1, 5, True)] == 7

    def test_none_distance_maps_to_one(self):
        trace = self._trace_with_branch(dist_true=None, dist_false=None)
        assert distances_from_trace(trace)[(1, 5, True)] == 1

    def test_seed_distance_zero_when_covered(self):
        trace = self._trace_with_branch(taken=True)
        assert seed_distance(trace, (1, 5, True)) == 0

    def test_seed_distance_unseen(self):
        trace = self._trace_with_branch()
        assert seed_distance(trace, (1, 999, True)) == UNSEEN_DISTANCE


# -- vulnerability surface: per-class dead/live contract pairs (PR 8) ---------
#
# For every bug class, one contract the surface *proves* impossible (dead:
# the class's opcodes are absent from the whole code) and one where it stays
# live AND the corresponding oracle actually finds the bug end to end — so
# the pruning proofs are exercised against ground truth in both directions.


class TestSurfaceDeadLivePairs:
    DEAD = {
        # no block-environment opcode anywhere (arithmetic is irrelevant)
        "BD": """
        contract T {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """,
        # a plain CALL (send) but no DELEGATECALL
        "UD": """
        contract T {
            function pay(address to, uint256 v) public {
                require(to.send(v));
            }
        }
        """,
        # ether can leave via transfer's CALL — freeze needs *no* send path
        "EF": """
        contract T {
            function put() public payable {}
            function take(uint256 v) public { msg.sender.transfer(v); }
        }
        """,
        # storage writes without any ADD/SUB/MUL
        "IO": """
        contract T {
            uint256 stored = 0;
            function set(uint256 v) public { stored = v; }
        }
        """,
        # no external call at all
        "RE": """
        contract T {
            uint256 x = 0;
            function poke() public { x = 1; }
        }
        """,
        # no SELFDESTRUCT
        "US": """
        contract T {
            uint256 x = 0;
            function poke() public { x = 1; }
        }
        """,
        # EQ on a calldata word, but no BALANCE read
        "SE": """
        contract T {
            uint256 ok = 0;
            function check(uint256 v) public { if (v == 88) { ok = 1; } }
        }
        """,
        # CALLER-based auth, no ORIGIN
        "TO": """
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function claim() public { require(msg.sender == owner); }
        }
        """,
        # no external call whose result could go unchecked
        "UE": """
        contract T {
            uint256 x = 0;
            function poke() public { x = 1; }
        }
        """,
    }

    LIVE = {
        "BD": ("""
        contract T {
            uint256 wins = 0;
            function roll() public {
                if (block.timestamp % 10 == 3) { wins += 1; }
            }
        }
        """, 10 ** 18, lambda h: h.call("roll")),
        "UD": ("""
        contract T {
            function run(address target, uint256 data) public {
                target.delegatecall(data);
            }
        }
        """, 10 ** 18, lambda h: h.call("run", 0xB0B, 1)),
        "EF": ("""
        contract T {
            mapping(address => uint256) deposits;
            function put() public payable {
                deposits[msg.sender] += msg.value;
            }
        }
        """, 0, lambda h: h.call("put", value=1000)),
        "IO": ("""
        contract T {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """, 10 ** 18, lambda h: (h.call("add", (1 << 256) - 1),
                                  h.call("add", 2))),
        "RE": ("""
        contract T {
            mapping(address => uint256) shares;
            function join() public payable {
                shares[msg.sender] += msg.value;
            }
            function redeem() public {
                uint256 owed = shares[msg.sender];
                if (owed > 0) {
                    bool sent = msg.sender.call.value(owed)();
                    require(sent);
                    shares[msg.sender] = 0;
                }
            }
        }
        """, 10 ** 18, lambda h: (
            h.call("join", sender=0xA11CE, value=10_000, arm=False),
            h.call("join", sender=0x999, value=1_000, arm=False),
            h.call("redeem", sender=0x999))),
        "US": ("""
        contract T {
            function kill() public { selfdestruct(msg.sender); }
        }
        """, 10 ** 18, lambda h: h.call("kill", sender=0xB0B)),
        "SE": ("""
        contract T {
            uint256 bonus = 0;
            function check() public {
                if (this.balance == 88 finney) { bonus = 1; }
            }
        }
        """, 10 ** 18, lambda h: h.call("check")),
        "TO": ("""
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
            function claim() public { require(tx.origin == owner); }
        }
        """, 10 ** 18, lambda h: h.call("claim")),
        "UE": ("""
        contract T {
            function pay(address to, uint256 v) public { to.send(v); }
        }
        """, 10 ** 18, lambda h: h.call("pay", 0x888, 100)),
    }

    @pytest.mark.parametrize("code", sorted(BUG_CLASS_CODES))
    def test_dead_contract_is_proved_impossible(self, code):
        artifact = compile_source(self.DEAD[code])
        surface = compute_surface(artifact.runtime_code)
        assert code in surface.dead
        assert not surface.is_live(code)
        assert surface.proofs[code]

    @pytest.mark.parametrize("code", sorted(BUG_CLASS_CODES))
    def test_live_contract_stays_live_and_oracle_fires(self, code):
        source, deploy_value, drive = self.LIVE[code]
        artifact = compile_source(source)
        surface = compute_surface(artifact.runtime_code)
        assert surface.is_live(code)
        assert code not in surface.dead

        harness = Harness(source, deploy_value=deploy_value)
        drive(harness)
        found = harness.finalize()
        assert code in {bc.value for bc in found}


class TestSurfaceCache:
    def test_cache_hits_on_same_code(self):
        surface_mod.clear_cache()
        artifact = compile_source(CROWDSALE_SOURCE)
        first = surface_for(artifact.runtime_code)
        second = surface_for(artifact.runtime_code)
        assert first is second
        stats = surface_mod.cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_cached_surface_equals_fresh_compute(self):
        artifact = compile_source(CROWDSALE_SOURCE)
        cached = surface_for(artifact.runtime_code)
        fresh = compute_surface(artifact.runtime_code)
        assert cached.to_dict() == fresh.to_dict()

    def test_to_dict_is_deterministic(self):
        artifact = compile_source(CROWDSALE_SOURCE)
        a = compute_surface(artifact.runtime_code).to_dict()
        b = compute_surface(artifact.runtime_code).to_dict()
        assert a == b


class TestSurfaceDataflowAdapter:
    """Bytecode-level dataflow drives sequencing when source is absent."""

    def _surface_dataflow(self):
        artifact = compile_source(CROWDSALE_SOURCE)
        surface = compute_surface(artifact.runtime_code)
        return artifact, SurfaceDataflow(surface, artifact.abi)

    def test_external_names_follow_abi_order(self):
        artifact, dataflow = self._surface_dataflow()
        assert list(dataflow.external_names()) == \
            [fn.name for fn in artifact.abi.functions]

    def test_repeat_candidates_match_source_analysis(self):
        artifact, dataflow = self._surface_dataflow()
        ast_flow = analyze_contract(artifact.contract_ast)
        assert dataflow.repeat_candidates() == ast_flow.repeat_candidates()

    def test_write_read_edges_resolve_slot_names(self):
        _, dataflow = self._surface_dataflow()
        edges = dataflow.write_read_edges()
        assert any(w == "invest" and r == "refund" for w, r, _ in edges)
        assert all(slot.startswith("slot") for _, _, slot in edges)

    def test_sequence_generator_runs_without_ast(self):
        import random

        from repro.core import config as core_config
        from repro.core.sequence import SequenceGenerator

        _, dataflow = self._surface_dataflow()
        gen = SequenceGenerator(
            None, dataflow, random.Random(7),
            strategy=core_config.SEQ_DATAFLOW_REPEAT)
        seq = gen.base_sequence()
        assert seq
        assert set(seq) <= set(dataflow.external_names())
        assert gen.repeat_candidates() == {"invest"}
