"""Unit tests for block-fused execution (repro.evm.fusion).

Covers the compile-time machinery directly — constant folding (values and
shadows), PUSH+JUMP threading, tier classification and fallback reasons,
the mask-keyed program memo — plus end-to-end differential checks that a
fused Machine reproduces the table loop byte for byte on hand-written
programs exercising every tier and bailout path.  The hypothesis-based
differential sweep lives in test_properties.py.
"""

import pytest

from repro.chain.blockchain import BlockContext
from repro.chain.state import WorldState
from repro.evm import fusion
from repro.evm.fusion import (
    FUSION_BAILOUT,
    TIER_BAILOUT,
    TIER_FUSED,
    TIER_INTERP,
    FusedProgram,
    fused_program,
    fusion_stats,
)
from repro.evm.machine import Machine, Message
from repro.evm.opcodes import Op
from repro.evm.trace import EV_ALL, EV_BRANCH, EV_COMPARE, EV_OVERFLOW

U256 = 1 << 256


def asm(*ops) -> bytes:
    """Ints are opcodes; tuples are (PUSH-value, width)."""
    out = bytearray()
    for op in ops:
        if isinstance(op, tuple):
            value, width = op
            out.append(0x60 + width - 1)
            out.extend(value.to_bytes(width, "big"))
        else:
            out.append(op)
    return bytes(out)


def push1(v):
    return (v, 1)


def run_code(code: bytes, *, block_fusion: bool, event_mask: int = EV_ALL,
             calldata: bytes = b"", gas: int = 1_000_000,
             max_steps: int = 200_000):
    world = WorldState()
    world.account(0xAAA)
    world.set_balance(0xBEEF, 10 ** 20)
    machine = Machine(world, BlockContext(), max_steps=max_steps,
                      event_mask=event_mask, block_fusion=block_fusion)
    msg = Message(address=0xAAA, caller=0xBEEF, origin=0xBEEF, value=0,
                  data=calldata, gas=gas, code=code)
    return machine.execute(msg), machine


def _trace_tuple(machine):
    t = machine.trace
    return (t.branches, t.compares, t.calls, t.overflows, t.storage_ops,
            t.selfdestructs, t.block_reads, t.branch_edges,
            t.ether_received, t.steps, t.reverted, t.error)


def assert_differential(code: bytes, *, event_mask: int = EV_ALL,
                        calldata: bytes = b"", gas: int = 1_000_000,
                        max_steps: int = 200_000):
    """Fused and table execution must agree on result, trace, and state."""
    res_t, m_t = run_code(code, block_fusion=False, event_mask=event_mask,
                          calldata=calldata, gas=gas, max_steps=max_steps)
    res_f, m_f = run_code(code, block_fusion=True, event_mask=event_mask,
                          calldata=calldata, gas=gas, max_steps=max_steps)
    assert (res_f.success, res_f.returndata, res_f.error, res_f.gas_left) \
        == (res_t.success, res_t.returndata, res_t.error, res_t.gas_left)
    assert _trace_tuple(m_f) == _trace_tuple(m_t)
    for addr in (0xAAA,):
        at, af = m_t.world.account(addr), m_f.world.account(addr)
        assert af.storage == at.storage
        assert af.storage_shadow == at.storage_shadow
    return res_f, m_f


@pytest.fixture(autouse=True)
def _fresh_fusion_cache():
    fusion.clear_cache()
    yield
    fusion.clear_cache()


# -- constant folding ---------------------------------------------------------


class TestFolding:
    def test_push_push_add_folds_to_literal(self):
        # PUSH 2, PUSH 3, ADD, PUSH 0, SSTORE
        code = asm(push1(2), push1(3), Op.ADD, push1(0), Op.SSTORE, Op.STOP)
        program = fused_program(code, 0)
        assert program.stats["folded"] >= 1
        # the folded 5 flows straight into the inlined SSTORE as a baked
        # literal — it is never materialized on the runtime stack
        assert ("m.world.set_storage(frame.msg.address, 0, 5, ES)"
                in program.source)
        assert "values.append" not in program.source
        res, m = run_code(code, block_fusion=True, event_mask=0)
        assert res.success
        assert m.world.account(0xAAA).storage[0] == 5

    def test_overflow_event_blocks_wrapping_fold(self):
        # 2**255 * 2 truncates: must NOT fold while EV_OVERFLOW subscribed
        code = asm((1 << 255, 32), push1(2), Op.MUL, Op.POP, Op.STOP)
        masked = fused_program(code, EV_OVERFLOW)
        unmasked = fused_program(code, 0)
        assert masked.stats["folded"] < unmasked.stats["folded"]
        # ...and the runtime handler actually records the event
        _, m = run_code(code, block_fusion=True, event_mask=EV_OVERFLOW)
        assert len(m.trace.overflows) == 1
        # non-truncating arithmetic still folds under the same mask
        benign = asm(push1(2), push1(3), Op.ADD, Op.POP, Op.STOP)
        assert fused_program(benign, EV_OVERFLOW).stats["folded"] >= 1

    def test_compare_event_blocks_comparison_fold(self):
        code = asm(push1(1), push1(2), Op.GT, push1(0), Op.SSTORE, Op.STOP)
        assert fused_program(code, EV_COMPARE).stats["folded"] == 0
        folded = fused_program(code, 0)
        assert folded.stats["folded"] >= 1
        # GT pops x=2 (top), y=1: 2 > 1 → 1, baked into the inlined SSTORE
        assert ("m.world.set_storage(frame.msg.address, 0, 1, "
                in folded.source)
        _, m = run_code(code, block_fusion=True, event_mask=EV_COMPARE)
        assert len(m.trace.compares) == 1

    def test_folded_compare_shadow_matches_handler(self):
        # fold ISZERO over a folded EQ: the branch-distance shadow chain
        # must survive into the JUMPI's recorded branch event
        code = asm(push1(5), push1(5), Op.EQ, Op.ISZERO,
                   push1(10), Op.JUMPI, Op.STOP,     # pc 8 JUMPI, pc 9 STOP
                   Op.JUMPDEST, Op.STOP)            # pc 10 JUMPDEST
        # EV_BRANCH records the JUMPI; EV_COMPARE stays off so EQ folds
        res, m = assert_differential(code, event_mask=EV_BRANCH)
        assert res.success
        (branch,) = m.trace.branches
        assert branch.taken is False  # EQ(5,5)→1, ISZERO→0: fallthrough
        # EQ's d_false=1 becomes d_true through ISZERO's negation
        assert branch.dist_true == 1

    def test_dup_swap_pop_operate_on_pending(self):
        code = asm(push1(7), push1(9), Op.SWAP1, Op.DUP2, Op.ADD, Op.POP,
                   Op.POP, Op.STOP)
        program = fused_program(code, 0)
        # every op folded away: no runtime stack traffic at all (only the
        # overflow precheck inspects the stack)
        assert "append" not in program.source
        assert ".pop()" not in program.source
        assert program.stats["folded"] >= 5
        assert_differential(code, event_mask=0)

    def test_pure_binary_folds_via_absint(self):
        # DIV pops x=20 (top), y... handler computes top / next: 20/5 = 4
        code = asm(push1(5), push1(20), Op.DIV, push1(0), Op.SSTORE,
                   Op.STOP)
        program = fused_program(code, EV_ALL)
        assert program.stats["folded"] >= 1
        _, m = run_code(code, block_fusion=True)
        assert m.world.account(0xAAA).storage[0] == 4
        assert_differential(code)

    def test_fold_never_taints_caller_checked(self):
        # folded EQ never marks the frame caller-checked (pending constants
        # are untainted by construction) — matching the table loop, where
        # comparing two PUSH immediates carries no CALLER taint either
        code = asm(push1(1), push1(1), Op.EQ, Op.POP, Op.STOP)
        for on in (False, True):
            res, m = run_code(code, block_fusion=on, event_mask=0)
            assert res.success


# -- threading ----------------------------------------------------------------


class TestThreading:
    def test_static_jump_threads_and_chains_inline(self):
        code = asm(push1(4), Op.JUMP, Op.INVALID,    # pc 3 INVALID padding
                   Op.JUMPDEST, Op.STOP)             # pc 4 JUMPDEST
        program = fused_program(code, 0)
        assert program.stats["threaded"] == 1
        # the target block is spliced into B0's body (superblock chain):
        # its decline guard resumes the table at pc 4, and no trampoline
        # transition (`return B4,`) remains on the path
        assert program.stats["chained"] >= 1
        assert "return FB, gas, steps, 4" in program.source
        assert "return B4," not in program.source
        res, _ = run_code(code, block_fusion=True)
        assert res.success

    def test_countdown_loop_runs_block_to_block(self):
        # i = 3; while i: i -= 1  — JUMPDEST loop with a threaded back edge
        code = asm(push1(3),                       # pc 0..1
                   Op.JUMPDEST,                    # pc 2
                   Op.DUP1, push1(10), Op.JUMPI,   # pc 3..6
                   Op.POP, Op.STOP,                # pc 7..8
                   Op.INVALID,                     # pc 9 (padding)
                   Op.JUMPDEST,                    # pc 10
                   push1(1), Op.SWAP1, Op.SUB,     # pc 11..14
                   push1(2), Op.JUMP)              # pc 15..17
        program = fused_program(code, 0)
        assert program.stats["threaded"] >= 2
        res, m = assert_differential(code, event_mask=EV_ALL)
        assert res.success
        assert len(m.trace.branches) == 4  # 3 taken + 1 fallthrough

    def test_static_jump_to_non_jumpdest_raises_exact_error(self):
        code = asm(push1(3), Op.JUMP, Op.STOP)
        res_f, _ = run_code(code, block_fusion=True)
        res_t, _ = run_code(code, block_fusion=False)
        assert not res_f.success
        assert res_f.error == res_t.error == "InvalidJump: JUMP to 3 at pc=2"

    def test_dynamic_jump_through_runtime_stack(self):
        # dest arrives via calldata: cannot thread, still must execute
        code = asm(push1(0), Op.CALLDATALOAD, Op.JUMP, Op.INVALID,
                   Op.JUMPDEST, Op.STOP)             # pc 5 JUMPDEST
        data = (5).to_bytes(32, "big")
        res, _ = assert_differential(code, calldata=data)
        assert res.success


# -- tiers and bailouts -------------------------------------------------------


class TestTiers:
    def test_gas_observing_block_takes_interp_tier(self):
        code = asm(Op.GAS, Op.POP, Op.STOP)
        program = fused_program(code, 0)
        assert program.tiers[0] == TIER_INTERP
        assert program.stats["reasons"] == {"gas_observing": 1}
        res, _ = assert_differential(code)
        assert res.success

    def test_create_block_takes_bailout_tier(self):
        code = asm(push1(0), push1(0), push1(0), Op.CREATE, Op.STOP)
        program = fused_program(code, 0)
        assert program.tiers[0] == TIER_BAILOUT
        assert program.stats["reasons"] == {"raising": 1}
        assert_differential(code)  # table replay raises the same error

    def test_undefined_byte_takes_bailout_tier(self):
        code = asm(push1(1), 0xEF, Op.STOP)
        program = fused_program(code, 0)
        assert program.tiers[0] == TIER_BAILOUT
        assert program.stats["reasons"] == {"undefined": 1}
        assert_differential(code)

    def test_bailout_closure_returns_sentinel_before_executing(self):
        code = asm(push1(0), push1(0), Op.SSTORE, Op.CREATE, Op.STOP)
        program = fused_program(code, 0)
        world = WorldState()
        world.account(0xAAA)
        machine = Machine(world, BlockContext(), block_fusion=True)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=100, code=code)
        frame_stub = None  # the closure must not touch the frame at all
        nxt, gas, steps, payload = program.entry(machine, frame_stub, 0,
                                                 100, 0)
        assert nxt is FUSION_BAILOUT
        assert (gas, steps, payload) == (100, 0, 0)

    def test_out_of_gas_mid_program_declines_before_the_block(self):
        # enough gas for the first block, not the second: the fused loop
        # must bail to the table, which raises at the exact table pc
        body = [Op.JUMPDEST] + [push1(1), Op.POP] * 8 + [Op.STOP]
        code = asm(push1(3), Op.JUMP, *body)           # pc 3 JUMPDEST
        before = fusion_stats()["runtime_bailouts"]
        res_t, m_t = run_code(code, block_fusion=False, gas=20)
        res_f, m_f = run_code(code, block_fusion=True, gas=20)
        assert not res_f.success
        assert res_f.error == res_t.error
        assert res_f.error.startswith("OutOfGas: out of gas at pc=")
        assert m_f.trace.steps == m_t.trace.steps
        assert fusion_stats()["runtime_bailouts"] > before

    def test_step_budget_exhaustion_matches_table(self):
        # infinite loop, tiny step budget — the prepay precheck must bail
        # before the final block so the table raises at the same step
        code = asm(Op.JUMPDEST, push1(0), Op.JUMP)
        res_f, m_f = run_code(code, block_fusion=True, max_steps=50)
        res_t, m_t = run_code(code, block_fusion=False, max_steps=50)
        assert not res_f.success
        assert res_f.error == res_t.error \
            == "OutOfGas: per-transaction step budget exhausted"
        # the table counts the step that trips the budget before raising
        assert m_f.trace.steps == m_t.trace.steps == 51

    def test_revert_refunds_exact_gas(self):
        code = asm(push1(0), push1(0), Op.REVERT)
        res_f, _ = run_code(code, block_fusion=True, gas=1000)
        res_t, _ = run_code(code, block_fusion=False, gas=1000)
        assert not res_f.success and not res_t.success
        assert res_f.gas_left == res_t.gas_left > 0


# -- caching ------------------------------------------------------------------


class TestCache:
    def test_programs_specialize_per_mask(self):
        code = asm(push1(1), push1(2), Op.LT, Op.POP, Op.STOP)
        folded = fused_program(code, 0)
        unfolded = fused_program(code, EV_COMPARE)
        assert folded is not unfolded
        assert folded.stats["folded"] > unfolded.stats["folded"]

    def test_id_memo_keys_on_mask(self):
        # regression for the CodeAnalysis id-memo pitfall: two configs
        # (different oracle masks) sharing one worker process interleave
        # lookups over the *same* code object — each must keep getting its
        # own specialization, with the memo fast path serving both
        code = asm(push1(1), push1(2), Op.GT, Op.POP, Op.STOP)
        a0 = fused_program(code, 0)
        b0 = fused_program(code, EV_COMPARE)
        for _ in range(3):
            assert fused_program(code, 0) is a0
            assert fused_program(code, EV_COMPARE) is b0
        stats = fusion_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 6

    def test_equal_code_different_object_hits_sha_cache(self):
        code = asm(push1(3), Op.POP, Op.STOP)
        first = fused_program(code, 0)
        clone = bytes(bytearray(code))
        assert clone is not code
        assert fused_program(clone, 0) is first
        assert fusion_stats()["misses"] == 1

    def test_empty_code_has_no_entry(self):
        program = fused_program(b"", 0)
        assert isinstance(program, FusedProgram)
        assert program.entry is None
        res, _ = run_code(b"", block_fusion=True)
        assert res.success


# -- telemetry ----------------------------------------------------------------


class TestTelemetry:
    def test_counters_flow_into_metrics_snapshot(self):
        from repro.telemetry import metrics
        code = asm(push1(4), Op.JUMP, Op.INVALID,
                   Op.JUMPDEST, Op.GAS, Op.POP, Op.STOP)
        fused_program(code, 0)
        run_code(code, block_fusion=True)
        snap = metrics.snapshot()
        counters = snap["counters"]
        assert counters["fusion.programs_compiled"] >= 1
        assert counters["fusion.blocks.fused"] >= 1
        assert counters["fusion.blocks.interp"] >= 1
        assert counters["fusion.threaded_jumps"] >= 1
        assert counters["fusion.fallback.gas_observing"] >= 1
        assert counters["fusion.fused_steps"] >= 1

    def test_fused_steps_counts_executed_instructions(self):
        fusion.clear_cache()
        code = asm(push1(2), push1(3), Op.ADD, Op.POP, Op.STOP)
        run_code(code, block_fusion=True)
        assert fusion_stats()["fused_steps"] == 5  # prepaid per block
