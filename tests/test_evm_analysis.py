"""Unit tests for the shared code-analysis cache and the predecoded stream."""

import pytest

from repro.evm import analysis
from repro.evm.analysis import (
    KIND_CALL,
    KIND_DUP,
    KIND_JUMP,
    KIND_JUMPDEST,
    KIND_JUMPI,
    KIND_PUSH,
    KIND_SIMPLE,
    KIND_STOP,
    KIND_SWAP,
    analyze_code,
)
from repro.evm.opcodes import OPCODE_INFO, Op


@pytest.fixture(autouse=True)
def fresh_cache():
    analysis.clear_cache()
    yield
    analysis.clear_cache()


class TestDecodedStream:
    def test_push_entry_carries_value_and_next_pc(self):
        code = bytes([0x61, 0x12, 0x34, Op.STOP])  # PUSH2 0x1234
        decoded = analyze_code(code).decoded
        kind, gas, value, next_pc = decoded[0]
        assert kind == KIND_PUSH
        assert value == 0x1234
        assert next_pc == 3
        assert gas == OPCODE_INFO[0x61].gas
        # immediate positions are never decoded as instructions
        assert decoded[1] is None and decoded[2] is None
        assert decoded[3][0] == KIND_STOP

    def test_truncated_push_zero_pads_right(self):
        # EVM spec: a PUSH3 whose immediate runs past end-of-code reads the
        # missing bytes as zero — value 0x010000, not 1.
        decoded = analyze_code(bytes([0x62, 0x01])).decoded
        kind, _, value, next_pc = decoded[0]
        assert kind == KIND_PUSH
        assert value == 0x010000
        assert next_pc == 4  # declared width, past end-of-code: frame halts

    def test_control_flow_kinds(self):
        code = bytes([Op.JUMPDEST, Op.JUMP, Op.JUMPI, 0x80, 0x90, Op.STOP])
        decoded = analyze_code(code).decoded
        assert decoded[0][0] == KIND_JUMPDEST
        assert decoded[1][0] == KIND_JUMP
        assert decoded[2][0] == KIND_JUMPI
        assert decoded[3][:3] == (KIND_DUP, OPCODE_INFO[0x80].gas, 1)
        assert decoded[4][:3] == (KIND_SWAP, OPCODE_INFO[0x90].gas, 1)
        assert decoded[5][0] == KIND_STOP

    def test_call_family_gets_call_kind(self):
        code = bytes([Op.CALL, Op.DELEGATECALL, Op.ADD])
        decoded = analyze_code(code).decoded
        assert decoded[0][0] == KIND_CALL
        assert decoded[1][0] == KIND_CALL
        assert decoded[2][0] == KIND_SIMPLE

    def test_undefined_byte_is_none(self):
        decoded = analyze_code(bytes([0x37])).decoded  # CALLDATACOPY: undefined
        assert decoded[0] is None

    def test_jumpdests_skip_push_immediates(self):
        # 0x5B inside a PUSH2 immediate is data, not a jump target
        code = bytes([0x61, 0x5B, 0x5B, Op.JUMPDEST])
        assert analyze_code(code).jumpdests == frozenset({3})


class TestProcessLevelCache:
    def test_same_code_analyzed_once(self):
        code = bytes([Op.CALLER, Op.STOP])
        first = analyze_code(code)
        # equal-but-distinct bytes objects share the sha256-keyed entry
        assert analyze_code(bytes([Op.CALLER, Op.STOP])) is first
        stats = analysis.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_identity_fast_path_hits(self):
        code = bytes([Op.CALLER, Op.STOP])
        first = analyze_code(code)
        assert analyze_code(code) is first  # id-memo, no re-hash
        assert analysis.cache_stats()["hits"] == 1

    def test_capacity_is_bounded(self):
        for i in range(analysis.CACHE_CAPACITY + 10):
            analyze_code(bytes([0x61]) + i.to_bytes(2, "big") + bytes([0x00]))
        assert analysis.cache_stats()["entries"] == analysis.CACHE_CAPACITY

    def test_shared_across_machines(self):
        from repro.chain.blockchain import BlockContext
        from repro.chain.state import WorldState
        from repro.evm.machine import Machine, Message

        code = bytes([Op.CALLER, Op.STOP])
        for _ in range(3):
            world = WorldState()
            world.account(0xAAA)
            machine = Machine(world, BlockContext())
            msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                          data=b"", gas=10 ** 6, code=code)
            assert machine.execute(msg).success
        assert analysis.cache_stats()["misses"] == 1
