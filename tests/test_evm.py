"""Unit tests for the EVM: stack, memory, machine semantics, traces."""

import pytest

from repro.chain.blockchain import BlockContext
from repro.chain.state import WorldState
from repro.evm.errors import StackOverflow, StackUnderflow
from repro.evm.machine import Machine, Message, keccak
from repro.evm.memory import Memory
from repro.evm.opcodes import Op, is_push, mnemonic, push_width
from repro.evm.stack import STACK_LIMIT, Stack
from repro.evm.trace import (
    EMPTY_SHADOW,
    Shadow,
    Taint,
    combine_and,
    combine_or,
    comparison_shadow,
)

U256 = 1 << 256


def run_code(code: bytes, calldata: bytes = b"", value: int = 0,
             gas: int = 1_000_000):
    """Execute raw bytecode in a fresh world; returns (result, machine)."""
    world = WorldState()
    world.account(0xAAA)
    world.set_balance(0xBEEF, 10 ** 20)
    machine = Machine(world, BlockContext())
    msg = Message(address=0xAAA, caller=0xBEEF, origin=0xBEEF, value=value,
                  data=calldata, gas=gas, code=code)
    return machine.execute(msg), machine


def asm(*ops) -> bytes:
    """Tiny helper: ints are opcodes; tuples (PUSH-value, width)."""
    out = bytearray()
    for op in ops:
        if isinstance(op, tuple):
            value, width = op
            out.append(0x60 + width - 1)
            out.extend(value.to_bytes(width, "big"))
        else:
            out.append(op)
    return bytes(out)


def push1(v):
    return (v, 1)


class TestStack:
    def test_push_pop(self):
        stack = Stack()
        stack.push(42)
        value, shadow = stack.pop()
        assert value == 42
        assert shadow is EMPTY_SHADOW

    def test_underflow(self):
        with pytest.raises(StackUnderflow):
            Stack().pop()

    def test_overflow_at_limit(self):
        stack = Stack()
        for i in range(STACK_LIMIT):
            stack.push(i)
        with pytest.raises(StackOverflow):
            stack.push(0)

    def test_dup_copies_shadow(self):
        stack = Stack()
        shadow = Shadow(frozenset({Taint.BLOCK}))
        stack.push(7, shadow)
        stack.dup(1)
        _, top_shadow = stack.pop()
        assert top_shadow.taints == {Taint.BLOCK}

    def test_swap(self):
        stack = Stack()
        stack.push(1)
        stack.push(2)
        stack.swap(1)
        assert stack.pop_value() == 1
        assert stack.pop_value() == 2


class TestMemory:
    def test_word_roundtrip(self):
        memory = Memory()
        memory.store_word(64, 0xDEADBEEF)
        value, _ = memory.load_word(64)
        assert value == 0xDEADBEEF

    def test_expansion_is_zero_filled(self):
        memory = Memory()
        value, _ = memory.load_word(1000)
        assert value == 0

    def test_shadow_stored_and_loaded(self):
        memory = Memory()
        memory.store_word(0, 5, Shadow(frozenset({Taint.CALLDATA})))
        _, shadow = memory.load_word(0)
        assert Taint.CALLDATA in shadow.taints

    def test_range_taints(self):
        memory = Memory()
        memory.store_word(32, 5, Shadow(frozenset({Taint.BLOCK})))
        assert Taint.BLOCK in memory.range_taints(0, 64)
        assert memory.range_taints(64, 32) == frozenset()

    def test_byte_write(self):
        memory = Memory()
        memory.store_byte(31, 0xFF)
        value, _ = memory.load_word(0)
        assert value == 0xFF


class TestOpcodes:
    def test_push_detection(self):
        assert is_push(0x60) and is_push(0x7F)
        assert not is_push(0x5F) and not is_push(0x80)

    def test_push_width(self):
        assert push_width(0x60) == 1
        assert push_width(0x7F) == 32

    def test_mnemonics(self):
        assert mnemonic(Op.ADD) == "ADD"
        assert mnemonic(0x60) == "PUSH1"
        assert mnemonic(0xEF) == "UNKNOWN_ef"


class TestMachineArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        (Op.ADD, 3, 4, 7),
        (Op.MUL, 3, 4, 12),
        (Op.SUB, 4, 3, 1),           # top - second
        (Op.DIV, 12, 4, 3),
        (Op.DIV, 1, 0, 0),
        (Op.MOD, 14, 4, 2),
        (Op.EXP, 2, 10, 1024),
    ])
    def test_binary_op(self, op, a, b, expected):
        # push b then a so a is on top (first operand)
        code = asm(push1(b), push1(a), op,
                   push1(0), Op.MSTORE, push1(32), push1(0), Op.RETURN)
        result, _ = run_code(code)
        assert result.success
        assert int.from_bytes(result.returndata, "big") == expected

    def test_add_wraps_and_records_overflow(self):
        code = asm((U256 - 1, 32), push1(2), Op.ADD, Op.STOP)
        result, machine = run_code(code)
        assert result.success
        assert len(machine.trace.overflows) == 1
        assert machine.trace.overflows[0].result == 1

    def test_sub_underflow_recorded(self):
        code = asm(push1(1), push1(0), Op.SUB, Op.STOP)  # 0 - 1
        _, machine = run_code(code)
        assert machine.trace.overflows[0].op_name == "SUB"

    def test_no_overflow_event_for_exact_arithmetic(self):
        code = asm(push1(1), push1(2), Op.ADD, Op.STOP)
        _, machine = run_code(code)
        assert machine.trace.overflows == []


class TestMachineControl:
    def test_jump_to_jumpdest(self):
        # JUMP over an INVALID to a JUMPDEST then STOP
        code = asm(push1(4), Op.JUMP, Op.INVALID, Op.JUMPDEST, Op.STOP)
        # pc4 must be JUMPDEST: PUSH1(2) + JUMP(1) + INVALID(1) = offset 4 ✓
        result, _ = run_code(code)
        assert result.success

    def test_jump_to_non_jumpdest_fails(self):
        code = asm(push1(3), Op.JUMP, Op.STOP)
        result, _ = run_code(code)
        assert not result.success
        assert "InvalidJump" in result.error

    def test_jumpi_taken_and_not_taken(self):
        for cond, expect_success in ((1, True), (0, False)):
            # JUMPI over an INVALID when cond is true
            # layout: PUSH1 cond @0, PUSH1 9 @2, JUMPI @4, INVALID @5,
            #         STOP @6-8, JUMPDEST @9, STOP @10
            code = asm(push1(cond), push1(9), Op.JUMPI, Op.INVALID,
                       Op.STOP, Op.STOP, Op.STOP, Op.JUMPDEST, Op.STOP)
            result, machine = run_code(code)
            assert result.success is expect_success
            assert machine.trace.branches[0].taken is (cond == 1)

    def test_branch_event_records_distance(self):
        # compare 5 < 3 (false) then JUMPI
        code = asm(push1(3), push1(5), Op.LT, push1(9), Op.JUMPI,
                   Op.STOP, Op.STOP, Op.STOP, Op.STOP, Op.JUMPDEST, Op.STOP)
        _, machine = run_code(code)
        event = machine.trace.branches[0]
        assert event.taken is False
        assert event.dist_true == 3  # 5 < 3 needs 5 -> 2: distance 3

    def test_out_of_gas(self):
        code = asm(push1(0), push1(0), Op.SSTORE, Op.STOP)
        result, _ = run_code(code, gas=100)
        assert not result.success
        assert "OutOfGas" in result.error

    def test_step_budget_stops_infinite_loop(self):
        code = asm(Op.JUMPDEST, push1(0), Op.JUMP)
        result, _ = run_code(code, gas=10 ** 12)
        assert not result.success

    def test_revert(self):
        code = asm(push1(0), push1(0), Op.REVERT)
        result, _ = run_code(code)
        assert not result.success
        assert "revert" in result.error


class TestMachineEnvironment:
    def test_caller_and_origin_tainted(self):
        code = asm(Op.CALLER, Op.ORIGIN, Op.EQ, Op.STOP)
        _, machine = run_code(code)
        compare = machine.trace.compares[0]
        assert Taint.CALLER in compare.taints
        assert Taint.ORIGIN in compare.taints

    def test_timestamp_taints_branch(self):
        code = asm(Op.TIMESTAMP, push1(5), Op.JUMPI, Op.STOP,
                   Op.STOP, Op.JUMPDEST, Op.STOP)
        _, machine = run_code(code)
        assert Taint.BLOCK in machine.trace.branches[0].taints
        assert machine.trace.block_reads[0].op_name == "TIMESTAMP"

    def test_balance_taint_reaches_compare(self):
        code = asm(push1(0xAA), Op.BALANCE, push1(7), Op.EQ, Op.STOP)
        _, machine = run_code(code)
        assert Taint.BALANCE in machine.trace.compares[0].taints

    def test_calldataload(self):
        code = asm(push1(0), Op.CALLDATALOAD,
                   push1(0), Op.MSTORE, push1(32), push1(0), Op.RETURN)
        result, _ = run_code(code, calldata=(77).to_bytes(32, "big"))
        assert int.from_bytes(result.returndata, "big") == 77

    def test_callvalue(self):
        code = asm(Op.CALLVALUE, push1(0), Op.MSTORE,
                   push1(32), push1(0), Op.RETURN)
        result, _ = run_code(code, value=123)
        assert int.from_bytes(result.returndata, "big") == 123

    def test_sha3_deterministic(self):
        code = asm(push1(99), push1(0), Op.MSTORE,
                   push1(32), push1(0), Op.SHA3,
                   push1(0), Op.MSTORE, push1(32), push1(0), Op.RETURN)
        result, _ = run_code(code)
        expected = keccak((99).to_bytes(32, "big"))
        assert int.from_bytes(result.returndata, "big") == expected


class TestShadows:
    def test_comparison_shadow_lt(self):
        shadow = comparison_shadow("LT", 5, 3, frozenset())
        assert shadow.dist_true == 3 and shadow.dist_false == 0
        shadow = comparison_shadow("LT", 2, 9, frozenset())
        assert shadow.dist_true == 0 and shadow.dist_false == 7

    def test_comparison_shadow_eq(self):
        shadow = comparison_shadow("EQ", 10, 4, frozenset())
        assert shadow.dist_true == 6 and shadow.dist_false == 0
        shadow = comparison_shadow("EQ", 4, 4, frozenset())
        assert shadow.dist_true == 0 and shadow.dist_false == 1

    def test_negated_swaps_distances(self):
        shadow = comparison_shadow("GT", 1, 5, frozenset()).negated()
        assert shadow.dist_true == 0  # NOT(1>5) is true

    def test_combine_and(self):
        a = comparison_shadow("LT", 5, 3, frozenset())   # false, dist 3
        b = comparison_shadow("LT", 1, 9, frozenset())   # true
        combined = combine_and(a, b)
        assert combined.dist_true == 3
        assert combined.dist_false == 0

    def test_combine_or(self):
        a = comparison_shadow("EQ", 5, 3, frozenset())   # false, dist 2
        b = comparison_shadow("EQ", 9, 4, frozenset())   # false, dist 5
        combined = combine_or(a, b)
        assert combined.dist_true == 2
        assert combined.dist_false == 0

    def test_signed_comparison(self):
        minus_one = U256 - 1
        shadow = comparison_shadow("SLT", minus_one, 1, frozenset())
        assert shadow.dist_true == 0  # -1 < 1
