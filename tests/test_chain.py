"""Unit tests for world state, journaling, the chain API, and agents."""

import pytest

from repro.chain import (
    BenignAgent,
    Chain,
    RejectingAgent,
    ReentrantAgent,
    WorldState,
)
from repro.chain.transactions import Transaction
from repro.compiler import compile_source, encode_call
from repro.evm.errors import InsufficientBalance
from repro.evm.trace import Shadow, Taint
from tests.conftest import ALICE, BOB


class TestWorldState:
    def test_account_creation(self):
        world = WorldState()
        acct = world.account(0x1)
        assert acct.balance == 0
        assert world.exists(0x1)

    def test_balance_set_get(self):
        world = WorldState()
        world.set_balance(0x1, 100)
        assert world.get_balance(0x1) == 100
        assert world.get_balance(0x999) == 0

    def test_transfer(self):
        world = WorldState()
        world.set_balance(0x1, 100)
        world.transfer(0x1, 0x2, 40)
        assert world.get_balance(0x1) == 60
        assert world.get_balance(0x2) == 40

    def test_transfer_insufficient_raises(self):
        world = WorldState()
        world.set_balance(0x1, 10)
        with pytest.raises(InsufficientBalance):
            world.transfer(0x1, 0x2, 11)

    def test_storage_roundtrip(self):
        world = WorldState()
        world.set_storage(0x1, 5, 777)
        value, _ = world.get_storage(0x1, 5)
        assert value == 777

    def test_storage_shadow_persists(self):
        world = WorldState()
        world.set_storage(0x1, 5, 777, Shadow(frozenset({Taint.BLOCK})))
        _, shadow = world.get_storage(0x1, 5)
        assert Taint.BLOCK in shadow.taints

    def test_snapshot_revert_storage(self):
        world = WorldState()
        world.set_storage(0x1, 0, 1)
        token = world.snapshot()
        world.set_storage(0x1, 0, 2)
        world.set_storage(0x1, 1, 3)
        world.revert_to(token)
        assert world.get_storage(0x1, 0)[0] == 1
        assert world.get_storage(0x1, 1)[0] == 0

    def test_snapshot_revert_balance(self):
        world = WorldState()
        world.set_balance(0x1, 50)
        token = world.snapshot()
        world.set_balance(0x1, 99)
        world.revert_to(token)
        assert world.get_balance(0x1) == 50

    def test_nested_snapshots(self):
        world = WorldState()
        world.set_balance(0x1, 1)
        outer = world.snapshot()
        world.set_balance(0x1, 2)
        inner = world.snapshot()
        world.set_balance(0x1, 3)
        world.revert_to(inner)
        assert world.get_balance(0x1) == 2
        world.revert_to(outer)
        assert world.get_balance(0x1) == 1

    def test_revert_account_creation(self):
        world = WorldState()
        token = world.snapshot()
        world.account(0x42)
        world.revert_to(token)
        assert not world.exists(0x42)

    def test_destroyed_account_has_no_code(self):
        world = WorldState()
        world.set_code(0x1, b"\x00")
        world.mark_destroyed(0x1)
        assert world.get_code(0x1) == b""

    def test_fork_is_independent(self):
        world = WorldState()
        world.set_storage(0x1, 0, 1)
        world.set_balance(0x1, 5)
        clone = world.fork()
        clone.set_storage(0x1, 0, 99)
        clone.set_balance(0x1, 0)
        assert world.get_storage(0x1, 0)[0] == 1
        assert world.get_balance(0x1) == 5


SIMPLE = """
contract Counter {
    uint256 count = 0;
    function bump() public { count += 1; }
}
"""


class TestChain:
    def test_deploy_installs_runtime_code(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        assert chain.world.get_code(deployed.address) == \
            artifact.runtime_code

    def test_block_advances_per_transaction(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        n0 = chain.block.number
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                data=encode_call(fn, [])))
        assert chain.block.number == n0 + 1
        assert chain.block.timestamp > 0

    def test_receipts_recorded(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                data=encode_call(fn, [])))
        assert len(chain.receipts) == 1
        assert chain.receipts[0].success

    def test_failed_deploy_raises(self, chain):
        bad = compile_source(
            "contract T { constructor() public { revert(); } }")
        with pytest.raises(RuntimeError):
            chain.deploy(bad, sender=ALICE)

    def test_fork_isolates_contract_state(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        fork = chain.fork()
        fork.apply(Transaction(sender=ALICE, to=deployed.address,
                               data=encode_call(fn, [])))
        assert fork.world.get_storage(deployed.address, 0)[0] == 1
        assert chain.world.get_storage(deployed.address, 0)[0] == 0

    def test_value_transfer_via_transaction(self, chain):
        artifact = compile_source(
            "contract T { function put() public payable {} }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("put")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=1000,
            data=encode_call(fn, [])))
        assert receipt.success
        assert chain.world.get_balance(deployed.address) == 1000

    def test_reverted_value_transfer_rolled_back(self, chain):
        artifact = compile_source(
            "contract T { function f() public payable { revert(); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("f")
        before = chain.world.get_balance(ALICE)
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=1000,
            data=encode_call(fn, [])))
        assert not receipt.success
        assert chain.world.get_balance(ALICE) == before
        assert chain.world.get_balance(deployed.address) == 0


VAULT = """
contract Vault {
    mapping(address => uint256) shares;
    function join() public payable { shares[msg.sender] += msg.value; }
    function redeem() public {
        uint256 owed = shares[msg.sender];
        if (owed > 0) {
            bool sent = msg.sender.call.value(owed)();
            require(sent);
            shares[msg.sender] = 0;
        }
    }
}
"""


class TestAgents:
    def test_benign_agent_accepts_transfer(self, chain):
        chain.register_agent(0x111, BenignAgent(), balance=0)
        artifact = compile_source(
            "contract T { function pay(address to) public payable "
            "{ to.transfer(msg.value); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("pay")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=500,
            data=encode_call(fn, [0x111])))
        assert receipt.success
        assert chain.world.get_balance(0x111) == 500

    def test_rejecting_agent_fails_transfer(self, chain):
        chain.register_agent(0x222, RejectingAgent(), balance=0)
        artifact = compile_source(
            "contract T { function pay(address to) public payable "
            "{ to.transfer(msg.value); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("pay")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=500,
            data=encode_call(fn, [0x222])))
        assert not receipt.success  # transfer reverts on failure

    def test_reentrant_agent_reenters_vault(self, chain):
        attacker = 0x333
        agent = ReentrantAgent(attacker)
        chain.register_agent(attacker, agent)
        artifact = compile_source(VAULT)
        deployed = chain.deploy(artifact, sender=ALICE)
        join = artifact.abi.function("join")
        redeem = artifact.abi.function("redeem")

        # victim deposits liquidity; attacker deposits a small share
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                value=10_000, data=encode_call(join, [])))
        chain.apply(Transaction(sender=attacker, to=deployed.address,
                                value=1_000, data=encode_call(join, [])))
        agent.arm(encode_call(redeem, []))
        receipt = chain.apply(Transaction(
            sender=attacker, to=deployed.address,
            data=encode_call(redeem, [])))
        assert receipt.success
        reentrant_calls = [c for c in receipt.trace.calls if c.reentrant]
        assert reentrant_calls, "agent should have re-entered the vault"
        # drained more than its own share
        assert chain.world.get_balance(deployed.address) < 10_000

    def test_unarmed_agent_does_not_reenter(self, chain):
        attacker = 0x444
        agent = ReentrantAgent(attacker)
        chain.register_agent(attacker, agent)
        artifact = compile_source(VAULT)
        deployed = chain.deploy(artifact, sender=ALICE)
        join = artifact.abi.function("join")
        redeem = artifact.abi.function("redeem")
        chain.apply(Transaction(sender=attacker, to=deployed.address,
                                value=1_000, data=encode_call(join, [])))
        agent.arm(b"")  # nothing to replay
        receipt = chain.apply(Transaction(
            sender=attacker, to=deployed.address,
            data=encode_call(redeem, [])))
        assert receipt.success
        assert not any(c.reentrant for c in receipt.trace.calls)
