"""Unit tests for world state, journaling, the chain API, and agents."""

import pytest

from repro.chain import (
    BenignAgent,
    Chain,
    RejectingAgent,
    ReentrantAgent,
    WorldState,
)
from repro.chain.transactions import Transaction
from repro.compiler import compile_source, encode_call
from repro.evm.errors import InsufficientBalance
from repro.evm.trace import Shadow, Taint
from tests.conftest import ALICE, BOB


class TestWorldState:
    def test_account_creation(self):
        world = WorldState()
        acct = world.account(0x1)
        assert acct.balance == 0
        assert world.exists(0x1)

    def test_balance_set_get(self):
        world = WorldState()
        world.set_balance(0x1, 100)
        assert world.get_balance(0x1) == 100
        assert world.get_balance(0x999) == 0

    def test_transfer(self):
        world = WorldState()
        world.set_balance(0x1, 100)
        world.transfer(0x1, 0x2, 40)
        assert world.get_balance(0x1) == 60
        assert world.get_balance(0x2) == 40

    def test_transfer_insufficient_raises(self):
        world = WorldState()
        world.set_balance(0x1, 10)
        with pytest.raises(InsufficientBalance):
            world.transfer(0x1, 0x2, 11)

    def test_storage_roundtrip(self):
        world = WorldState()
        world.set_storage(0x1, 5, 777)
        value, _ = world.get_storage(0x1, 5)
        assert value == 777

    def test_storage_shadow_persists(self):
        world = WorldState()
        world.set_storage(0x1, 5, 777, Shadow(frozenset({Taint.BLOCK})))
        _, shadow = world.get_storage(0x1, 5)
        assert Taint.BLOCK in shadow.taints

    def test_snapshot_revert_storage(self):
        world = WorldState()
        world.set_storage(0x1, 0, 1)
        token = world.snapshot()
        world.set_storage(0x1, 0, 2)
        world.set_storage(0x1, 1, 3)
        world.revert_to(token)
        assert world.get_storage(0x1, 0)[0] == 1
        assert world.get_storage(0x1, 1)[0] == 0

    def test_snapshot_revert_balance(self):
        world = WorldState()
        world.set_balance(0x1, 50)
        token = world.snapshot()
        world.set_balance(0x1, 99)
        world.revert_to(token)
        assert world.get_balance(0x1) == 50

    def test_nested_snapshots(self):
        world = WorldState()
        world.set_balance(0x1, 1)
        outer = world.snapshot()
        world.set_balance(0x1, 2)
        inner = world.snapshot()
        world.set_balance(0x1, 3)
        world.revert_to(inner)
        assert world.get_balance(0x1) == 2
        world.revert_to(outer)
        assert world.get_balance(0x1) == 1

    def test_revert_account_creation(self):
        world = WorldState()
        token = world.snapshot()
        world.account(0x42)
        world.revert_to(token)
        assert not world.exists(0x42)

    def test_destroyed_account_has_no_code(self):
        world = WorldState()
        world.set_code(0x1, b"\x00")
        world.mark_destroyed(0x1)
        assert world.get_code(0x1) == b""

    def test_fork_is_independent(self):
        world = WorldState()
        world.set_storage(0x1, 0, 1)
        world.set_balance(0x1, 5)
        clone = world.fork()
        clone.set_storage(0x1, 0, 99)
        clone.set_balance(0x1, 0)
        assert world.get_storage(0x1, 0)[0] == 1
        assert world.get_balance(0x1) == 5


SIMPLE = """
contract Counter {
    uint256 count = 0;
    function bump() public { count += 1; }
}
"""


class TestChain:
    def test_deploy_installs_runtime_code(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        assert chain.world.get_code(deployed.address) == \
            artifact.runtime_code

    def test_block_advances_per_transaction(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        n0 = chain.block.number
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                data=encode_call(fn, [])))
        assert chain.block.number == n0 + 1
        assert chain.block.timestamp > 0

    def test_receipts_recorded(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                data=encode_call(fn, [])))
        assert len(chain.receipts) == 1
        assert chain.receipts[0].success

    def test_failed_deploy_raises(self, chain):
        bad = compile_source(
            "contract T { constructor() public { revert(); } }")
        with pytest.raises(RuntimeError):
            chain.deploy(bad, sender=ALICE)

    def test_fork_isolates_contract_state(self, chain):
        artifact = compile_source(SIMPLE)
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("bump")
        fork = chain.fork()
        fork.apply(Transaction(sender=ALICE, to=deployed.address,
                               data=encode_call(fn, [])))
        assert fork.world.get_storage(deployed.address, 0)[0] == 1
        assert chain.world.get_storage(deployed.address, 0)[0] == 0

    def test_value_transfer_via_transaction(self, chain):
        artifact = compile_source(
            "contract T { function put() public payable {} }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("put")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=1000,
            data=encode_call(fn, [])))
        assert receipt.success
        assert chain.world.get_balance(deployed.address) == 1000

    def test_reverted_value_transfer_rolled_back(self, chain):
        artifact = compile_source(
            "contract T { function f() public payable { revert(); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("f")
        before = chain.world.get_balance(ALICE)
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=1000,
            data=encode_call(fn, [])))
        assert not receipt.success
        assert chain.world.get_balance(ALICE) == before
        assert chain.world.get_balance(deployed.address) == 0


VAULT = """
contract Vault {
    mapping(address => uint256) shares;
    function join() public payable { shares[msg.sender] += msg.value; }
    function redeem() public {
        uint256 owed = shares[msg.sender];
        if (owed > 0) {
            bool sent = msg.sender.call.value(owed)();
            require(sent);
            shares[msg.sender] = 0;
        }
    }
}
"""


class TestAgents:
    def test_benign_agent_accepts_transfer(self, chain):
        chain.register_agent(0x111, BenignAgent(), balance=0)
        artifact = compile_source(
            "contract T { function pay(address to) public payable "
            "{ to.transfer(msg.value); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("pay")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=500,
            data=encode_call(fn, [0x111])))
        assert receipt.success
        assert chain.world.get_balance(0x111) == 500

    def test_rejecting_agent_fails_transfer(self, chain):
        chain.register_agent(0x222, RejectingAgent(), balance=0)
        artifact = compile_source(
            "contract T { function pay(address to) public payable "
            "{ to.transfer(msg.value); } }")
        deployed = chain.deploy(artifact, sender=ALICE)
        fn = artifact.abi.function("pay")
        receipt = chain.apply(Transaction(
            sender=ALICE, to=deployed.address, value=500,
            data=encode_call(fn, [0x222])))
        assert not receipt.success  # transfer reverts on failure

    def test_reentrant_agent_reenters_vault(self, chain):
        attacker = 0x333
        agent = ReentrantAgent(attacker)
        chain.register_agent(attacker, agent)
        artifact = compile_source(VAULT)
        deployed = chain.deploy(artifact, sender=ALICE)
        join = artifact.abi.function("join")
        redeem = artifact.abi.function("redeem")

        # victim deposits liquidity; attacker deposits a small share
        chain.apply(Transaction(sender=ALICE, to=deployed.address,
                                value=10_000, data=encode_call(join, [])))
        chain.apply(Transaction(sender=attacker, to=deployed.address,
                                value=1_000, data=encode_call(join, [])))
        agent.arm(encode_call(redeem, []))
        receipt = chain.apply(Transaction(
            sender=attacker, to=deployed.address,
            data=encode_call(redeem, [])))
        assert receipt.success
        reentrant_calls = [c for c in receipt.trace.calls if c.reentrant]
        assert reentrant_calls, "agent should have re-entered the vault"
        # drained more than its own share
        assert chain.world.get_balance(deployed.address) < 10_000

    def test_unarmed_agent_does_not_reenter(self, chain):
        attacker = 0x444
        agent = ReentrantAgent(attacker)
        chain.register_agent(attacker, agent)
        artifact = compile_source(VAULT)
        deployed = chain.deploy(artifact, sender=ALICE)
        join = artifact.abi.function("join")
        redeem = artifact.abi.function("redeem")
        chain.apply(Transaction(sender=attacker, to=deployed.address,
                                value=1_000, data=encode_call(join, [])))
        agent.arm(b"")  # nothing to replay
        receipt = chain.apply(Transaction(
            sender=attacker, to=deployed.address,
            data=encode_call(redeem, [])))
        assert receipt.success
        assert not any(c.reentrant for c in receipt.trace.calls)


class TestJournalBasedReset:
    """mark_base / reset_to_base: the fuzzer's O(touched-slots) alternative
    to deep-copying the world every iteration."""

    SOURCE = """
    contract Counter {
        uint256 count = 7;
        function bump() public { count = count + 1; }
    }
    """

    def _deployed_chain(self):
        chain = Chain()
        chain.create_account(ALICE)
        artifact = compile_source(self.SOURCE)
        deployed = chain.deploy(artifact, sender=ALICE)
        return chain, artifact, deployed

    def _bump(self, chain, artifact, address):
        fn = artifact.abi.function("bump")
        return chain.apply(Transaction(
            sender=ALICE, to=address, data=encode_call(fn, [])))

    def test_reset_restores_storage_block_and_receipts(self):
        chain, artifact, deployed = self._deployed_chain()
        chain.mark_base()
        base_number = chain.block.number
        base_timestamp = chain.block.timestamp

        for _ in range(3):
            receipt = self._bump(chain, artifact, deployed.address)
            assert receipt.success
        assert chain.world.get_storage(deployed.address, 0)[0] == 10
        assert chain.block.number == base_number + 3
        assert len(chain.receipts) == 3

        chain.reset_to_base()
        assert chain.world.get_storage(deployed.address, 0)[0] == 7
        assert chain.block.number == base_number
        assert chain.block.timestamp == base_timestamp
        assert chain.receipts == []

    def test_reset_removes_accounts_created_after_mark(self):
        chain, artifact, deployed = self._deployed_chain()
        chain.mark_base()
        self._bump(chain, artifact, deployed.address)
        chain.create_account(0x1234)
        assert chain.world.exists(0x1234)
        chain.reset_to_base()
        assert not chain.world.exists(0x1234)

    def test_reset_matches_fork_semantics(self):
        """A journal reset must land on the same state a fresh fork of the
        base would have — the byte-identical-campaign invariant."""
        chain, artifact, deployed = self._deployed_chain()
        fork = chain.fork()  # pre-mark deep copy = ground truth
        chain.mark_base()
        for _ in range(5):
            self._bump(chain, artifact, deployed.address)
        chain.reset_to_base()

        replay_reset = self._bump(chain, artifact, deployed.address)
        replay_fork = self._bump(fork, artifact, deployed.address)
        assert replay_reset.success and replay_fork.success
        assert chain.world.get_storage(deployed.address, 0)[0] == \
            fork.world.get_storage(deployed.address, 0)[0]
        assert replay_reset.block_number == replay_fork.block_number
        assert replay_reset.trace.steps == replay_fork.trace.steps

    def test_reset_without_mark_raises(self):
        chain = Chain()
        with pytest.raises(RuntimeError, match="mark_base"):
            chain.reset_to_base()

    def test_fork_does_not_inherit_base_mark(self):
        chain, artifact, deployed = self._deployed_chain()
        chain.mark_base()
        fork = chain.fork()
        with pytest.raises(RuntimeError, match="mark_base"):
            fork.reset_to_base()
