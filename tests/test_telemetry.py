"""Telemetry: metrics registry, spans, heartbeats, and the inertness
guarantee.

The load-bearing test here is the determinism guard: enabling telemetry
must change **nothing** about campaign results — not one byte, on any
execution backend.  Everything else (bucketing, merge algebra, heartbeat
plumbing) supports that guarantee or the live introspection built on it.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import telemetry
from repro.engine.checkpoint import canonical_json
from repro.orchestrator import CampaignJob, create_backend, run_matrix
from repro.telemetry import log as tlog
from repro.telemetry import metrics
from repro.telemetry.metrics import (
    Registry,
    diff_snapshots,
    merge_snapshots,
)
from repro.telemetry.progress import (
    HEARTBEAT,
    ProgressSnapshot,
    TelemetrySession,
)
from tests.conftest import CROWDSALE_SOURCE

#: tiny budget: telemetry behaviour, not fuzzing quality, is under test
FAST = {"iterations": 15}


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with the registry disabled and clean."""
    metrics.disable()
    metrics.reset()
    yield
    HEARTBEAT.uninstall()
    metrics.disable()
    metrics.reset()


def _job(**kw) -> CampaignJob:
    base = dict(name="Crowdsale", source=CROWDSALE_SOURCE,
                preset="mufuzz", overrides=dict(FAST))
    base.update(kw)
    return CampaignJob(**base)


class TestRegistry:
    def test_disabled_instruments_record_nothing(self):
        reg = Registry()
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h", (1, 2))
        c.inc()
        c.add(5)
        g.set(9)
        h.observe(1)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["gauges"]["g"] == 0
        assert snap["histograms"]["h"]["count"] == 0

    def test_enable_disable_round_trip(self):
        reg = Registry()
        c = reg.counter("c")
        reg.enable()
        c.inc()
        c.add(2)
        reg.disable()
        c.add(100)  # swallowed: disabled again
        assert reg.snapshot()["counters"]["c"] == 3

    def test_instruments_are_idempotent_by_name(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z", (1,)) is reg.histogram("z", (1,))

    def test_snapshot_is_canonical_jsonable(self):
        reg = Registry()
        reg.enable()
        reg.counter("b").inc()
        reg.counter("a").inc()
        text = canonical_json(reg.snapshot())
        assert json.loads(text)["counters"] == {"a": 1, "b": 1}

    def test_module_registry_reset(self):
        metrics.enable()
        metrics.counter("test.reset").inc()
        metrics.reset()
        assert metrics.snapshot()["counters"]["test.reset"] == 0


class TestHistogramBucketing:
    def _hist(self, bounds):
        reg = Registry()
        reg.enable()
        return reg.histogram("h", bounds), reg

    def test_inclusive_upper_edges_and_overflow(self):
        h, reg = self._hist((1, 2, 4, 8))
        for value in (0, 1):        # <= 1 -> bucket 0
            h.observe(value)
        h.observe(2)                # == 2 -> bucket 1 (inclusive edge)
        h.observe(3)                # <= 4 -> bucket 2
        h.observe(4)
        h.observe(5)                # <= 8 -> bucket 3
        h.observe(9)                # > 8  -> overflow cell
        h.observe(10_000)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["bounds"] == [1, 2, 4, 8]
        assert snap["counts"] == [2, 1, 2, 1, 2]
        assert snap["count"] == 8
        assert snap["total"] == 0 + 1 + 2 + 3 + 4 + 5 + 9 + 10_000

    def test_single_bucket(self):
        h, reg = self._hist((10,))
        h.observe(10)
        h.observe(11)
        assert reg.snapshot()["histograms"]["h"]["counts"] == [1, 1]


class TestSnapshotAlgebra:
    def _snap(self, c=0, g=0, counts=(0, 0), spans=0, span_s=0.0):
        return {
            "counters": {"c": c},
            "gauges": {"g": g},
            "histograms": {"h": {"bounds": [5], "counts": list(counts),
                                 "total": sum(counts), "count":
                                 sum(counts)}},
            "spans": {"s": {"count": spans, "total_s": span_s}},
        }

    def test_merge_adds_counters_and_histograms_maxes_gauges(self):
        merged = merge_snapshots(self._snap(c=2, g=7, counts=(1, 0),
                                            spans=3, span_s=0.5),
                                 self._snap(c=5, g=3, counts=(0, 2),
                                            spans=1, span_s=0.25))
        assert merged["counters"]["c"] == 7
        assert merged["gauges"]["g"] == 7  # max, not sum
        assert merged["histograms"]["h"]["counts"] == [1, 2]
        assert merged["spans"]["s"] == {"count": 4, "total_s": 0.75}

    def test_merge_is_associative_and_commutative(self):
        a = self._snap(c=1, g=4, counts=(1, 0), spans=1, span_s=0.1)
        b = self._snap(c=2, g=9, counts=(0, 3), spans=2, span_s=0.2)
        c = self._snap(c=4, g=2, counts=(5, 5), spans=4, span_s=0.4)
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert canonical_json(left) == canonical_json(right)
        assert canonical_json(merge_snapshots(a, b)) == \
            canonical_json(merge_snapshots(b, a))

    def test_merge_tolerates_disjoint_names(self):
        a = {"counters": {"x": 1}, "gauges": {}, "histograms": {},
             "spans": {}}
        b = {"counters": {"y": 2}, "gauges": {}, "histograms": {},
             "spans": {}}
        assert merge_snapshots(a, b)["counters"] == {"x": 1, "y": 2}

    def test_diff_inverts_merge(self):
        a = self._snap(c=3, g=5, counts=(2, 1), spans=2, span_s=0.3)
        b = self._snap(c=1, g=5, counts=(1, 0), spans=1, span_s=0.1)
        delta = diff_snapshots(merge_snapshots(a, b), b)
        assert delta["counters"]["c"] == 3
        assert delta["histograms"]["h"]["counts"] == [2, 1]
        assert delta["spans"]["s"]["count"] == 2


class TestSpans:
    def test_span_counts_only_when_enabled(self):
        from repro.telemetry.spans import span
        s = span("test.span_counts")
        with s:
            pass
        metrics.enable()
        with s:
            pass
        snap = metrics.snapshot()["spans"]["test.span_counts"]
        assert snap["count"] == 1
        assert snap["total_s"] >= 0.0

    def test_reentrant_span_times_outermost_only(self):
        from repro.telemetry.spans import span
        s = span("test.reentrant")
        metrics.enable()
        with s:
            with s:
                pass
        assert metrics.snapshot()["spans"]["test.reentrant"]["count"] == 1

    def test_stage_stack_tracks_innermost(self):
        from repro.telemetry.spans import current_stage, span
        outer = span("test.outer", stage=True)
        inner = span("test.inner", stage=True)
        metrics.enable()
        assert current_stage() is None
        with outer:
            assert current_stage() == "test.outer"
            with inner:
                assert current_stage() == "test.inner"
            assert current_stage() == "test.outer"
        assert current_stage() is None


class TestDeterminismGuard:
    """Telemetry must be provably inert: byte-identical campaign results
    with collection on or off, on every backend."""

    @pytest.mark.parametrize("backend", ["inline", "spawn", "pool"])
    def test_results_byte_identical_with_telemetry(self, backend,
                                                   tmp_path):
        def result_bytes(telemetry: bool, subdir: str) -> str:
            run = run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                             presets=["mufuzz"], trials=2,
                             overrides=dict(FAST), workers=2,
                             backend=backend,
                             results_dir=tmp_path / subdir,
                             telemetry=telemetry, heartbeat_every=0.0)
            assert all(o.ok for o in run.outcomes)
            if telemetry:
                assert run.stats.telemetry is not None
                counters = run.stats.telemetry["counters"]
                assert counters["engine.executions"] > 0
                assert counters["evm.transactions"] > 0
            else:
                assert run.stats.telemetry is None
            return canonical_json(
                {o.job.job_id: {**o.result.to_dict(), "wall_time": 0.0}
                 for o in run.outcomes})

        off = result_bytes(False, "off")
        on = result_bytes(True, "on")
        assert on == off

    def test_inprocess_enable_does_not_change_results(self):
        from repro.core.fuzzer import fuzz_contract
        config = _job().build_config()

        baseline = fuzz_contract(CROWDSALE_SOURCE, config).to_dict()
        metrics.enable()
        with_telemetry = fuzz_contract(CROWDSALE_SOURCE, config).to_dict()
        metrics.disable()
        baseline["wall_time"] = with_telemetry["wall_time"] = 0.0
        assert canonical_json(baseline) == canonical_json(with_telemetry)

    def test_telemetry_kept_out_of_result_records(self, tmp_path):
        """The telemetry sidecar lives next to the result, never in it —
        and the record parses back to an identical CampaignResult."""
        run = run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                         presets=["mufuzz"], trials=1,
                         overrides=dict(FAST), workers=1,
                         backend="inline", results_dir=tmp_path,
                         telemetry=True)
        (outcome,) = run.outcomes
        from repro.orchestrator.store import ResultStore
        record = ResultStore(tmp_path).record_for(outcome.job.job_id)
        assert record is not None and "telemetry" in record
        assert "telemetry" not in record["result"]
        assert record["result"]["iterations"] >= FAST["iterations"]


class TestProgressSnapshots:
    def test_wire_round_trip_ignores_unknown_fields(self):
        snap = ProgressSnapshot(job_id="j", stage="engine.execution",
                                executions=7)
        wire = snap.to_wire()
        wire["from_the_future"] = True
        back = ProgressSnapshot.from_wire(wire)
        assert back.job_id == "j"
        assert back.executions == 7

    def test_session_restores_prior_state_and_yields_delta(self):
        assert not metrics.enabled()
        with TelemetrySession("job-1") as session:
            assert metrics.enabled()
            metrics.counter("test.session").inc()
        assert not metrics.enabled()
        assert session.delta["counters"]["test.session"] == 1

    def test_session_delta_excludes_prior_counts(self):
        metrics.enable()
        metrics.counter("test.prior").add(10)
        with TelemetrySession("job-2") as session:
            metrics.counter("test.prior").add(5)
        assert session.delta["counters"]["test.prior"] == 5
        assert metrics.enabled()  # was enabled before: stays enabled

    def test_heartbeats_flow_from_running_campaign(self):
        from repro.core.fuzzer import Fuzzer
        beats = []
        fuzzer = Fuzzer(CROWDSALE_SOURCE, _job().build_config())
        with TelemetrySession("job-3", heartbeat_sink=beats.append,
                              heartbeat_every=0.0):
            fuzzer.run()
        assert beats
        beat = beats[-1]
        assert beat.job_id == "job-3"
        assert beat.executions > 0
        assert beat.transactions > 0
        assert 0.0 <= beat.coverage <= 1.0
        assert beat.stage is not None


class TestHeartbeatPlumbing:
    def test_timeout_outcome_carries_last_heartbeat(self):
        """A worker killed mid-job leaves its dying heartbeat on the
        outcome: the post-mortem shows where the campaign was."""
        hang = _job(name="Hang", overrides={"iterations": 50_000_000})
        engine = create_backend("pool", workers=2, job_timeout=2.0,
                                telemetry=True, heartbeat_every=0.1)
        outcomes = engine.run([hang, _job()])
        by_name = {o.job.name: o for o in outcomes}
        assert by_name["Hang"].status == "timeout"
        assert engine.stats["workers_killed"] == 1
        beat = by_name["Hang"].heartbeat
        assert beat is not None
        assert beat["job_id"] == hang.job_id
        assert beat["executions"] > 0
        assert beat["stage"] is not None
        # the queue continued on a respawned worker, telemetry intact
        assert by_name["Crowdsale"].ok
        assert by_name["Crowdsale"].telemetry is not None

    def test_scheduler_invokes_heartbeat_callback(self):
        beats = []
        engine = create_backend("spawn", workers=2, telemetry=True,
                                heartbeat_every=0.0, heartbeat=beats.append)
        outcomes = engine.run([_job()])
        assert outcomes[0].ok
        assert beats
        assert all(b["kind"] == "heartbeat" for b in beats)
        assert beats[-1]["snapshot"]["executions"] > 0

    def test_no_heartbeats_without_telemetry(self):
        beats = []
        engine = create_backend("inline", telemetry=False,
                                heartbeat=beats.append)
        outcomes = engine.run([_job()])
        assert outcomes[0].ok
        assert outcomes[0].telemetry is None
        assert not beats

    def test_live_progress_file_excluded_from_store_and_replay(
            self, tmp_path):
        from repro.cli import _replay_records
        from repro.orchestrator.store import ResultStore
        run = run_matrix([("Crowdsale", CROWDSALE_SOURCE)],
                         presets=["mufuzz"], trials=1,
                         overrides=dict(FAST), workers=1,
                         backend="inline", results_dir=tmp_path,
                         telemetry=True)
        assert (tmp_path / "live.telemetry.json").exists()
        live = json.loads((tmp_path / "live.telemetry.json").read_text())
        assert live["done"] is True
        assert live["settled"] == live["total"] == 1
        assert live["stats"]["executions"] >= FAST["iterations"]
        # the sidecar never masquerades as a completed job or a record
        store = ResultStore(tmp_path)
        assert store.completed_ids() == {run.outcomes[0].job.job_id}
        assert len(_replay_records([tmp_path])) == 1


class TestStructuredLog:
    @pytest.fixture(autouse=True)
    def _restore_log(self):
        yield
        tlog.configure(logging.INFO)

    def test_info_renders_bare_to_stdout(self, capsys):
        tlog.configure(logging.INFO)
        tlog.info("hello", n=3, rate=1.5)
        captured = capsys.readouterr()
        assert captured.out == "hello n=3 rate=1.500\n"
        assert captured.err == ""

    def test_errors_route_to_stderr(self, capsys):
        tlog.configure(logging.INFO)
        tlog.error("error: boom")
        tlog.warning("careful")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "error: boom\nwarning: careful\n"

    def test_quiet_and_verbose_levels(self):
        assert tlog.resolve_level(None, quiet=1) == logging.WARNING
        assert tlog.resolve_level(None, quiet=2) == logging.ERROR
        assert tlog.resolve_level(None, verbose=1) == logging.DEBUG
        assert tlog.resolve_level("warning") == logging.WARNING
        with pytest.raises(ValueError):
            tlog.resolve_level(None, quiet=1, verbose=1)
        with pytest.raises(ValueError):
            tlog.resolve_level("nonesuch")

    def test_threshold_suppresses_below(self, capsys):
        tlog.configure(logging.WARNING)
        tlog.info("invisible")
        tlog.debug("also invisible")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


class TestTelemetryCLI:
    def test_fuzz_metrics_flag_writes_snapshot(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "c.sol"
        source.write_text(CROWDSALE_SOURCE)
        metrics_file = tmp_path / "m.json"
        assert main(["fuzz", str(source), "--iterations", "10",
                     "--metrics", str(metrics_file)]) == 0
        data = json.loads(metrics_file.read_text())
        assert data["counters"]["engine.executions"] == 10
        assert "engine.execution" in data["spans"]
        assert not metrics.enabled()  # CLI restored the prior state
        assert "metrics written" in capsys.readouterr().out

    def test_top_once_renders_final_frame(self, tmp_path, capsys):
        from repro.cli import main
        source = tmp_path / "c.sol"
        source.write_text(CROWDSALE_SOURCE)
        results = tmp_path / "rd"
        assert main(["-q", "campaign", str(source), "--trials", "1",
                     "--iterations", "10", "--workers", "1",
                     "--backend", "inline",
                     "--results-dir", str(results), "--telemetry"]) == 0
        capsys.readouterr()
        assert main(["top", str(results), "--once"]) == 0
        out = capsys.readouterr().out
        assert "campaign done" in out
        assert "job(s) settled" in out
        assert "totals:" in out

    def test_top_once_without_live_file_errors(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["top", str(tmp_path), "--once"]) == 2
        assert "no live telemetry" in capsys.readouterr().err


class TestEnvEnable:
    def test_env_var_enables_collection_in_workers(self):
        """REPRO_TELEMETRY=1 is how spawned workers inherit the switch;
        the module hook honours it at import."""
        import subprocess
        import sys
        code = ("import repro.telemetry as t; "
                "print(t.enabled())")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_TELEMETRY": "1",
                 "PYTHONPATH": "src",
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd=".")
        assert out.stdout.strip() == "True"
