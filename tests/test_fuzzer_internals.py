"""Unit tests for fuzzer internals added during tuning: covering initial
populations, constant harvesting, rare-edge retention, fallback probing."""

import pytest

from repro.compiler import compile_source
from repro.core import Fuzzer, mufuzz_config, sfuzz_config
from repro.core.fuzzer import BAD_SELECTOR_CALL, FALLBACK_CALL
from tests.conftest import CROWDSALE_SOURCE

MANY_FUNCTIONS = "contract Many {\n" + "\n".join(
    f"    uint256 v{i} = 0;\n"
    f"    function set{i}(uint256 x) public {{ v{i} = x; }}"
    for i in range(12)) + "\n}"

MAGIC_GATE = """
contract Gate {
    uint256 unlocked = 0;
    function open(uint256 code) public {
        require(code == 77553311);
        unlocked = 1;
    }
}
"""


class TestCoverSequences:
    def test_cover_sequences_hit_every_function(self):
        fuzzer = Fuzzer(MANY_FUNCTIONS, mufuzz_config(iterations=1,
                                                      rng_seed=1))
        chunks = fuzzer.seqgen.cover_sequences()
        called = {fn for chunk in chunks for fn in chunk}
        assert called == {f"set{i}" for i in range(12)}

    def test_chunks_respect_max_length(self):
        config = mufuzz_config(iterations=1, max_sequence_length=4)
        fuzzer = Fuzzer(MANY_FUNCTIONS, config)
        for chunk in fuzzer.seqgen.cover_sequences():
            assert len(chunk) <= 4

    def test_initial_population_calls_all_functions(self):
        fuzzer = Fuzzer(MANY_FUNCTIONS, mufuzz_config(iterations=5,
                                                      rng_seed=2))
        fuzzer.run()
        exercised = {fn for seed in fuzzer.queue for fn in seed.functions}
        assert {f"set{i}" for i in range(12)} <= exercised

    def test_random_strategy_also_covers(self):
        fuzzer = Fuzzer(MANY_FUNCTIONS, sfuzz_config(iterations=1,
                                                     rng_seed=3))
        chunks = fuzzer.seqgen.cover_sequences()
        called = {fn for chunk in chunks for fn in chunk}
        assert called == {f"set{i}" for i in range(12)}


class TestConstantHarvesting:
    def test_magic_constant_harvested(self):
        fuzzer = Fuzzer(MAGIC_GATE, mufuzz_config(iterations=1))
        constants = fuzzer._harvest_constants()
        assert 77553311 in constants

    def test_small_offsets_excluded(self):
        fuzzer = Fuzzer(MAGIC_GATE, mufuzz_config(iterations=1))
        constants = fuzzer._harvest_constants()
        assert 32 not in constants  # PUSH1/PUSH2 offsets are noise

    def test_gate_crossed_via_dictionary(self):
        fuzzer = Fuzzer(MAGIC_GATE, mufuzz_config(iterations=120,
                                                  rng_seed=4))
        fuzzer.run()
        address = fuzzer.address
        unlocked = fuzzer.base_chain.world.get_storage(address, 0)[0]
        # state resets per execution; check coverage of the require-true edge
        require_pcs = [pc for pc, info in fuzzer.artifact.branch_info.items()
                       if info.kind == "require"]
        assert any((pc, True) in fuzzer.coverage.covered
                   for pc in require_pcs)


class TestRetention:
    def test_rare_edge_seed_retained_without_new_coverage(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=80,
                                                        rng_seed=5))
        fuzzer.run()
        # retention keeps at most ~2 seeds per edge, so the queue stays
        # bounded but larger than the initial population
        assert len(fuzzer.queue) >= 3
        assert len(fuzzer.queue) <= 2 * fuzzer.artifact.total_branches + 8


class TestFallbackProbing:
    def test_fallback_calls_cover_dispatcher_edges(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE,
                        mufuzz_config(iterations=200, rng_seed=6,
                                      fallback_probability=0.3))
        fuzzer.run()
        calldata_pcs = [pc for pc, info
                        in fuzzer.artifact.branch_info.items()
                        if info.kind == "calldata"]
        assert calldata_pcs
        for pc in calldata_pcs:
            assert (pc, True) in fuzzer.coverage.covered, \
                "empty-calldata edge never exercised"

    def test_special_calls_encode(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=1))
        fallback = fuzzer._fresh_call(FALLBACK_CALL)
        bad = fuzzer._fresh_call(BAD_SELECTOR_CALL)
        assert fuzzer._encode_call(fallback) == b""
        assert len(fuzzer._encode_call(bad)) == 32
