"""Shared fixtures: canonical contracts from the paper and chain helpers."""

from __future__ import annotations

import pytest

from repro.chain import Chain
from repro.chain.transactions import Transaction
from repro.compiler import compile_source, encode_call

#: Figure 1 of the paper, translated to MiniSol.
CROWDSALE_SOURCE = """
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}
"""

#: Figure 4 of the paper (guess-number game), translated to MiniSol.
GAME_SOURCE = """
contract Game {
    mapping(address => uint256) balance;

    function guessNum(uint256 number) public payable {
        uint256 random = uint256(keccak256(abi.encodePacked(block.timestamp, now))) % 200;
        require(msg.value == 88 finney);
        if (number < random) {
            uint256 luckyNum = number % 2;
            if (luckyNum == 0) {
                balance[msg.sender] += msg.value * 10;
            } else {
                balance[msg.sender] += msg.value * 5;
            }
        }
    }
}
"""

ALICE = 0xA11CE
BOB = 0xB0B


@pytest.fixture(scope="session")
def crowdsale_artifact():
    return compile_source(CROWDSALE_SOURCE)


@pytest.fixture(scope="session")
def game_artifact():
    return compile_source(GAME_SOURCE)


@pytest.fixture
def chain():
    chain = Chain()
    chain.create_account(ALICE)
    chain.create_account(BOB)
    return chain


class ContractHandle:
    """Test convenience: deploy once, call by function name."""

    def __init__(self, chain: Chain, artifact, sender: int = ALICE,
                 value: int = 0, ctor_args: bytes = b"") -> None:
        self.chain = chain
        self.artifact = artifact
        self.deployed = chain.deploy(artifact, ctor_args=ctor_args,
                                     sender=sender, value=value)
        self.address = self.deployed.address

    def call(self, function: str, *args, sender: int = ALICE,
             value: int = 0):
        fn = self.artifact.abi.function(function)
        tx = Transaction(sender=sender, to=self.address, value=value,
                         data=encode_call(fn, list(args)))
        return self.chain.apply(tx)

    def storage(self, slot: int) -> int:
        return self.chain.world.get_storage(self.address, slot)[0]

    def storage_of(self, var_name: str) -> int:
        return self.storage(self.artifact.layout.slot_of(var_name))


@pytest.fixture
def deploy(chain):
    def _deploy(source_or_artifact, sender: int = ALICE, value: int = 0,
                ctor_args: bytes = b""):
        artifact = source_or_artifact
        if isinstance(artifact, str):
            artifact = compile_source(artifact)
        return ContractHandle(chain, artifact, sender=sender, value=value,
                              ctor_args=ctor_args)
    return _deploy
