"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_reaches_bug_branch():
    out = run_example("quickstart.py")
    assert "withdraw bug branch reached: YES" in out
    assert "repeat candidates: ['invest']" in out


def test_token_audit_reports_findings():
    out = run_example("vulnerable_token_audit.py")
    assert "MuFuzz audit report" in out
    assert "[IO]" in out
    assert "static analyzers" in out


def test_reentrancy_replay_drains_vault():
    out = run_example("reentrancy_attack_replay.py")
    assert "reentrant frames observed: 3" in out
    assert "RE oracle verdict" in out


@pytest.mark.slow
def test_shootout_prints_table():
    out = run_example("fuzzer_shootout.py", "3", "60")
    assert "D1 shoot-out" in out
    assert "MuFuzz" in out and "sFuzz" in out
