"""Golden-result determinism guard for the EVM hot path.

The interpreter overhaul (shared code-analysis cache, table dispatch,
journal-based state reset) must be *behavior-preserving*: campaign results
have to come out byte-identical to the pre-overhaul implementation.  The
committed fixture ``tests/data/golden_campaign.json`` was generated with
the straight-line interpreter and fork-per-iteration reset (post
semantics-bugfixes); this test replays the same matrix on every execution
backend and asserts the canonical JSON still matches, so a dispatch-table
or journal-reset regression that silently changes results is caught — not
just one that crashes.

Regenerate (only after an *intentional* semantics change):

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src:. python tests/test_golden_determinism.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.corpus import generate_d2
from repro.orchestrator import run_matrix
from repro.orchestrator.backends import BACKENDS
from repro.orchestrator.store import canonical_json
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_campaign.json"

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

#: the matrix is small but deliberately diverse: the two hand-written
#: contracts plus two generated d2 entries (different bug templates and
#: gate depths), across the masked and unmasked mutation strategies
PRESETS = ("mufuzz", "sfuzz")
OVERRIDES = {"iterations": 30, "rng_seed": 11}

# The prefix-snapshot state cache is a pure performance layer and defaults
# to on; REPRO_STATE_CACHE pins it explicitly ("1" = on, "0" = off) so CI
# can sweep the whole golden matrix in both modes against the *same*
# fixture — the byte-identity guarantee that justifies the default.
_STATE_CACHE = os.environ.get("REPRO_STATE_CACHE")
if _STATE_CACHE is not None:
    OVERRIDES["use_state_cache"] = _STATE_CACHE == "1"

# Same contract for surface-proof oracle pruning: dropping oracles whose
# bug class the vulnerability surface proves impossible must not move a
# single byte of the results.  REPRO_SURFACE_PRUNING pins it so CI sweeps
# both modes against the one fixture.
_SURFACE_PRUNING = os.environ.get("REPRO_SURFACE_PRUNING")
if _SURFACE_PRUNING is not None:
    OVERRIDES["use_surface_pruning"] = _SURFACE_PRUNING == "1"

# And for block-fused execution: superinstruction closures must replay
# the exact table-loop semantics (gas, steps, events, errors), so the
# whole golden matrix sweeps byte-identical fused and unfused.
_BLOCK_FUSION = os.environ.get("REPRO_BLOCK_FUSION")
if _BLOCK_FUSION is not None:
    OVERRIDES["use_block_fusion"] = _BLOCK_FUSION == "1"


def _golden_contracts() -> list:
    d2 = generate_d2()
    picks = [d2[0], d2[len(d2) // 2]]
    return ([("Crowdsale", CROWDSALE_SOURCE), ("Game", GAME_SOURCE)]
            + [(c.name, c.source) for c in picks])


def _canonical_run(backend: str, **extra_overrides) -> str:
    run = run_matrix(_golden_contracts(), presets=PRESETS, trials=1,
                     overrides={**OVERRIDES, **extra_overrides},
                     workers=WORKERS, backend=backend)
    assert not run.errors and not run.timeouts, (backend, run.errors)
    record = {o.job.job_id: {**o.result.to_dict(), "wall_time": 0.0}
              for o in run.outcomes}
    return canonical_json(record)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_matches_golden_fixture(backend):
    assert GOLDEN_PATH.exists(), \
        "golden fixture missing — see module docstring to regenerate"
    assert _canonical_run(backend) == GOLDEN_PATH.read_text(), \
        (f"{backend} backend diverged from the golden campaign fixture; "
         f"if the semantics change was intentional, regenerate it "
         f"(see module docstring)")


@pytest.mark.parametrize("store_backend", ("json", "sqlite"))
def test_store_backend_transparent_to_golden_fixture(store_backend,
                                                     tmp_path):
    """One fixture, both result stores: persisting through the per-file
    json reference layout or the WAL-mode SQLite backend must change
    nothing — the in-memory results still match the golden fixture, and
    the *persisted canonical records* are byte-identical across backends
    (SQLite's export round-trips to the exact per-file bytes)."""
    from repro.orchestrator.store import ResultStore

    assert GOLDEN_PATH.exists(), \
        "golden fixture missing — see module docstring to regenerate"
    results_dir = tmp_path / "results"
    run = run_matrix(_golden_contracts(), presets=PRESETS, trials=1,
                     overrides=dict(OVERRIDES), workers=WORKERS,
                     backend="inline", results_dir=results_dir,
                     store=store_backend)
    assert not run.errors and not run.timeouts, (store_backend, run.errors)
    record = {o.job.job_id: {**o.result.to_dict(), "wall_time": 0.0}
              for o in run.outcomes}
    assert canonical_json(record) == GOLDEN_PATH.read_text(), \
        (f"store={store_backend} diverged from the golden campaign "
         f"fixture — the result store must never touch results")

    with ResultStore(results_dir) as store:
        assert store.name == store_backend
        persisted = store.canonical_records()
        if store_backend == "sqlite":
            exported = store.export(tmp_path / "exported")
            assert {p.stem: p.read_text() for p in exported} == persisted
    with ResultStore(tmp_path / "reference", backend="json") as ref:
        for outcome in run.outcomes:
            ref.save(outcome)
        assert ref.canonical_records() == persisted, \
            (f"store={store_backend} persisted records diverged from the "
             f"per-file reference layout")


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_interrupted_matrix_resumes_to_golden_fixture(backend, tmp_path):
    """Interrupt/resume determinism against the golden fixture, swept
    across every execution backend.

    Every golden cell is interrupted at an arbitrary mid-campaign
    iteration: the campaign runs inline with a checkpoint sink that aborts
    after its second emission (the engine's crash model), and the captured
    checkpoint is persisted into the results directory exactly as a killed
    worker would have left it.  The full matrix then runs on ``backend`` —
    each worker must *resume* the half-finished campaigns from those
    checkpoints — and the settled results must still match the golden
    fixture byte for byte."""
    from repro.compiler.cache import compile_cached
    from repro.core.fuzzer import Fuzzer
    from repro.orchestrator.jobs import build_matrix
    from repro.orchestrator.store import ResultStore

    jobs = build_matrix(_golden_contracts(), PRESETS, trials=1,
                        overrides=dict(OVERRIDES))
    store = ResultStore(tmp_path / "results")

    class Interrupt(Exception):
        pass

    for job in jobs:
        captured = []

        def sink(checkpoint):
            captured.append(checkpoint)
            if len(captured) == 2:
                raise Interrupt

        fuzzer = Fuzzer(compile_cached(job.source, job.contract),
                        job.build_config(), job.supported_set())
        try:
            fuzzer.run(checkpoint_every=7, checkpoint_sink=sink)
        except Interrupt:
            pass
        assert captured, f"{job.job_id}: campaign emitted no checkpoint"
        store.save_checkpoint(job, captured[-1])

    assert store.checkpoint_ids() == {job.job_id for job in jobs}

    run = run_matrix(_golden_contracts(), presets=PRESETS, trials=1,
                     overrides=dict(OVERRIDES), workers=WORKERS,
                     backend=backend, results_dir=store.root,
                     checkpoint_every=7)
    assert not run.errors and not run.timeouts, (backend, run.errors)
    assert not store.checkpoint_ids()  # consumed on completion
    record = {o.job.job_id: {**o.result.to_dict(), "wall_time": 0.0}
              for o in run.outcomes}
    assert canonical_json(record) == GOLDEN_PATH.read_text(), \
        (f"{backend} backend resumed-from-checkpoint results diverged "
         f"from the golden campaign fixture")


@pytest.mark.parametrize("use_cache", [False, True],
                         ids=["cache-off", "cache-on"])
def test_state_cache_is_transparent_to_golden_fixture(use_cache):
    """One fixture, both cache modes: the prefix-snapshot tree must leave
    campaign results byte-identical whether prefixes are re-executed or
    fast-forwarded (this is the guard behind ``use_state_cache=True`` by
    default)."""
    assert GOLDEN_PATH.exists(), \
        "golden fixture missing — see module docstring to regenerate"
    got = _canonical_run("inline", use_state_cache=use_cache)
    assert got == GOLDEN_PATH.read_text(), \
        (f"use_state_cache={use_cache} diverged from the golden fixture — "
         f"the state cache is supposed to be a pure performance layer")


@pytest.mark.parametrize("use_pruning", [False, True],
                         ids=["pruning-off", "pruning-on"])
def test_surface_pruning_is_transparent_to_golden_fixture(use_pruning):
    """One fixture, both pruning modes: oracles dropped on the surface's
    opcode-absence proofs could never have fired, so campaign results must
    stay byte-identical with pruning on or off (the guard behind
    ``use_surface_pruning=True`` by default)."""
    assert GOLDEN_PATH.exists(), \
        "golden fixture missing — see module docstring to regenerate"
    got = _canonical_run("inline", use_surface_pruning=use_pruning)
    assert got == GOLDEN_PATH.read_text(), \
        (f"use_surface_pruning={use_pruning} diverged from the golden "
         f"fixture — pruned oracles must be provably-dead, never merely "
         f"unlikely")


@pytest.mark.parametrize("use_fusion", [False, True],
                         ids=["fusion-off", "fusion-on"])
def test_block_fusion_is_transparent_to_golden_fixture(use_fusion):
    """One fixture, both execution tiers: block-fused superinstruction
    closures must leave campaign results byte-identical to the per-opcode
    table loop (the guard behind ``use_block_fusion=True`` by default)."""
    assert GOLDEN_PATH.exists(), \
        "golden fixture missing — see module docstring to regenerate"
    got = _canonical_run("inline", use_block_fusion=use_fusion)
    assert got == GOLDEN_PATH.read_text(), \
        (f"use_block_fusion={use_fusion} diverged from the golden fixture "
         f"— fused blocks must replay the table loop's exact semantics")


def test_golden_findings_replay_from_witnesses():
    """Every finding in the golden fixture re-triggers when its stored
    witness sequence is re-executed in a fresh campaign environment (the
    witness/replay half of the streaming-oracle-bus guarantee)."""
    from repro.core.replay import replay_findings
    from repro.oracles.base import Finding
    from repro.orchestrator.jobs import build_matrix

    data = json.loads(GOLDEN_PATH.read_text())
    jobs = {job.job_id: job
            for job in build_matrix(_golden_contracts(), PRESETS, trials=1,
                                    overrides=dict(OVERRIDES))}
    replayed = 0
    for job_id, cell in data.items():
        findings = [Finding.from_dict(f) for f in cell["findings"]]
        if not findings:
            continue
        job = jobs[job_id]
        outcomes = replay_findings(job.source, job.build_config(),
                                   findings, contract=job.contract,
                                   supported=job.supported_set())
        bad = [(o.finding.bug_class.value, o.finding.pc, o.status)
               for o in outcomes if not o.ok]
        assert not bad, f"{job_id}: witnesses failed to re-trigger: {bad}"
        replayed += len(outcomes)
    assert replayed, "golden fixture contains no findings to replay"


if __name__ == "__main__":
    if os.environ.get("REPRO_REGEN_GOLDEN") != "1":
        raise SystemExit("set REPRO_REGEN_GOLDEN=1 to rewrite the fixture")
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    text = _canonical_run("inline")
    GOLDEN_PATH.write_text(text)
    print(f"wrote {GOLDEN_PATH} ({len(text)} bytes, "
          f"{len(json.loads(text))} cells)")
