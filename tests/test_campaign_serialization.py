"""JSON round-trips for CampaignResult/Finding and coverage_at_step edges."""

from __future__ import annotations

import json

from repro.core.campaign import CampaignResult
from repro.oracles.base import BugClass, Finding


def _sample_finding() -> Finding:
    return Finding(bug_class=BugClass.RE, contract="Bank", pc=42, line=7,
                   description="reentrant external call before state write")


def _sample_result() -> CampaignResult:
    return CampaignResult(
        fuzzer="MuFuzz",
        contract="Bank",
        coverage=0.875,
        iterations=300,
        total_steps=123_456,
        wall_time=1.25,
        findings=[_sample_finding(),
                  Finding(bug_class=BugClass.IO, contract="Bank", pc=10,
                          line=3, description="unchecked addition")],
        curve=[(100, 0.25), (500, 0.5), (2000, 0.875)],
        seeds_in_queue=9,
        transactions=1234,
        example_sequence=["deposit", "withdraw"],
    )


class TestFindingRoundTrip:
    def test_identity(self):
        finding = _sample_finding()
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_survives_json(self):
        finding = _sample_finding()
        revived = Finding.from_dict(json.loads(json.dumps(finding.to_dict())))
        assert revived == finding
        assert isinstance(revived.bug_class, BugClass)

    def test_every_bug_class_revives(self):
        for bug_class in BugClass:
            finding = Finding(bug_class=bug_class, contract="C", pc=1,
                              line=1, description="x")
            assert Finding.from_dict(finding.to_dict()).bug_class is bug_class


class TestCampaignResultRoundTrip:
    def test_identity(self):
        result = _sample_result()
        assert CampaignResult.from_dict(result.to_dict()) == result

    def test_survives_json(self):
        result = _sample_result()
        revived = CampaignResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert revived == result
        # curve points come back as hashable tuples, findings as Findings
        assert revived.curve[0] == (100, 0.25)
        assert isinstance(revived.curve[0], tuple)
        assert revived.bug_classes == {BugClass.RE, BugClass.IO}

    def test_optional_fields_default(self):
        minimal = {"fuzzer": "sFuzz", "contract": "C", "coverage": 0.5,
                   "iterations": 10, "total_steps": 100}
        result = CampaignResult.from_dict(minimal)
        assert result.wall_time == 0.0
        assert result.findings == []
        assert result.curve == []
        assert result.example_sequence == []


class TestCoverageAtStep:
    def test_empty_curve_is_zero_everywhere(self):
        result = _sample_result()
        result.curve = []
        assert result.coverage_at_step(0) == 0.0
        assert result.coverage_at_step(10_000) == 0.0

    def test_step_before_first_sample_is_zero(self):
        assert _sample_result().coverage_at_step(99) == 0.0

    def test_exact_step_hit_returns_that_sample(self):
        result = _sample_result()
        assert result.coverage_at_step(100) == 0.25
        assert result.coverage_at_step(500) == 0.5

    def test_step_between_samples_keeps_previous_value(self):
        assert _sample_result().coverage_at_step(1999) == 0.5

    def test_step_past_last_sample_is_final_coverage(self):
        assert _sample_result().coverage_at_step(10**9) == 0.875
