"""Compile-and-execute tests: MiniSol semantics through the full pipeline."""

import pytest

from repro.compiler import compile_source
from repro.compiler.abi import decode_words, encode_words
from repro.compiler.codegen import CompileError
from repro.evm.opcodes import Op
from tests.conftest import ALICE, BOB

U256 = 1 << 256


def run(deploy, body: str, *args, preamble: str = "", sender: int = ALICE,
        value: int = 0, fn_attrs: str = "public payable") -> int:
    """Compile a one-function contract computing a value and return it."""
    params = ", ".join(f"uint256 a{i}" for i in range(len(args)))
    source = f"""
    contract T {{
        {preamble}
        function f({params}) {fn_attrs} returns (uint256) {{
            {body}
        }}
    }}
    """
    handle = deploy(source)
    receipt = handle.call("f", *args, sender=sender, value=value)
    assert receipt.success, receipt.error
    return decode_words(receipt.returndata)[0]


class TestArithmetic:
    def test_addition(self, deploy):
        assert run(deploy, "return a0 + a1;", 2, 3) == 5

    def test_subtraction(self, deploy):
        assert run(deploy, "return a0 - a1;", 10, 4) == 6

    def test_subtraction_wraps(self, deploy):
        assert run(deploy, "return a0 - a1;", 0, 1) == U256 - 1

    def test_multiplication(self, deploy):
        assert run(deploy, "return a0 * a1;", 7, 6) == 42

    def test_division(self, deploy):
        assert run(deploy, "return a0 / a1;", 42, 5) == 8

    def test_division_by_zero_yields_zero(self, deploy):
        assert run(deploy, "return a0 / a1;", 42, 0) == 0

    def test_modulo(self, deploy):
        assert run(deploy, "return a0 % a1;", 42, 5) == 2

    def test_addition_wraps_mod_2_256(self, deploy):
        assert run(deploy, "return a0 + a1;", U256 - 1, 5) == 4

    def test_unary_minus(self, deploy):
        assert run(deploy, "return 0 - (0 - a0);", 9) == 9

    def test_operator_precedence(self, deploy):
        assert run(deploy, "return a0 + a1 * 2;", 1, 3) == 7


class TestComparisons:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("<", 1, 2, 1), ("<", 2, 1, 0), ("<", 1, 1, 0),
        (">", 2, 1, 1), (">", 1, 2, 0),
        ("<=", 1, 1, 1), ("<=", 2, 1, 0),
        (">=", 1, 1, 1), (">=", 1, 2, 0),
        ("==", 5, 5, 1), ("==", 5, 6, 0),
        ("!=", 5, 6, 1), ("!=", 5, 5, 0),
    ])
    def test_comparison(self, deploy, op, a, b, expected):
        body = f"if (a0 {op} a1) {{ return 1; }} return 0;"
        assert run(deploy, body, a, b) == expected

    def test_logical_and(self, deploy):
        body = "if (a0 > 1 && a1 > 1) { return 1; } return 0;"
        assert run(deploy, body, 2, 2) == 1
        assert run(deploy, body, 2, 0) == 0

    def test_logical_or(self, deploy):
        body = "if (a0 > 1 || a1 > 1) { return 1; } return 0;"
        assert run(deploy, body, 0, 2) == 1
        assert run(deploy, body, 0, 0) == 0

    def test_negation(self, deploy):
        body = "if (!(a0 == 1)) { return 1; } return 0;"
        assert run(deploy, body, 2) == 1
        assert run(deploy, body, 1) == 0


class TestControlFlow:
    def test_if_without_else(self, deploy):
        body = "uint256 r = 0; if (a0 == 1) { r = 9; } return r;"
        assert run(deploy, body, 1) == 9
        assert run(deploy, body, 2) == 0

    def test_nested_if(self, deploy):
        body = """
        if (a0 > 10) {
            if (a0 > 100) { return 2; }
            return 1;
        }
        return 0;
        """
        assert run(deploy, body, 5) == 0
        assert run(deploy, body, 50) == 1
        assert run(deploy, body, 500) == 2

    def test_while_loop(self, deploy):
        body = """
        uint256 s = 0;
        uint256 i = 0;
        while (i < a0) { s += i; i += 1; }
        return s;
        """
        assert run(deploy, body, 5) == 10

    def test_for_loop(self, deploy):
        body = """
        uint256 s = 0;
        for (uint256 i = 0; i < a0; i++) { s += 2; }
        return s;
        """
        assert run(deploy, body, 4) == 8

    def test_loop_never_entered(self, deploy):
        body = "uint256 s = 7; while (a0 > 100) { s = 0; a0 = 0; } return s;"
        assert run(deploy, body, 1) == 7

    def test_early_return_inside_loop(self, deploy):
        body = """
        uint256 i = 0;
        while (i < 100) {
            if (i == a0) { return i * 10; }
            i += 1;
        }
        return 0;
        """
        assert run(deploy, body, 3) == 30


class TestRevertsAndAsserts:
    def test_require_pass(self, deploy):
        assert run(deploy, "require(a0 > 1); return 1;", 2) == 1

    def test_require_fail_reverts(self, deploy):
        source = """
        contract T {
            uint256 touched = 0;
            function f(uint256 x) public {
                touched = 1;
                require(x > 10);
            }
        }
        """
        handle = deploy(source)
        receipt = handle.call("f", 3)
        assert not receipt.success
        assert handle.storage_of("touched") == 0  # state rolled back

    def test_assert_fail_is_invalid(self, deploy):
        source = "contract T { function f(uint256 x) public { assert(x == 1); } }"
        handle = deploy(source)
        receipt = handle.call("f", 2)
        assert not receipt.success
        assert "InvalidOpcode" in receipt.error

    def test_revert_statement(self, deploy):
        source = "contract T { function f() public { revert(); } }"
        receipt = deploy(source).call("f")
        assert not receipt.success

    def test_nonpayable_rejects_value(self, deploy):
        source = "contract T { uint256 x; function f() public { x = 1; } }"
        handle = deploy(source)
        assert handle.call("f", value=5).success is False
        assert handle.call("f", value=0).success is True

    def test_unknown_selector_reverts(self, deploy, chain):
        from repro.chain.transactions import Transaction
        handle = deploy("contract T { function f() public {} }")
        tx = Transaction(sender=ALICE, to=handle.address,
                         data=encode_words([0xDEAD]))
        assert chain.apply(tx).success is False

    def test_empty_calldata_reverts(self, deploy, chain):
        from repro.chain.transactions import Transaction
        handle = deploy("contract T { function f() public {} }")
        tx = Transaction(sender=ALICE, to=handle.address, data=b"")
        assert chain.apply(tx).success is False


class TestStateAndMappings:
    def test_state_write_persists_across_transactions(self, deploy):
        source = """
        contract T {
            uint256 total = 0;
            function add(uint256 v) public { total += v; }
        }
        """
        handle = deploy(source)
        handle.call("add", 5)
        handle.call("add", 7)
        assert handle.storage_of("total") == 12

    def test_initializers_run_at_deploy(self, deploy):
        handle = deploy("contract T { uint256 a = 42; uint256 b = 7 ether; }")
        assert handle.storage_of("a") == 42
        assert handle.storage_of("b") == 7 * 10 ** 18

    def test_constructor_argument(self, deploy):
        source = """
        contract T {
            uint256 cap;
            constructor(uint256 c) public { cap = c; }
        }
        """
        handle = deploy(source, ctor_args=encode_words([123]))
        assert handle.storage_of("cap") == 123

    def test_constructor_sets_owner(self, deploy):
        source = """
        contract T {
            address owner;
            constructor() public { owner = msg.sender; }
        }
        """
        handle = deploy(source, sender=BOB)
        assert handle.storage_of("owner") == BOB

    def test_mapping_read_write_per_key(self, deploy):
        source = """
        contract T {
            mapping(address => uint256) bal;
            function set(uint256 v) public { bal[msg.sender] = v; }
            function get() public returns (uint256) { return bal[msg.sender]; }
        }
        """
        handle = deploy(source)
        handle.call("set", 11, sender=ALICE)
        handle.call("set", 22, sender=BOB)
        r_alice = handle.call("get", sender=ALICE)
        r_bob = handle.call("get", sender=BOB)
        assert decode_words(r_alice.returndata)[0] == 11
        assert decode_words(r_bob.returndata)[0] == 22

    def test_mapping_compound_assign(self, deploy):
        source = """
        contract T {
            mapping(address => uint256) bal;
            function add(uint256 v) public { bal[msg.sender] += v; }
            function get() public returns (uint256) { return bal[msg.sender]; }
        }
        """
        handle = deploy(source)
        handle.call("add", 4)
        handle.call("add", 5)
        assert decode_words(handle.call("get").returndata)[0] == 9


class TestCallsAndModifiers:
    def test_internal_call_with_return(self, deploy):
        source = """
        contract T {
            function double(uint256 v) internal returns (uint256) {
                return v * 2;
            }
            function f(uint256 x) public returns (uint256) {
                return double(x) + 1;
            }
        }
        """
        handle = deploy(source)
        assert decode_words(handle.call("f", 21).returndata)[0] == 43

    def test_chained_internal_calls(self, deploy):
        source = """
        contract T {
            function inc(uint256 v) internal returns (uint256) { return v + 1; }
            function twice(uint256 v) internal returns (uint256) {
                return inc(inc(v));
            }
            function f(uint256 x) public returns (uint256) { return twice(x); }
        }
        """
        handle = deploy(source)
        assert decode_words(handle.call("f", 5).returndata)[0] == 7

    def test_recursion_rejected_at_compile_time(self):
        source = """
        contract T {
            function f(uint256 x) public returns (uint256) { return f(x); }
        }
        """
        with pytest.raises(CompileError):
            compile_source(source)

    def test_modifier_guards_function(self, deploy):
        source = """
        contract T {
            address owner;
            uint256 hits = 0;
            modifier onlyOwner() { require(msg.sender == owner); _; }
            constructor() public { owner = msg.sender; }
            function f() public onlyOwner { hits += 1; }
        }
        """
        handle = deploy(source, sender=ALICE)
        assert handle.call("f", sender=BOB).success is False
        assert handle.call("f", sender=ALICE).success is True
        assert handle.storage_of("hits") == 1

    def test_transfer_moves_ether(self, deploy, chain):
        source = """
        contract T {
            function pay(address to) public payable { to.transfer(msg.value); }
        }
        """
        handle = deploy(source)
        before = chain.world.get_balance(BOB)
        receipt = handle.call("pay", BOB, value=10 ** 18)
        assert receipt.success
        assert chain.world.get_balance(BOB) - before == 10 ** 18

    def test_send_returns_flag_without_revert(self, deploy):
        source = """
        contract T {
            uint256 outcome = 99;
            function pay(address to, uint256 amount) public {
                bool ok = to.send(amount);
                if (ok) { outcome = 1; } else { outcome = 0; }
            }
        }
        """
        handle = deploy(source)
        # contract has no balance: send fails, but the tx itself succeeds
        receipt = handle.call("pay", BOB, 10 ** 18)
        assert receipt.success
        assert handle.storage_of("outcome") == 0

    def test_selfdestruct_transfers_balance_and_removes_code(
            self, deploy, chain):
        source = """
        contract T {
            function die(address to) public { selfdestruct(to); }
        }
        """
        handle = deploy(source, value=5 * 10 ** 18)
        before = chain.world.get_balance(BOB)
        assert handle.call("die", BOB).success
        assert chain.world.get_balance(BOB) - before == 5 * 10 ** 18
        assert chain.world.get_code(handle.address) == b""


class TestArtifacts:
    def test_branch_info_kinds(self, crowdsale_artifact):
        kinds = {info.kind
                 for info in crowdsale_artifact.branch_info.values()}
        assert {"calldata", "dispatch", "payable", "if", "transfer"} <= kinds

    def test_branch_nesting_recorded(self, deploy):
        source = """
        contract T {
            function f(uint256 x) public {
                if (x > 1) { if (x > 2) { x = 0; } }
            }
        }
        """
        artifact = compile_source(source)
        nestings = sorted(info.nesting
                          for info in artifact.branch_info.values()
                          if info.kind == "if")
        assert nestings == [0, 1]

    def test_srcmap_lines_plausible(self, crowdsale_artifact):
        lines = set(crowdsale_artifact.srcmap.values())
        assert max(lines) <= CROWDSALE_LINE_COUNT

    def test_all_jump_targets_are_jumpdests(self, crowdsale_artifact):
        from repro.analysis.disassembler import disassemble
        code = crowdsale_artifact.runtime_code
        dests = {ins.pc for ins in disassemble(code)
                 if ins.opcode == Op.JUMPDEST}
        instructions = disassemble(code)
        for i, ins in enumerate(instructions[:-1]):
            nxt = instructions[i + 1]
            if nxt.opcode in (Op.JUMP, Op.JUMPI) and ins.operand is not None:
                assert ins.operand in dests

    def test_instruction_count_positive(self, crowdsale_artifact):
        assert crowdsale_artifact.instruction_count > 50

    def test_function_entries_cover_externals(self, crowdsale_artifact):
        assert set(crowdsale_artifact.function_entries) == {
            "invest", "refund", "withdraw"}


from tests.conftest import CROWDSALE_SOURCE  # noqa: E402

CROWDSALE_LINE_COUNT = CROWDSALE_SOURCE.count("\n") + 1
