"""Tests for the staged campaign engine: budgets, stages, checkpoints.

The headline guarantee lives in ``TestCheckpointResume``: interrupting a
campaign at *any* checkpoint boundary and resuming from the serialized
checkpoint (through its JSON wire format) produces a ``CampaignResult``
byte-identical — modulo ``wall_time`` — to the uninterrupted run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core import Fuzzer, mufuzz_config
from repro.core.config import FuzzerConfig
from repro.core.coverage import CoverageTracker
from repro.core.energy import EnergyScheduler
from repro.core.seeds import Seed, SeedQueue, TxCall
from repro.engine.budget import Budget
from repro.engine.checkpoint import CampaignCheckpoint
from repro.orchestrator.store import canonical_json
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE


def result_bytes(result) -> str:
    """Canonical JSON of a campaign result with wall time zeroed."""
    return canonical_json({**result.to_dict(), "wall_time": 0.0})


# -- Budget: the single stopping authority ----------------------------------------


class TestBudget:
    def test_iteration_budget(self):
        budget = Budget(max_iterations=3)
        for _ in range(3):
            assert not budget.exhausted()
            budget.note_execution()
        assert budget.exhausted()

    def test_transaction_budget(self):
        budget = Budget(max_transactions=5)
        budget.note_transaction(4)
        assert not budget.exhausted()
        budget.note_transaction()
        assert budget.exhausted()

    def test_wall_clock_budget(self):
        budget = Budget(max_wall_clock=0.01)
        budget.start()
        assert not budget.exhausted() or budget.elapsed() >= 0.01
        time.sleep(0.02)
        assert budget.exhausted()

    def test_first_exhausted_limit_stops(self):
        budget = Budget(max_iterations=100, max_transactions=2)
        budget.note_transaction(2)
        assert budget.exhausted()

    def test_prior_wall_carries_across_sessions(self):
        budget = Budget(max_wall_clock=10.0)
        budget.restore_state({"iterations_used": 7, "transactions_used": 9,
                              "prior_wall": 4.5})
        assert budget.iterations_used == 7
        assert budget.transactions_used == 9
        assert budget.elapsed() >= 4.5

    def test_from_config_rejects_unbounded(self):
        config = mufuzz_config()
        config.iterations = None
        with pytest.raises(ValueError, match="unbounded"):
            Budget.from_config(config)

    def test_from_config_combines_all_three(self):
        config = mufuzz_config(iterations=50)
        config.tx_budget = 400
        config.time_budget = 2.5
        budget = Budget.from_config(config)
        assert budget.max_iterations == 50
        assert budget.max_transactions == 400
        assert budget.max_wall_clock == 2.5

    def test_state_roundtrip(self):
        budget = Budget(max_iterations=100)
        budget.note_execution()
        budget.note_transaction(3)
        restored = Budget(max_iterations=100)
        restored.restore_state(budget.state_dict())
        assert restored.iterations_used == 1
        assert restored.transactions_used == 3


class TestMaskProbeCap:
    """Regression: ``int(iterations * fraction)`` used to truncate to zero
    on small campaigns, so a nonzero mask budget computed no masks at all."""

    def test_small_campaign_still_affords_one_mask(self):
        assert Budget(max_iterations=5).mask_probe_cap(0.15) == 1

    def test_zero_fraction_stays_zero(self):
        assert Budget(max_iterations=1000).mask_probe_cap(0.0) == 0

    def test_large_campaign_unchanged(self):
        assert Budget(max_iterations=1000).mask_probe_cap(0.15) == 150

    def test_tx_budget_cap_counts_executions_not_transactions(self):
        """Probes are full-sequence executions: a transaction budget is
        converted through the observed transactions-per-execution ratio,
        so probing spends ~fraction of the budget, not sequence-length
        times more."""
        budget = Budget(max_transactions=1000)
        # campaign history: 5 transactions per execution on average
        budget.iterations_used = 20
        budget.transactions_used = 100
        assert budget.mask_probe_cap(0.15) == 30  # 150 tx / 5 tx-per-exec

    def test_tx_budget_cap_before_any_execution(self):
        assert Budget(max_transactions=40).mask_probe_cap(0.15) == 6

    def test_pure_wall_clock_budget_uncapped(self):
        assert Budget(max_wall_clock=60.0).mask_probe_cap(0.15) is None

    def test_small_masked_campaign_computes_a_mask(self):
        """End to end: a 12-iteration mufuzz campaign (cap would have been
        int(12*0.15) == 0) still runs Algorithm 2 probes."""
        fuzzer = Fuzzer(GAME_SOURCE, mufuzz_config(iterations=12,
                                                   rng_seed=5))
        fuzzer.run()
        assert fuzzer.budget.mask_probe_cap(
            fuzzer.config.mask_budget_fraction) == 1


# -- Coverage curve: bounded recording --------------------------------------------


class StubArtifact:
    total_branches = 4
    branch_info: dict = {}


class FakeTrace:
    def __init__(self, edges=(), steps=10):
        self.branch_edges = {(1, pc, taken) for pc, taken in edges}
        self.steps = steps


def make_tracker(capacity) -> CoverageTracker:
    return CoverageTracker(artifact=StubArtifact(), address=1,
                           curve_capacity=capacity)


class TestBoundedCurve:
    def test_short_campaigns_record_every_execution(self):
        tracker = make_tracker(capacity=64)
        for _ in range(63):
            tracker.add_trace(FakeTrace(steps=10))
        assert len(tracker.curve) == 63
        assert tracker.curve[-1] == (630, 0.0)

    def test_curve_stays_bounded(self):
        tracker = make_tracker(capacity=64)
        for _ in range(10_000):
            tracker.add_trace(FakeTrace(steps=10))
        assert len(tracker.curve) < 64
        # samples stay in recording order with monotone steps,
        # and total_steps accounting is unaffected by decimation
        steps = [s for s, _ in tracker.curve]
        assert steps == sorted(steps)
        assert tracker.total_steps == 100_000
        assert tracker.curve[-1][0] > 90_000  # recent samples retained

    def test_state_roundtrip_preserves_recording_state(self):
        tracker = make_tracker(capacity=16)
        for i in range(200):
            tracker.add_trace(FakeTrace(edges=[(i % 3, True)], steps=5))
        restored = make_tracker(capacity=16)
        restored.restore_state(
            json.loads(json.dumps(tracker.state_dict())))
        assert restored.covered == tracker.covered
        assert restored.curve == tracker.curve
        assert restored._samples_seen == tracker._samples_seen
        assert restored._record_interval == tracker._record_interval
        # identical future recording behavior
        tracker.add_trace(FakeTrace(steps=5))
        restored.add_trace(FakeTrace(steps=5))
        assert restored.curve == tracker.curve

    def test_campaign_curve_bounded_and_result_stable(self):
        """A real campaign with a tiny capacity keeps the curve bounded
        while leaving every other result field untouched."""
        config = mufuzz_config(iterations=80, rng_seed=3)
        unbounded = Fuzzer(CROWDSALE_SOURCE, config)
        bounded = Fuzzer(CROWDSALE_SOURCE, config)
        bounded.coverage.curve_capacity = 16
        r_unbounded = unbounded.run()
        r_bounded = bounded.run()
        assert len(r_bounded.curve) < 16 < len(r_unbounded.curve)
        assert r_bounded.coverage == r_unbounded.coverage
        assert r_bounded.iterations == r_unbounded.iterations
        assert r_bounded.findings == r_unbounded.findings
        # the decimated curve is a subsequence of the full one
        assert set(map(tuple, r_bounded.curve)) <= \
            set(map(tuple, r_unbounded.curve))

    def test_sample_curve_still_resamples(self):
        tracker = make_tracker(capacity=8)
        tracker.curve = [(i, i / 10.0) for i in range(7)]
        sampled = tracker.sample_curve(points=4)
        assert sampled[-1] == (6, 0.6)
        assert len(sampled) == 5


# -- SeedQueue: incremental target -> best-seed index ------------------------------


class TestSeedQueueTargetIndex:
    @staticmethod
    def seed_with(distances):
        return Seed(calls=[TxCall(function="f")], distances=dict(distances))

    def brute_force(self, queue, target):
        best, best_dist = None, None
        for seed in queue.seeds:
            dist = seed.distances.get(target)
            if dist is None:
                continue
            if best_dist is None or dist < best_dist:
                best, best_dist = seed, dist
        return best

    def test_index_matches_brute_force(self):
        import random
        rng = random.Random(42)
        targets = [(1, pc, True) for pc in range(6)]
        queue = SeedQueue()
        for _ in range(40):
            distances = {t: rng.randrange(100)
                         for t in rng.sample(targets, rng.randint(0, 4))}
            queue.add(self.seed_with(distances))
            for target in targets:
                assert queue.best_for_target(target) \
                    is self.brute_force(queue, target)

    def test_ties_keep_the_earliest_seed(self):
        """On equal distance the first-added seed must win — that is the
        answer the historical first-match scan produced."""
        target = (1, 10, True)
        queue = SeedQueue()
        first = self.seed_with({target: 5})
        second = self.seed_with({target: 5})
        queue.add(first)
        queue.add(second)
        assert queue.best_for_target(target) is first
        assert queue.index_for_target(target) == 0

    def test_unknown_target_returns_none(self):
        queue = SeedQueue()
        queue.add(self.seed_with({}))
        assert queue.best_for_target((1, 99, False)) is None
        assert queue.index_for_target((1, 99, False)) is None


# -- EnergyScheduler checkpoint state ----------------------------------------------


class TestSchedulerState:
    def test_state_roundtrip(self):
        scheduler = EnergyScheduler(strategy="dynamic", prefix=None,
                                    base_energy=4, max_energy=16)
        scheduler.weights = {10: 0.5, 20: 2.0}
        scheduler.hit_counts = {(10, True): 3, (20, False): 1}
        scheduler._max_weight = 2.0
        restored = EnergyScheduler(strategy="dynamic", prefix=None,
                                   base_energy=4, max_energy=16)
        restored.restore_state(
            json.loads(json.dumps(scheduler.state_dict())))
        assert restored.weights == scheduler.weights
        assert restored.hit_counts == scheduler.hit_counts
        assert restored._max_weight == scheduler._max_weight


# -- Checkpoint: wire format and the determinism guarantee -------------------------


class TestCheckpointWire:
    def _checkpoint(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=25,
                                                        rng_seed=9))
        fuzzer.run()
        return fuzzer.checkpoint()

    def test_json_roundtrip_is_exact(self):
        checkpoint = self._checkpoint()
        text = checkpoint.to_json()
        assert CampaignCheckpoint.from_json(text).to_json() == text

    def test_canonical_bytes(self):
        checkpoint = self._checkpoint()
        text = checkpoint.to_json()
        assert text == checkpoint.to_json()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == 2

    def test_unknown_schema_rejected(self):
        data = json.loads(self._checkpoint().to_json())
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            CampaignCheckpoint.from_dict(data)

    def test_checkpoint_before_run_rejected(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=5))
        with pytest.raises(ValueError, match="not started"):
            fuzzer.checkpoint()

    def test_resume_without_source_requires_artifact(self):
        checkpoint = self._checkpoint()
        checkpoint.source = None
        with pytest.raises(ValueError, match="artifact"):
            Fuzzer.resume(checkpoint)

    def test_resume_rejects_wrong_contract(self):
        """A checkpoint must never be restored into a campaign for a
        different contract — overlapping function names would silently
        corrupt results instead of crashing."""
        from repro.compiler import compile_source
        checkpoint = self._checkpoint()
        assert checkpoint.contract == "Crowdsale"
        # source without the contract: fails at compile selection
        with pytest.raises(ValueError, match="Crowdsale"):
            Fuzzer.resume(checkpoint, artifact=GAME_SOURCE)
        # prebuilt artifact for the wrong contract: fails the name guard
        with pytest.raises(ValueError, match="Crowdsale"):
            Fuzzer.resume(checkpoint,
                          artifact=compile_source(GAME_SOURCE))

    def test_resume_picks_the_right_contract_from_multi_source(self):
        """Embedded-source resume compiles the checkpoint's contract even
        when the source file holds several and another comes first."""
        multi = GAME_SOURCE + CROWDSALE_SOURCE
        from repro.compiler import compile_source
        artifact = compile_source(multi, "Crowdsale")
        config = mufuzz_config(iterations=25, rng_seed=9)
        fuzzer = Fuzzer(artifact, config)
        fuzzer.run()
        resumed = Fuzzer.resume(fuzzer.checkpoint())  # source embedded
        assert resumed.artifact.name == "Crowdsale"

    def test_state_cache_campaigns_checkpoint_and_resume(self):
        """The prefix-snapshot tree is checkpoint-transparent: a cached
        campaign interrupted mid-flight resumes (cache rebuilt cold) to
        the same bytes as the uninterrupted run."""
        config = mufuzz_config(iterations=40, rng_seed=13,
                               use_state_cache=True)
        baseline = result_bytes(Fuzzer(CROWDSALE_SOURCE, config).run())
        checkpoints = []
        Fuzzer(CROWDSALE_SOURCE, config).run(
            checkpoint_every=9, checkpoint_sink=checkpoints.append)
        assert checkpoints, "campaign too short to emit checkpoints"
        for checkpoint in checkpoints:
            restored = CampaignCheckpoint.from_json(checkpoint.to_json())
            resumed = Fuzzer.resume(restored, artifact=CROWDSALE_SOURCE)
            assert resumed.state_cache is not None  # config round-trips
            assert result_bytes(resumed.run()) == baseline


class TestCheckpointResume:
    """The hard guarantee: interrupt at any iteration + resume reproduces
    the uninterrupted ``CampaignResult`` byte-for-byte (sans wall time)."""

    CONFIGS = [
        ("mufuzz-crowdsale", CROWDSALE_SOURCE,
         dict(iterations=60, rng_seed=7)),
        ("mufuzz-game", GAME_SOURCE, dict(iterations=45, rng_seed=3)),
    ]

    @pytest.mark.parametrize("label,source,kwargs",
                             CONFIGS, ids=[c[0] for c in CONFIGS])
    def test_resume_at_every_boundary_is_byte_identical(self, label,
                                                        source, kwargs):
        config = mufuzz_config(**kwargs)
        baseline = result_bytes(Fuzzer(source, config).run())

        checkpoints = []
        Fuzzer(source, config).run(checkpoint_every=7,
                                   checkpoint_sink=checkpoints.append)
        assert checkpoints, "campaign too short to emit checkpoints"
        for checkpoint in checkpoints:
            # through the wire: what a killed process would leave on disk
            restored = CampaignCheckpoint.from_json(checkpoint.to_json())
            resumed = Fuzzer.resume(restored, artifact=source).run()
            assert result_bytes(resumed) == baseline

    def test_resume_from_embedded_source(self):
        config = mufuzz_config(iterations=40, rng_seed=11)
        baseline = result_bytes(Fuzzer(CROWDSALE_SOURCE, config).run())
        checkpoints = []
        Fuzzer(CROWDSALE_SOURCE, config).run(
            checkpoint_every=13, checkpoint_sink=checkpoints.append)
        # no artifact argument: the checkpoint embeds the MiniSol source
        resumed = Fuzzer.resume(checkpoints[0]).run()
        assert result_bytes(resumed) == baseline

    def test_interrupting_sink_models_a_crash(self):
        """A sink that raises aborts the campaign mid-flight; resuming from
        its last emitted checkpoint still converges to the baseline."""
        config = mufuzz_config(iterations=50, rng_seed=2)
        baseline = result_bytes(Fuzzer(CROWDSALE_SOURCE, config).run())

        class Interrupt(Exception):
            pass

        captured = []

        def sink(checkpoint):
            captured.append(checkpoint)
            if len(captured) == 2:
                raise Interrupt

        with pytest.raises(Interrupt):
            Fuzzer(CROWDSALE_SOURCE, config).run(checkpoint_every=5,
                                                 checkpoint_sink=sink)
        resumed = Fuzzer.resume(captured[-1], artifact=CROWDSALE_SOURCE)
        assert result_bytes(resumed.run()) == baseline

    def test_tx_budget_campaign_resumes_exactly(self):
        config = mufuzz_config(iterations=None, rng_seed=4)
        config.tx_budget = 260
        baseline = result_bytes(Fuzzer(CROWDSALE_SOURCE, config).run())
        checkpoints = []
        Fuzzer(CROWDSALE_SOURCE, config).run(
            checkpoint_every=9, checkpoint_sink=checkpoints.append)
        assert checkpoints
        resumed = Fuzzer.resume(checkpoints[-1], artifact=CROWDSALE_SOURCE)
        assert result_bytes(resumed.run()) == baseline

    def test_run_kwargs_validation(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=5))
        with pytest.raises(ValueError, match=">= 1"):
            fuzzer.run(checkpoint_every=0, checkpoint_sink=lambda c: None)
        with pytest.raises(ValueError, match="sink"):
            fuzzer.run(checkpoint_every=5)


# -- Budgeted campaigns end to end -------------------------------------------------


class TestBudgetedCampaigns:
    def test_tx_budget_stops_the_campaign(self):
        config = mufuzz_config(iterations=None, rng_seed=1)
        config.tx_budget = 120
        fuzzer = Fuzzer(CROWDSALE_SOURCE, config)
        result = fuzzer.run()
        assert result.transactions >= 120
        # overshoot is at most one sequence (budget checked per iteration)
        assert result.transactions <= 120 + config.max_sequence_length + 1

    def test_time_budget_stops_the_campaign(self):
        config = mufuzz_config(iterations=None, rng_seed=1)
        config.time_budget = 0.3
        start = time.perf_counter()
        result = Fuzzer(CROWDSALE_SOURCE, config).run()
        elapsed = time.perf_counter() - start
        assert result.iterations > 0
        assert elapsed < 30.0  # stopped by time, not by running forever

    def test_fuzzer_counters_route_through_budget(self):
        fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=10,
                                                        rng_seed=1))
        fuzzer.run()
        assert fuzzer.executions == fuzzer.budget.iterations_used
        assert fuzzer.transactions == fuzzer.budget.transactions_used
        assert fuzzer.executions >= 10

    def test_config_dataclass_carries_budget_fields(self):
        config = FuzzerConfig(iterations=None, tx_budget=5,
                              time_budget=1.0)
        assert config.iterations is None
        assert config.tx_budget == 5
        assert config.time_budget == 1.0

    def test_dead_energy_field_removed(self):
        assert not hasattr(Seed(), "energy")
