"""Integration tests: full campaigns on the paper's example contracts."""

import pytest

from repro.core import (
    Fuzzer,
    confuzzius_config,
    fuzz_contract,
    irfuzz_config,
    mufuzz_config,
    sfuzz_config,
    smartian_config,
)
from repro.oracles import BugClass
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE


@pytest.fixture(scope="module")
def crowdsale_run():
    fuzzer = Fuzzer(CROWDSALE_SOURCE, mufuzz_config(iterations=150,
                                                    rng_seed=7))
    return fuzzer, fuzzer.run()


class TestCrowdsaleCampaign:
    """The paper's motivating example (§III): MuFuzz must reach the
    phase == 1 branch inside withdraw."""

    def test_campaign_completes_within_budget(self, crowdsale_run):
        _, result = crowdsale_run
        assert result.iterations <= 150
        assert result.transactions > result.iterations

    def test_withdraw_deep_branch_covered(self, crowdsale_run):
        fuzzer, _ = crowdsale_run
        withdraw_ifs = [pc for pc, info in fuzzer.artifact.branch_info.items()
                        if info.function == "withdraw" and info.kind == "if"]
        assert withdraw_ifs
        for pc in withdraw_ifs:
            assert (pc, True) in fuzzer.coverage.covered, \
                "MuFuzz failed the paper's motivating example"

    def test_coverage_reasonably_high(self, crowdsale_run):
        _, result = crowdsale_run
        assert result.coverage > 0.7

    def test_curve_recorded_and_monotone(self, crowdsale_run):
        _, result = crowdsale_run
        assert len(result.curve) == result.iterations
        values = [cov for _, cov in result.curve]
        assert values == sorted(values)

    def test_sequence_repeats_invest(self, crowdsale_run):
        fuzzer, _ = crowdsale_run
        repeated = any(seed.functions.count("invest") >= 2
                       for seed in fuzzer.queue)
        assert repeated, "sequence-aware mutation never duplicated invest"


class TestGameCampaign:
    """Figure 4: the 88-finney guard and nested lucky-number branch."""

    def test_magic_value_guard_crossed(self):
        fuzzer = Fuzzer(GAME_SOURCE, mufuzz_config(iterations=200,
                                                   rng_seed=3))
        result = fuzzer.run()
        require_pcs = [pc for pc, info in fuzzer.artifact.branch_info.items()
                       if info.kind == "require"]
        crossed = any((pc, True) in fuzzer.coverage.covered
                      for pc in require_pcs)
        assert crossed, "msg.value == 88 finney was never satisfied"
        assert BugClass.BD in result.bug_classes  # timestamp-derived random

    def test_game_overflow_detected(self):
        result = fuzz_contract(GAME_SOURCE,
                               mufuzz_config(iterations=200, rng_seed=3))
        # balance[msg.sender] += msg.value * 10 can truncate
        assert BugClass.IO in result.bug_classes or result.coverage > 0.5


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = fuzz_contract(CROWDSALE_SOURCE,
                              mufuzz_config(iterations=60, rng_seed=42))
        second = fuzz_contract(CROWDSALE_SOURCE,
                               mufuzz_config(iterations=60, rng_seed=42))
        assert first.coverage == second.coverage
        assert [f.key for f in first.findings] == \
            [f.key for f in second.findings]

    def test_different_seeds_may_differ(self):
        results = {fuzz_contract(
            CROWDSALE_SOURCE,
            mufuzz_config(iterations=40, rng_seed=s)).coverage
            for s in (1, 2, 3)}
        assert results  # smoke: runs complete


class TestBaselinePresets:
    @pytest.mark.parametrize("preset", [
        sfuzz_config, confuzzius_config, irfuzz_config, smartian_config])
    def test_baseline_campaign_runs(self, preset):
        result = fuzz_contract(CROWDSALE_SOURCE,
                               preset(iterations=40, rng_seed=5))
        assert result.iterations <= 40
        assert 0.0 < result.coverage <= 1.0
        assert result.fuzzer == preset().name

    def test_motivating_example_differentiates(self):
        """§III-B: fuzzers without sequence-aware repetition rarely reach
        the withdraw branch with a small budget; MuFuzz does."""
        mufuzz = Fuzzer(CROWDSALE_SOURCE,
                        mufuzz_config(iterations=100, rng_seed=11))
        mufuzz_result = mufuzz.run()
        withdraw_pcs = [pc for pc, info
                        in mufuzz.artifact.branch_info.items()
                        if info.function == "withdraw"
                        and info.kind == "if"]
        assert all((pc, True) in mufuzz.coverage.covered
                   for pc in withdraw_pcs)


class TestAblationVariants:
    """Fig. 7 machinery: disabling one component must still run."""

    @pytest.mark.parametrize("overrides", [
        {"sequence_strategy": "random"},
        {"use_mask": False},
        {"energy_strategy": "uniform"},
    ])
    def test_variant_runs(self, overrides):
        config = mufuzz_config(iterations=40, rng_seed=9).variant(**overrides)
        result = fuzz_contract(CROWDSALE_SOURCE, config)
        assert result.iterations <= 40


class TestEdgeCases:
    def test_contract_without_functions(self):
        result = fuzz_contract("contract Empty { uint256 x = 1; }",
                               mufuzz_config(iterations=10))
        assert result.coverage == 1.0
        assert result.iterations == 0

    def test_view_only_contract(self):
        source = """
        contract Pure {
            function add(uint256 a, uint256 b) public returns (uint256) {
                return a + b;
            }
        }
        """
        result = fuzz_contract(source, mufuzz_config(iterations=30))
        assert result.coverage > 0.0

    def test_findings_report_lines(self):
        source = """
        contract Killable {
            function kill() public { selfdestruct(msg.sender); }
        }
        """
        result = fuzz_contract(source, mufuzz_config(iterations=30))
        us = [f for f in result.findings if f.bug_class == BugClass.US]
        assert us and us[0].line == 3
