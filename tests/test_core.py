"""Unit tests for the fuzzer core: sequences, masks, energy, coverage."""

import random

import pytest

from repro.analysis.dataflow import analyze_contract
from repro.analysis.prefix import PrefixAnalyzer
from repro.compiler import compile_source
from repro.core import (
    CoverageTracker,
    EnergyScheduler,
    MutationType,
    Seed,
    SeedQueue,
    SequenceGenerator,
    SeedMutator,
    TxCall,
    config as cfg_mod,
)
from repro.core.config import (
    ENERGY_DYNAMIC,
    ENERGY_REVISIT,
    ENERGY_UNIFORM,
    SEQ_DATAFLOW,
    SEQ_DATAFLOW_REPEAT,
    SEQ_RANDOM,
)
from repro.core.masking import MutationMask, compute_mask, mutate_stream
from repro.evm.trace import BranchEvent, ExecutionTrace
from repro.lang.parser import parse_source
from tests.conftest import CROWDSALE_SOURCE


def make_seqgen(strategy, source=CROWDSALE_SOURCE, seed=1, max_length=8):
    contract = parse_source(source).contracts[0]
    dataflow = analyze_contract(contract)
    return SequenceGenerator(contract, dataflow, random.Random(seed),
                             strategy, max_length)


class TestSequenceGenerator:
    def test_dataflow_order_puts_invest_first(self):
        gen = make_seqgen(SEQ_DATAFLOW)
        order = gen.dependency_order()
        assert order.index("invest") < order.index("withdraw")
        assert order.index("invest") < order.index("refund")

    def test_repeat_mutation_duplicates_invest(self):
        """§IV-A: [invest, refund, withdraw] → [..., invest, withdraw]."""
        gen = make_seqgen(SEQ_DATAFLOW_REPEAT)
        mutated = gen.apply_repeat_mutation(["invest", "refund", "withdraw"])
        assert mutated.count("invest") == 2
        # the duplicate lands before withdraw (the phase reader)
        last_invest = max(i for i, f in enumerate(mutated)
                          if f == "invest")
        assert last_invest < mutated.index("withdraw") or \
            mutated[last_invest + 1] == "withdraw"

    def test_repeat_candidates_match_paper(self):
        gen = make_seqgen(SEQ_DATAFLOW_REPEAT)
        assert gen.repeat_candidates() == {"invest"}

    def test_random_strategy_contains_all_functions(self):
        gen = make_seqgen(SEQ_RANDOM)
        seq = gen.base_sequence()
        assert set(seq) >= {"invest", "refund", "withdraw"}

    def test_sequence_respects_max_length(self):
        gen = make_seqgen(SEQ_DATAFLOW_REPEAT, max_length=3)
        assert len(gen.base_sequence()) <= 3

    def test_single_function_padded_with_repetition(self):
        source = """
        contract T {
            uint256 total = 0;
            function mint(uint256 v) public { total += v; }
        }
        """
        gen = make_seqgen(SEQ_DATAFLOW, source=source)
        assert len(gen.base_sequence()) >= 3

    def test_mutate_sequence_stays_in_pool(self):
        gen = make_seqgen(SEQ_RANDOM)
        seq = ["invest", "refund"]
        for _ in range(50):
            seq = gen.mutate_sequence(seq)
            assert all(f in {"invest", "refund", "withdraw"} for f in seq)
            assert 1 <= len(seq) <= 8


class TestTxCallStreams:
    def test_stream_roundtrip(self):
        call = TxCall(function="f", args=[1, 2, 3], value=7, sender=9)
        decoded = call.apply_stream(call.to_stream())
        assert decoded.args == [1, 2, 3]
        assert decoded.value == 7
        assert decoded.sender == 9

    def test_stream_length(self):
        call = TxCall(function="f", args=[5, 6], value=0)
        assert len(call.to_stream()) == 3 * 32

    def test_shortened_stream_zero_pads(self):
        call = TxCall(function="f", args=[5, 6], value=1)
        decoded = call.apply_stream(b"\x01" * 16)
        assert len(decoded.args) == 2
        assert decoded.args[1] == 0

    def test_oversized_stream_truncates(self):
        call = TxCall(function="f", args=[5], value=1)
        decoded = call.apply_stream(b"\xff" * 500)
        assert len(decoded.args) == 1


class TestMutationOperators:
    def test_overwrite_changes_bytes_in_place(self):
        rng = random.Random(0)
        stream = bytes(64)
        out = mutate_stream(stream, MutationType.OVERWRITE, 10, 4, rng)
        assert len(out) == 64
        assert out != stream

    def test_insert_grows_stream(self):
        rng = random.Random(0)
        out = mutate_stream(bytes(64), MutationType.INSERT, 0, 8, rng)
        assert len(out) == 72

    def test_delete_shrinks_stream(self):
        rng = random.Random(0)
        out = mutate_stream(bytes(64), MutationType.DELETE, 0, 8, rng)
        assert len(out) == 56

    def test_replace_word_aligned_uses_interesting(self):
        rng = random.Random(0)
        out = mutate_stream(bytes(64), MutationType.REPLACE, 0, 32, rng)
        from repro.core.inputs import INTERESTING_UINTS
        assert int.from_bytes(out[:32], "big") in INTERESTING_UINTS

    def test_empty_stream_tolerated(self):
        rng = random.Random(0)
        out = mutate_stream(b"", MutationType.OVERWRITE, 0, 1, rng)
        assert len(out) == 32


class TestMaskComputation:
    def test_mask_allows_positions_that_keep_property(self):
        # probe says: mutations in the first 16 bytes break the property
        def probe(stream: bytes) -> bool:
            return stream[:16] == bytes(16)

        mask = compute_mask(bytes(64), probe, random.Random(1),
                            probe_limit=16)
        allowed_positions = set(mask.allowed)
        # positions late in the stream must be allowed for some op
        assert any(pos >= 32 for pos in allowed_positions)

    def test_ok_to_mutate_respects_mask(self):
        mask = MutationMask(length=4)
        mask.allow(2, MutationType.OVERWRITE)
        assert mask.ok_to_mutate(2, MutationType.OVERWRITE)
        assert not mask.ok_to_mutate(2, MutationType.DELETE)
        assert not mask.ok_to_mutate(0, MutationType.OVERWRITE)

    def test_spread_fills_gaps(self):
        mask = MutationMask(length=10)
        mask.allow(0, MutationType.INSERT)
        mask.spread(10)
        assert mask.ok_to_mutate(9, MutationType.INSERT)

    def test_masked_mutator_never_touches_disallowed(self):
        """Invariant: the masked mutator only mutates allowed pairs."""
        rng = random.Random(2)
        mutator = SeedMutator(rng)
        call = TxCall(function="f", args=[0xAA] * 2, value=0)
        mask = MutationMask(length=96)
        # allow only overwrites in the last word (the value word)
        for pos in range(64, 96):
            mask.allow(pos, MutationType.OVERWRITE)
        for _ in range(50):
            mutated = mutator.masked_mutate(call, mask)
            assert mutated is not None
            assert mutated.args[0] == 0xAA  # first word untouched

    def test_masked_mutator_returns_none_for_empty_mask(self):
        mutator = SeedMutator(random.Random(0))
        call = TxCall(function="f", args=[1], value=0)
        assert mutator.masked_mutate(call, MutationMask(length=64)) is None

    def test_afl_mutate_changes_something_eventually(self):
        mutator = SeedMutator(random.Random(3), constants=(12345,))
        call = TxCall(function="f", args=[7, 8], value=9)
        changed = any(mutator.afl_mutate(call).to_stream() != call.to_stream()
                      for _ in range(10))
        assert changed


class TestEnergyScheduler:
    def _scheduler(self, strategy, artifact):
        return EnergyScheduler(strategy=strategy,
                               prefix=PrefixAnalyzer(artifact.runtime_code),
                               base_energy=4, max_energy=16)

    def _trace(self, pcs, address=1):
        trace = ExecutionTrace()
        for pc in pcs:
            trace.branches.append(BranchEvent(pc=pc, address=address,
                                              depth=0, taken=True))
        return trace

    def test_uniform_energy_constant(self, crowdsale_artifact):
        scheduler = self._scheduler(ENERGY_UNIFORM, crowdsale_artifact)
        assert scheduler.energy_for(Seed()) == 4

    def test_prefuzz_assigns_growing_weights(self, crowdsale_artifact):
        scheduler = self._scheduler(ENERGY_DYNAMIC, crowdsale_artifact)
        pcs = sorted(crowdsale_artifact.branch_info)[:3]
        scheduler.prefuzz(self._trace(pcs), target_address=1)
        weights = [scheduler.weight_of(pc) for pc in pcs]
        assert weights[0] < weights[2]  # deeper on path → higher w1

    def test_dynamic_energy_scales_with_weight(self, crowdsale_artifact):
        scheduler = self._scheduler(ENERGY_DYNAMIC, crowdsale_artifact)
        pcs = sorted(crowdsale_artifact.branch_info)
        scheduler.prefuzz(self._trace(pcs), target_address=1)
        shallow = Seed(covered_edges={(pcs[0], True)})
        deep = Seed(covered_edges={(pcs[-1], True)})
        assert scheduler.energy_for(deep) >= scheduler.energy_for(shallow)

    def test_revisit_energy_boosts_rare_edges(self, crowdsale_artifact):
        scheduler = self._scheduler(ENERGY_REVISIT, crowdsale_artifact)
        pc = sorted(crowdsale_artifact.branch_info)[0]
        for _ in range(10):
            scheduler.record(self._trace([pc]), target_address=1)
        common = Seed(covered_edges={(pc, True)})
        rare_pc = sorted(crowdsale_artifact.branch_info)[1]
        scheduler.record(self._trace([rare_pc]), target_address=1)
        rare = Seed(covered_edges={(rare_pc, True)})
        assert scheduler.energy_for(rare) > scheduler.energy_for(common)

    def test_energy_capped(self, crowdsale_artifact):
        scheduler = self._scheduler(ENERGY_DYNAMIC, crowdsale_artifact)
        pcs = sorted(crowdsale_artifact.branch_info)
        scheduler.prefuzz(self._trace(pcs * 5), target_address=1)
        seed = Seed(covered_edges={(pc, True) for pc in pcs})
        assert scheduler.energy_for(seed) <= 16


class TestCoverageTracker:
    def _tracker(self, artifact):
        return CoverageTracker(artifact=artifact, address=1)

    def _trace(self, edges, address=1, steps=10):
        trace = ExecutionTrace()
        trace.branch_edges = {(address, pc, taken) for pc, taken in edges}
        trace.steps = steps
        return trace

    def test_new_edges_counted(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        pc = sorted(crowdsale_artifact.branch_info)[0]
        assert tracker.add_trace(self._trace([(pc, True)])) == 1
        assert tracker.add_trace(self._trace([(pc, True)])) == 0

    def test_coverage_fraction(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        pc = sorted(crowdsale_artifact.branch_info)[0]
        tracker.add_trace(self._trace([(pc, True), (pc, False)]))
        expected = 2 / crowdsale_artifact.total_branches
        assert tracker.coverage() == pytest.approx(expected)

    def test_other_address_ignored(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        pc = sorted(crowdsale_artifact.branch_info)[0]
        assert tracker.add_trace(self._trace([(pc, True)], address=2)) == 0

    def test_curve_monotone_nondecreasing(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        pcs = sorted(crowdsale_artifact.branch_info)
        for pc in pcs:
            tracker.add_trace(self._trace([(pc, True)]))
        values = [cov for _, cov in tracker.curve]
        assert values == sorted(values)

    def test_uncovered_targets_shrink(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        initial = len(tracker.uncovered_targets())
        pc = sorted(crowdsale_artifact.branch_info)[0]
        tracker.add_trace(self._trace([(pc, True)]))
        assert len(tracker.uncovered_targets()) == initial - 1

    def test_step_multiplier_scales_time_axis(self, crowdsale_artifact):
        tracker = self._tracker(crowdsale_artifact)
        pc = sorted(crowdsale_artifact.branch_info)[0]
        tracker.add_trace(self._trace([(pc, True)], steps=100),
                          step_multiplier=1.6)
        assert tracker.total_steps == 160


class TestSeedQueue:
    def test_best_for_target(self):
        queue = SeedQueue()
        near = Seed(distances={(1, 5, True): 3})
        far = Seed(distances={(1, 5, True): 30})
        queue.add(far)
        queue.add(near)
        assert queue.best_for_target((1, 5, True)) is near

    def test_best_for_unknown_target_is_none(self):
        queue = SeedQueue()
        queue.add(Seed())
        assert queue.best_for_target((1, 99, True)) is None

    def test_maskable_selection(self):
        queue = SeedQueue()
        plain = Seed()
        nested = Seed(nested_hits={5})
        improver = Seed(improved_distance=True)
        for seed in (plain, nested, improver):
            queue.add(seed)
        assert set(map(id, queue.maskable())) == {id(nested), id(improver)}

    def test_clone_bumps_generation(self):
        seed = Seed(calls=[TxCall(function="f", args=[1])], generation=2)
        child = seed.clone()
        assert child.generation == 3
        assert child.calls is not seed.calls


class TestConfigs:
    def test_named_presets_shapes(self):
        assert cfg_mod.mufuzz_config().use_mask
        assert not cfg_mod.sfuzz_config().use_mask
        assert cfg_mod.sfuzz_config().sequence_strategy == SEQ_RANDOM
        assert cfg_mod.smartian_config().reexecution_overhead > 1.0
        assert cfg_mod.irfuzz_config().energy_strategy == ENERGY_REVISIT

    def test_variant_override(self):
        config = cfg_mod.mufuzz_config(iterations=5).variant(use_mask=False)
        assert config.iterations == 5
        assert not config.use_mask
        assert config.name == "MuFuzz"


class TestSamplePositions:
    def test_short_stream_probes_everything(self):
        from repro.core.masking import _sample_positions
        assert _sample_positions(8, 24) == list(range(8))

    def test_word_boundaries_always_probed(self):
        from repro.core.masking import _sample_positions
        # regression: length 33, limit 24 used to never probe position 32,
        # skipping the entire second argument word
        for length, limit in ((33, 24), (65, 4), (96, 8), (129, 24)):
            positions = _sample_positions(length, limit)
            boundaries = set(range(0, length, 32))
            assert boundaries <= set(positions), (length, limit, positions)

    def test_budget_tighter_than_word_count_samples_boundaries(self):
        from repro.core.masking import _sample_positions
        positions = _sample_positions(32 * 10, 4)
        assert len(positions) <= 4
        assert all(p % 32 == 0 for p in positions)
        # evenly spread across the whole stream, not truncated from the
        # front: the first and last words are both probed
        assert positions[0] == 0
        assert positions[-1] == 32 * 9

    def test_long_stream_tail_words_still_probed(self):
        from repro.core.masking import _sample_positions
        # regression: 33 words at limit 24 used to probe only words 0-23
        positions = _sample_positions(32 * 33, 24)
        assert positions[-1] == 32 * 32
        assert len(positions) <= 24

    def test_interior_budget_is_spent(self):
        from repro.core.masking import _sample_positions
        # regression: length 64 at limit 4 used to return only [0, 32]
        # (interior stride landed on word boundaries and was filtered out)
        positions = _sample_positions(64, 4)
        assert len(positions) == 4
        assert any(p % 32 != 0 for p in positions)
