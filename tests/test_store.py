"""The result-store package: backend parity, durability, and scale hooks.

Covers the store split (json per-file reference vs WAL-mode sqlite):
byte-identical canonical records across backends, export round-trips,
buffered-write flush semantics, the indexed findings projection,
content-addressed checkpoint blobs with refcounted GC, stale temp-file
sweeping, concurrent multi-process writers (no lost or torn records), and
a hypothesis round-trip of records through sqlite back to canonical JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.campaign import CampaignResult
from repro.engine.checkpoint import CampaignCheckpoint, canonical_json
from repro.oracles.base import SEVERITIES, BugClass, Finding
from repro.orchestrator import CampaignJob
from repro.orchestrator.jobs import JobOutcome
from repro.orchestrator.store import (
    DB_NAME,
    JsonResultStore,
    ResultStore,
    SqliteResultStore,
    atomic_write_text,
    build_record,
    finding_fingerprint,
    resolve_store_backend,
)

BACKEND_NAMES = ("json", "sqlite")

#: a source that is never compiled here — store tests exercise
#: persistence, not fuzzing, so records are synthesized
SOURCE = "contract C { function f() public { } }"


def _job(name: str = "C", preset: str = "mufuzz",
         trial: int = 0, **kw) -> CampaignJob:
    base = dict(name=name, source=SOURCE, preset=preset, trial=trial,
                overrides={"iterations": 5})
    base.update(kw)
    return CampaignJob(**base)


def _finding(contract: str = "C", bug_class: BugClass = BugClass.RE,
             pc: int = 7, severity: str = "high") -> Finding:
    return Finding(bug_class=bug_class, contract=contract, pc=pc,
                   line=3, description=f"{bug_class.value} at {pc}",
                   severity=severity, confidence=0.9,
                   witness=({"fn": "f", "args": [], "value": 0,
                             "sender": 1},))


def _outcome(job: CampaignJob, findings=(), telemetry=None,
             coverage: float = 0.5) -> JobOutcome:
    result = CampaignResult(
        fuzzer="MuFuzz", contract=job.name, coverage=coverage,
        iterations=10, total_steps=400, wall_time=1.25,
        findings=list(findings), curve=[(100, 0.25), (400, coverage)],
        seeds_in_queue=3, transactions=20)
    return JobOutcome(job=job, status="ok", result=result,
                      telemetry=telemetry)


def _checkpoint(contract: str = "C") -> CampaignCheckpoint:
    return CampaignCheckpoint(
        config={"iterations": 5}, rng_state=(3, tuple(range(6)), None),
        budget={"iterations_used": 2}, queue=[], coverage={},
        selector={}, masked={}, scheduler={}, collector={},
        oracle_state={}, loop={}, fuzzer="MuFuzz", contract=contract)


@pytest.fixture(params=BACKEND_NAMES)
def store(request, tmp_path):
    store = ResultStore(tmp_path / "results", backend=request.param)
    yield store
    store.close()


class TestBackendSelection:
    def test_explicit_backend_wins(self, tmp_path):
        assert ResultStore(tmp_path / "a", backend="json").name == "json"
        assert ResultStore(tmp_path / "b",
                           backend="sqlite").name == "sqlite"

    def test_existing_store_keeps_its_format(self, tmp_path, monkeypatch):
        sql_dir, json_dir = tmp_path / "sql", tmp_path / "json"
        ResultStore(sql_dir, backend="sqlite").close()
        json_store = ResultStore(json_dir, backend="json")
        json_store.save(_outcome(_job()))
        # even with the env pointing the other way, an existing store is
        # never silently forked into a second format
        monkeypatch.setenv("REPRO_STORE", "json")
        assert resolve_store_backend(sql_dir) == "sqlite"
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        assert resolve_store_backend(json_dir) == "json"

    def test_env_applies_to_fresh_directories_only(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        assert resolve_store_backend(tmp_path / "fresh") == "sqlite"
        monkeypatch.delenv("REPRO_STORE")
        assert resolve_store_backend(tmp_path / "fresh2") == "json"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path, backend="postgres")

    def test_checkpoints_do_not_pin_a_format(self, tmp_path, monkeypatch):
        """A directory holding only checkpoint files (interrupted before
        any record settled) is still 'fresh' for format selection."""
        store = ResultStore(tmp_path / "r", backend="json")
        store.save_checkpoint(_job(), _checkpoint())
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        assert resolve_store_backend(tmp_path / "r") == "sqlite"


class TestRoundTrip:
    def test_save_load_round_trip(self, store):
        job = _job()
        outcome = _outcome(job, findings=[_finding()],
                           telemetry={"counters": {"x": 1}})
        assert store.save(outcome) is not None
        loaded = store.load(job)
        assert loaded is not None and loaded.ok
        expected = CampaignResult.from_dict(
            {**outcome.result.to_dict(), "wall_time": 0.0})
        assert loaded.result == expected
        assert loaded.telemetry == {"counters": {"x": 1}}

    def test_stale_fingerprint_not_reused(self, store):
        store.save(_outcome(_job()))
        edited = _job(source=SOURCE + "\n// edited\n")
        assert store.load(edited) is None
        assert store.fresh_ids([edited]) == set()
        assert store.completed_ids() == {_job().job_id}

    def test_fresh_ids_and_load_fresh(self, store):
        jobs = [_job(trial=t) for t in range(3)]
        for job in jobs[:2]:
            store.save(_outcome(job))
        assert store.fresh_ids(jobs) == {j.job_id for j in jobs[:2]}
        loaded = store.load_fresh(jobs)
        assert sorted(loaded) == sorted(j.job_id for j in jobs[:2])
        assert all(o.ok for o in loaded.values())

    def test_failures_not_persisted(self, store):
        failed = JobOutcome(job=_job(), status="error", error="boom")
        assert store.save(failed) is None
        assert store.completed_ids() == set()

    def test_delete_record_drops_everything(self, store):
        job = _job()
        store.save(_outcome(job, findings=[_finding()]))
        assert store.delete_record(job.job_id)
        assert store.completed_ids() == set()
        assert store.query_findings() == []
        assert not store.delete_record(job.job_id)  # already gone

    def test_record_for_returns_parsed_record(self, store):
        job = _job()
        store.save(_outcome(job))
        record = store.record_for(job.job_id)
        assert record["job_id"] == job.job_id
        assert record["schema"] == 2
        assert store.record_for("nonesuch") is None


class TestCanonicalParity:
    def test_identical_canonical_text_across_backends(self, tmp_path):
        jobs = [_job(trial=t) for t in range(3)]
        outcomes = [_outcome(job, findings=[_finding(pc=10 + t)])
                    for t, job in enumerate(jobs)]
        canon = {}
        for name in BACKEND_NAMES:
            with ResultStore(tmp_path / name, backend=name) as store:
                for outcome in outcomes:
                    store.save(outcome)
                canon[name] = store.canonical_records()
        assert canon["json"] == canon["sqlite"]
        assert len(canon["json"]) == 3

    def test_export_round_trips_to_per_file_layout(self, tmp_path):
        outcome = _outcome(_job(), findings=[_finding()])
        with ResultStore(tmp_path / "db", backend="sqlite") as store:
            store.save(outcome)
            paths = store.export(tmp_path / "out")
        with ResultStore(tmp_path / "ref", backend="json") as ref:
            ref_path = ref.save(outcome)
        assert [p.name for p in paths] == [ref_path.name]
        assert paths[0].read_bytes() == ref_path.read_bytes()
        # the exported directory is itself a working json store
        with ResultStore(tmp_path / "out") as reread:
            assert reread.name == "json"
            assert reread.load(_job()) is not None


class TestFindingsProjection:
    def _populate(self, store):
        specs = [("C", BugClass.RE, 7, "high", "mufuzz", 0),
                 ("C", BugClass.RE, 7, "high", "sfuzz", 0),
                 ("C", BugClass.IO, 21, "medium", "mufuzz", 1),
                 ("D", BugClass.TO, 33, "low", "mufuzz", 0)]
        by_job: dict = {}
        for contract, bug_class, pc, severity, preset, trial in specs:
            job = _job(name=contract, preset=preset, trial=trial)
            by_job.setdefault(job.job_id, (job, []))[1].append(
                _finding(contract=contract, bug_class=bug_class, pc=pc,
                         severity=severity))
        for job, findings in by_job.values():
            store.save(_outcome(job, findings=findings))

    def test_rows_carry_coordinates_and_fingerprint(self, store):
        self._populate(store)
        rows = store.query_findings()
        assert len(rows) == 4
        assert {row["preset"] for row in rows} == {"mufuzz", "sfuzz"}
        re_rows = [r for r in rows if r["bug_class"] == "RE"]
        # the same defect reported by two presets shares one fingerprint
        assert len({r["fingerprint"] for r in re_rows}) == 1
        assert re_rows[0]["fingerprint"] == \
            finding_fingerprint("RE", "C", 7)

    def test_filters(self, store):
        self._populate(store)
        assert len(store.query_findings(contract="C")) == 3
        assert len(store.query_findings(bug_class="RE")) == 2
        assert len(store.query_findings(bug_class=["RE", "IO"])) == 3
        assert len(store.query_findings(severity="low")) == 1
        assert len(store.query_findings(preset="sfuzz")) == 1
        assert store.query_findings(contract="C", severity="low") == []
        assert store.query_findings(bug_class=[]) == []

    def test_filtered_rows_identical_across_backends(self, tmp_path):
        results = {}
        for name in BACKEND_NAMES:
            with ResultStore(tmp_path / name, backend=name) as store:
                self._populate(store)
                results[name] = (store.query_findings(),
                                 store.query_findings(contract="C",
                                                      bug_class="RE"))
        assert results["json"] == results["sqlite"]

    def test_severities_cover_the_ladder(self, store):
        self._populate(store)
        assert {r["severity"] for r in store.query_findings()} == \
            set(SEVERITIES)


class TestAtomicWrites:
    def test_temp_name_appends_never_rewrites_suffix(self, tmp_path,
                                                     monkeypatch):
        """The checkpoint temp must be <name>.tmp appended to the full
        compound suffix — with_suffix('.tmp') would collapse
        'j.checkpoint.json' and 'j.telemetry.json' onto one temp path."""
        renames = []
        real_replace = os.replace

        def spy(src, dst):
            renames.append((os.path.basename(str(src)),
                            os.path.basename(str(dst))))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        atomic_write_text(tmp_path / "j.checkpoint.json", "{}\n")
        assert renames == [("j.checkpoint.json.tmp", "j.checkpoint.json")]

    def test_checkpoint_write_uses_appended_temp(self, tmp_path):
        store = ResultStore(tmp_path, backend="json")
        job = _job()
        path = store.save_checkpoint(job, _checkpoint())
        assert path.name == f"{job.job_id}.checkpoint.json"
        assert store.load_checkpoint(job) is not None
        # no stray temp, and no file with a mangled suffix
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob("*.checkpoint"))

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_stale_temps_swept_on_open(self, tmp_path, backend):
        root = tmp_path / "results"
        root.mkdir()
        stale = root / "dead.json.tmp"
        stale.write_text("{ torn")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = root / "live.json.tmp"
        fresh.write_text("{ in flight")
        store = ResultStore(root, backend=backend)
        assert not stale.exists()  # crashed writer's orphan: swept
        assert fresh.exists()      # a concurrent writer's: kept
        assert store.temps_swept == 1
        store.close()


class TestSqliteBuffering:
    def test_writes_are_batched_until_flush(self, tmp_path):
        root = tmp_path / "r"
        store = ResultStore(root, backend="sqlite", batch_size=1000,
                            flush_interval=3600.0)
        for trial in range(5):
            store.save(_outcome(_job(trial=trial)))
        # a second, independent connection must not see unflushed rows
        with ResultStore(root) as observer:
            assert observer.completed_ids() == set()
        store.flush()
        with ResultStore(root) as observer:
            assert len(observer.completed_ids()) == 5
        assert store.stats_dict()["batch_flushes"] >= 1
        assert store.stats_dict()["rows_written"] >= 5
        store.close()

    def test_batch_size_threshold_forces_flush(self, tmp_path):
        root = tmp_path / "r"
        store = ResultStore(root, backend="sqlite", batch_size=2,
                            flush_interval=3600.0)
        store.save(_outcome(_job(trial=0)))
        store.save(_outcome(_job(trial=1)))  # hits the threshold
        with ResultStore(root) as observer:
            assert len(observer.completed_ids()) == 2
        store.close()

    def test_reads_flush_first(self, tmp_path):
        store = ResultStore(tmp_path / "r", backend="sqlite",
                            batch_size=1000, flush_interval=3600.0)
        job = _job()
        store.save(_outcome(job))
        # same store: any read path must observe its own buffered writes
        assert store.completed_ids() == {job.job_id}
        store.close()

    def test_close_flushes(self, tmp_path):
        root = tmp_path / "r"
        store = ResultStore(root, backend="sqlite", batch_size=1000,
                            flush_interval=3600.0)
        store.save(_outcome(_job()))
        store.close()
        with ResultStore(root) as observer:
            assert len(observer.completed_ids()) == 1


class TestCheckpointBlobs:
    def test_checkpoint_round_trip_and_file_transport(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        path = store.save_checkpoint(job, _checkpoint())
        # the worker-visible file transport is unchanged: a plain
        # canonical checkpoint file at the json-backend path
        assert path == tmp_path / f"{job.job_id}.checkpoint.json"
        assert path.exists()
        loaded = store.load_checkpoint(job)
        assert loaded is not None and loaded.contract == "C"
        assert store.checkpoint_ids() == {job.job_id}
        store.close()

    def test_db_row_survives_file_loss(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        path = store.save_checkpoint(job, _checkpoint())
        path.unlink()  # lose the worker-visible hardlink
        assert store.load_checkpoint(job) is not None  # blob fallback
        store.close()

    def test_identical_payloads_share_one_blob(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        store.save_checkpoint(job, _checkpoint())
        store.save_checkpoint(job, _checkpoint())  # same content
        assert len(store.blobs.shas()) == 1
        store.close()

    def test_rewrite_releases_the_old_blob(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        store.save_checkpoint(job, _checkpoint())
        first = set(store.blobs.shas())
        store.save_checkpoint(job, _checkpoint(contract="Other"))
        remaining = store.blobs.shas()
        assert len(remaining) == 1 and remaining != first  # refcount 0: gone
        store.close()

    def test_clear_checkpoint_releases_blob_and_file(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        path = store.save_checkpoint(job, _checkpoint())
        store.clear_checkpoint(job)
        assert not path.exists()
        assert store.checkpoint_ids() == set()
        assert store.blobs.shas() == set()
        store.close()

    def test_saving_the_record_consumes_the_checkpoint(self, tmp_path):
        """A completed job's checkpoint is spent: persisting its result
        drops the row, the blob reference, and the worker file."""
        store = ResultStore(tmp_path, backend="sqlite")
        job = _job()
        path = store.save_checkpoint(job, _checkpoint())
        store.save(_outcome(job))
        store.flush()
        assert store.checkpoint_ids() == set()
        assert not path.exists()
        assert store.blobs.shas() == set()
        store.close()

    def test_gc_sweeps_orphan_blobs(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        sha = store.blobs.put("orphaned payload\n")
        assert store.blobs.has(sha)
        assert store.gc_blobs() == 1
        assert not store.blobs.has(sha)
        # referenced blobs survive GC
        job = _job()
        store.save_checkpoint(job, _checkpoint())
        assert store.gc_blobs() == 0
        assert store.load_checkpoint(job) is not None
        store.close()


_STRESS_WORKER = r"""
import sys
from repro.core.campaign import CampaignResult
from repro.orchestrator import CampaignJob
from repro.orchestrator.jobs import JobOutcome
from repro.orchestrator.store import ResultStore

root, backend, worker, count = (sys.argv[1], sys.argv[2], int(sys.argv[3]),
                                int(sys.argv[4]))
kwargs = {"batch_size": 7, "flush_interval": 0.01} \
    if backend == "sqlite" else {}
store = ResultStore(root, backend=backend, **kwargs)
for i in range(count):
    job = CampaignJob(name=f"W{worker}", preset="mufuzz", trial=i,
                      source="contract C { function f() public { } }",
                      overrides={"iterations": 5})
    result = CampaignResult(fuzzer="MuFuzz", contract=job.name,
                            coverage=0.5, iterations=10, total_steps=400,
                            wall_time=1.25, transactions=20)
    store.save(JobOutcome(job=job, status="ok", result=result))
store.close()
"""


class TestConcurrentWriters:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_parallel_processes_lose_nothing(self, tmp_path, backend):
        """N processes hammer one store; every record must land intact
        (parseable, canonical, fingerprint-correct) — no lost writes, no
        torn rows, even with sqlite's buffered writer flushing under
        cross-process lock contention."""
        workers, per_worker = 4, 25
        root = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
        procs = [subprocess.Popen(
            [sys.executable, "-c", _STRESS_WORKER, str(root), backend,
             str(w), str(per_worker)], env=env)
            for w in range(workers)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        with ResultStore(root) as store:
            assert store.name == backend
            canonical = store.canonical_records()
            assert len(canonical) == workers * per_worker
            jobs = [_job(name=f"W{w}", trial=i)
                    for w in range(workers) for i in range(per_worker)]
            assert store.fresh_ids(jobs) == {j.job_id for j in jobs}
            for job in jobs:
                # byte-exact: the canonical text is exactly what a lone
                # writer would have produced — torn or interleaved rows
                # cannot survive this comparison
                expected = canonical_json(build_record(
                    JobOutcome(job=job, status="ok",
                               result=CampaignResult(
                                   fuzzer="MuFuzz", contract=job.name,
                                   coverage=0.5, iterations=10,
                                   total_steps=400, wall_time=1.25,
                                   transactions=20))))
                assert canonical[job.job_id] == expected, job.job_id


_description = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=0, max_size=40)

_findings = st.lists(
    st.builds(
        Finding,
        bug_class=st.sampled_from(sorted(BugClass,
                                         key=lambda bc: bc.value)),
        contract=st.just("C"),
        pc=st.integers(min_value=0, max_value=10_000),
        line=st.integers(min_value=0, max_value=500),
        description=_description,
        severity=st.sampled_from(SEVERITIES),
        confidence=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False, width=64),
    ),
    max_size=5, unique_by=lambda f: (f.bug_class, f.pc))


class TestHypothesisRoundTrip:
    @given(findings=_findings,
           coverage=st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, width=64),
           telemetry=st.one_of(
               st.none(),
               st.dictionaries(st.text(max_size=8),
                               st.integers(min_value=0,
                                           max_value=2**40),
                               max_size=3)))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_sqlite_round_trips_to_canonical_json(self, tmp_path, findings,
                                                  coverage, telemetry):
        """Any record pushed through the sqlite backend comes back as the
        exact canonical JSON the reference backend would have written,
        and loads back to an equal result."""
        job = _job()
        outcome = _outcome(job, findings=findings, telemetry=telemetry,
                           coverage=coverage)
        expected_text = canonical_json(build_record(outcome))
        with ResultStore(tmp_path / "db", backend="sqlite") as store:
            store.save(outcome)
            assert store.canonical_records() == {job.job_id: expected_text}
            loaded = store.load(job)
            assert loaded is not None
            assert loaded.result == CampaignResult.from_dict(
                {**outcome.result.to_dict(), "wall_time": 0.0})
            assert loaded.telemetry == telemetry
            assert len(store.query_findings(job_id=job.job_id)) == \
                len(findings)


class TestStoreStats:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_stats_dict_counts_activity(self, tmp_path, backend):
        with ResultStore(tmp_path / "r", backend=backend) as store:
            job = _job()
            store.save(_outcome(job, findings=[_finding()]))
            store.flush()
            store.load(job)
            store.query_findings()
            stats = store.stats_dict()
        assert stats["backend"] == backend
        assert stats["records_saved"] == 1
        assert stats["records_loaded"] >= 1
        if backend == "sqlite":
            assert stats["batch_flushes"] >= 1
            assert stats["rows_written"] >= 2  # record + finding row
        assert stats["queries"] >= 1

    def test_db_file_not_mistaken_for_a_record(self, tmp_path):
        with ResultStore(tmp_path, backend="sqlite") as store:
            store.save(_outcome(_job()))
        assert (tmp_path / DB_NAME).exists()
        # a json store never globs results.db or the blobs dir
        ids = JsonResultStore(tmp_path).completed_ids()
        assert DB_NAME not in {f"{i}.json" for i in ids}

    def test_factory_returns_expected_classes(self, tmp_path):
        assert isinstance(ResultStore(tmp_path / "a", backend="json"),
                          JsonResultStore)
        assert isinstance(ResultStore(tmp_path / "b", backend="sqlite"),
                          SqliteResultStore)
