"""Streaming oracle bus: parity, subscription filtering, witnesses, replay.

The bus refactor's contract: campaigns driven by incremental event dispatch
must report exactly what the historical per-receipt batch scan reported;
restricting the oracle set must only *remove* findings (strict subset) and
must stop the machine from materializing the event kinds nobody consumes;
and every finding's stored witness must re-trigger it deterministically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import mufuzz_config, normalize_bug_classes
from repro.core.fuzzer import Fuzzer
from repro.core.replay import replay_findings
from repro.evm.trace import (
    EV_ALL,
    EV_BRANCH,
    EV_CALL,
    EV_COMPARE,
    EV_ETHER,
    EV_OVERFLOW,
    EV_SELFDESTRUCT,
    EV_STORAGE,
)
from repro.oracles import ALL_BUG_CLASSES, BugClass, Finding, all_oracles
from repro.oracles.base import FindingCollector
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE

#: a contract whose short campaigns reliably produce IO + EF findings
VULNERABLE_SOURCE = """
contract Lockbox {
    uint256 total = 0;
    mapping(address => uint256) shares;
    function put(uint256 v) public payable {
        shares[msg.sender] += v;
        total += v;
    }
    function take(uint256 v) public {
        shares[msg.sender] -= v;
        total -= v;
    }
}
"""


def _campaign(source: str, iterations: int = 40, **overrides):
    config = mufuzz_config(iterations=iterations, rng_seed=5, **overrides)
    fuzzer = Fuzzer(source, config)
    return fuzzer, fuzzer.run()


class TestStreamingBatchParity:
    """Bus-driven findings == re-scanning every receipt with fresh oracles
    through the legacy batch adapter."""

    @pytest.mark.parametrize("source", [VULNERABLE_SOURCE, GAME_SOURCE,
                                        CROWDSALE_SOURCE])
    def test_streamed_equals_batch_rescan(self, source):
        config = mufuzz_config(iterations=25, rng_seed=3)
        fuzzer = Fuzzer(source, config)

        receipts = []
        original_end = fuzzer.bus.end_transaction

        def spy(receipt):
            receipts.append(receipt)
            return original_end(receipt)

        fuzzer.bus.end_transaction = spy
        result = fuzzer.run()

        batch = FindingCollector()
        oracles = all_oracles()
        for receipt in receipts:
            for oracle in oracles:
                batch.extend(oracle.on_receipt(receipt, fuzzer.ctx))
        for oracle in oracles:
            batch.extend(oracle.finalize(fuzzer.ctx))

        streamed = {(f.key, f.description) for f in result.findings}
        rescanned = {(f.key, f.description) for f in batch.all()}
        assert streamed == rescanned
        if source is VULNERABLE_SOURCE:
            assert result.findings  # parity must have checked something


class TestSubscriptionFiltering:
    def test_full_oracle_mask_skips_unconsumed_kinds(self):
        """No oracle subscribes to storage reads/writes, so even an
        all-oracles campaign must not pay to materialize them."""
        fuzzer, _ = _campaign(VULNERABLE_SOURCE, iterations=5)
        mask = fuzzer.base_chain.event_mask
        assert mask & EV_BRANCH
        assert mask & EV_OVERFLOW
        assert not mask & EV_STORAGE

    def test_restricted_mask_matches_selection(self):
        fuzzer, _ = _campaign(VULNERABLE_SOURCE, iterations=5,
                              bug_classes=("IO",))
        mask = fuzzer.base_chain.event_mask
        assert mask == EV_BRANCH | EV_OVERFLOW

    def test_unsubscribed_events_not_materialized(self):
        fuzzer = Fuzzer(VULNERABLE_SOURCE,
                        mufuzz_config(iterations=5, rng_seed=5,
                                      bug_classes=("IO",)))
        seed = fuzzer._fresh_seed()
        trace = fuzzer._execute(seed)
        assert trace.branches          # engine feedback always recorded
        assert not trace.compares      # SE/TO deselected
        assert not trace.calls         # RE/UE/UD/BD deselected
        assert not trace.storage_ops   # never subscribed
        assert not trace.block_reads   # never subscribed
        assert not trace.ether_received

    def test_no_oracle_campaign_records_branches_only(self):
        fuzzer = Fuzzer(VULNERABLE_SOURCE,
                        mufuzz_config(iterations=5, rng_seed=5,
                                      bug_classes=()))
        assert fuzzer.oracles == []
        assert fuzzer.base_chain.event_mask == EV_BRANCH
        result = fuzzer.run()
        assert result.findings == []
        assert result.coverage > 0

    def test_default_machine_still_records_everything(self):
        """Library users constructing Chain/Machine directly keep the full
        trace — filtering is opt-in by the fuzzer."""
        from repro.chain import Chain
        assert Chain().event_mask == EV_ALL


class TestRestrictedCampaigns:
    def test_single_oracle_findings_are_strict_subset(self):
        _, full = _campaign(VULNERABLE_SOURCE)
        full_keys = {f.key for f in full.findings}
        assert {f.bug_class for f in full.findings} >= {BugClass.IO,
                                                        BugClass.EF}
        for bug_class in (BugClass.IO, BugClass.EF, BugClass.RE):
            _, restricted = _campaign(VULNERABLE_SOURCE,
                                      bug_classes=(bug_class.value,))
            keys = {f.key for f in restricted.findings}
            assert keys <= full_keys
            assert all(f.bug_class == bug_class
                       for f in restricted.findings)
            # the selected class loses nothing by running alone
            assert keys == {k for k in full_keys if k[0] == bug_class}

    def test_restriction_composes_with_supported_set(self):
        config = mufuzz_config(iterations=10, rng_seed=5,
                               bug_classes=("IO", "RE"))
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config,
                        supported_bug_classes={BugClass.IO, BugClass.EF})
        assert [o.bug_class for o in fuzzer.oracles] == [BugClass.IO]

    def test_normalize_bug_classes(self):
        assert normalize_bug_classes(None) is None
        assert normalize_bug_classes(()) == ()
        assert normalize_bug_classes(["RE", BugClass.IO, "RE"]) == \
            ("IO", "RE")
        with pytest.raises(ValueError):
            normalize_bug_classes(["XX"])

    def test_coverage_identical_under_restriction(self):
        """Oracle selection must not perturb the campaign itself — same
        seeds, same coverage, same curve; only findings differ."""
        _, full = _campaign(VULNERABLE_SOURCE, iterations=15)
        _, none = _campaign(VULNERABLE_SOURCE, iterations=15,
                            bug_classes=())
        assert none.coverage == full.coverage
        assert none.curve == full.curve
        assert none.iterations == full.iterations
        assert none.transactions == full.transactions


class TestFindingKey:
    def test_key_includes_contract(self):
        """Two findings at the same pc in different contracts must not
        collapse (multi-contract campaign regression)."""
        a = Finding(BugClass.IO, "TokenA", pc=42, line=3, description="x")
        b = Finding(BugClass.IO, "TokenB", pc=42, line=3, description="x")
        collector = FindingCollector()
        assert collector.add(a)
        assert collector.add(b)
        assert len(collector.all()) == 2
        assert a.key != b.key

    def test_same_contract_same_pc_still_dedups(self):
        a = Finding(BugClass.IO, "Token", pc=42, line=3, description="x")
        b = Finding(BugClass.IO, "Token", pc=42, line=3, description="y")
        collector = FindingCollector()
        assert collector.add(a)
        assert not collector.add(b)
        assert collector.all() == [a]


class TestWitnesses:
    def test_every_finding_carries_a_witness(self):
        _, result = _campaign(VULNERABLE_SOURCE)
        assert result.findings
        for finding in result.findings:
            assert finding.witness, finding
            for call in finding.witness:
                assert {"function", "args", "value", "sender"} <= set(call)

    def test_witness_replay_retriggers_all(self):
        config = mufuzz_config(iterations=40, rng_seed=5)
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config)
        result = fuzzer.run()
        assert result.findings
        outcomes = replay_findings(VULNERABLE_SOURCE, config,
                                   result.findings)
        assert all(o.ok for o in outcomes), \
            [(o.finding.bug_class, o.status) for o in outcomes]

    def test_witness_is_triggering_prefix(self):
        """An IO witness ends at the transaction that overflowed — later
        transactions of the triggering sequence are not dragged along."""
        config = mufuzz_config(iterations=40, rng_seed=5)
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config)
        result = fuzzer.run()
        io = [f for f in result.findings if f.bug_class == BugClass.IO]
        assert io
        for finding in io:
            assert finding.witness[-1]["function"] in ("put", "take")

    def test_ether_freeze_witness_survives_checkpoint(self):
        from repro.oracles.ether_freeze import EtherFreezeOracle
        oracle = EtherFreezeOracle()
        oracle._received = True
        oracle._witness = ({"function": "put", "args": [1],
                            "value": 5, "sender": 7},)
        clone = EtherFreezeOracle()
        clone.restore_state(oracle.state_dict())
        assert clone._received
        assert clone._witness == oracle._witness


class TestPrefixSkipLockstep:
    """The prefix-snapshot state cache fast-forwards memoized prefixes by
    re-dispatching their recorded trace events through the bus
    (``replay_transaction``) instead of re-executing them — stateful
    oracles must observe the identical event stream either way."""

    @pytest.mark.parametrize("source", [VULNERABLE_SOURCE, GAME_SOURCE,
                                        CROWDSALE_SOURCE])
    def test_findings_equal_per_bug_class_with_cache(self, source):
        cached_fuzzer, cached = _campaign(source, iterations=40,
                                          use_state_cache=True)
        _, plain = _campaign(source, iterations=40, use_state_cache=False)
        assert cached_fuzzer.state_cache.hits > 0

        def by_class(result):
            grouped: dict = {}
            for f in result.findings:
                grouped.setdefault(f.bug_class, []).append(f.to_dict())
            return grouped

        assert by_class(cached) == by_class(plain)
        assert cached.coverage == plain.coverage

    def test_witness_with_skipped_prefix_replays(self):
        """Findings surfaced while their witness prefix was served from
        the cache must still re-trigger through ``replay_findings``."""
        config = mufuzz_config(iterations=40, rng_seed=5,
                               use_state_cache=True)
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config)
        result = fuzzer.run()
        assert fuzzer.state_cache.hits > 0
        assert result.findings
        outcomes = replay_findings(VULNERABLE_SOURCE, config,
                                   result.findings)
        assert all(o.ok for o in outcomes), \
            [(o.finding.bug_class, o.status) for o in outcomes]

    def test_replay_keeps_cross_transaction_oracle_state(self):
        """Unit-level lockstep: a fast-forwarded transaction must still
        update every replay-sensitive oracle (ether-freeze tracks the
        first ether-delivering prefix across the whole campaign), and
        must advance the bus's sequence position like a live one."""
        from repro.oracles.ether_freeze import EtherFreezeOracle

        config = mufuzz_config(iterations=12, rng_seed=3,
                               use_state_cache=False)
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config)
        receipts = []
        original_end = fuzzer.bus.end_transaction

        def spy(receipt):
            receipts.append(receipt)
            return original_end(receipt)

        fuzzer.bus.end_transaction = spy
        fuzzer.run()
        ether = [r for r in receipts if r.trace.ether_received and r.success]
        assert ether, "campaign delivered no ether to replay"

        replayer = Fuzzer(VULNERABLE_SOURCE, config)
        ef = next(o for o in replayer.bus.oracles
                  if isinstance(o, EtherFreezeOracle))
        assert not ef._received
        from repro.core.seeds import TxCall
        sequence = [TxCall(function="put", args=[1], value=5, sender=7)]
        replayer.bus.begin_sequence(sequence)
        before = replayer.bus._tx_index
        replayer.bus.replay_transaction(ether[0])
        assert ef._received, \
            "replayed ether receipt missed the ether-freeze oracle"
        assert ef._witness == (sequence[0].to_dict(),)
        assert replayer.bus._tx_index == before + 1

    def test_replay_skips_transaction_local_oracles(self):
        """Transaction-local oracles never see fast-forwarded receipts:
        whatever they would emit is already in the campaign collector (a
        prefix only memoizes after settling live twice), so replay
        returns no duplicate findings for them."""
        from repro.oracles.overflow import IntegerOverflowOracle

        config = mufuzz_config(iterations=12, rng_seed=3,
                               use_state_cache=False)
        fuzzer = Fuzzer(VULNERABLE_SOURCE, config)
        receipts = []
        original_end = fuzzer.bus.end_transaction

        def spy(receipt):
            receipts.append(receipt)
            return original_end(receipt)

        fuzzer.bus.end_transaction = spy
        result = fuzzer.run()
        overflowing = [r for r in receipts
                       if r.trace.overflows and r.success]
        assert overflowing, "campaign recorded no overflow to replay"
        assert any(f.bug_class == BugClass.IO for f in result.findings)

        replayer = Fuzzer(VULNERABLE_SOURCE, config)
        io_oracle = next(o for o in replayer.bus.oracles
                         if isinstance(o, IntegerOverflowOracle))
        assert not io_oracle.replay_sensitive
        replayer.bus.begin_sequence([])
        findings = replayer.bus.replay_transaction(overflowing[0])
        assert not [f for f in findings if f.bug_class == BugClass.IO]


class TestSubcallRollback:
    """Oracle-local transactional buffers honor subcall_mark/rollback."""

    def test_overflow_buffer_rolls_back(self):
        from repro.oracles.overflow import IntegerOverflowOracle
        from repro.evm.trace import OverflowEvent

        oracle = IntegerOverflowOracle()
        oracle.begin_transaction()
        ev = OverflowEvent(pc=1, address=7, depth=1, op_name="ADD")

        class Ctx:
            address = 7
        oracle.on_event(ev, Ctx)
        mark = oracle.subcall_mark()
        oracle.on_event(OverflowEvent(pc=2, address=7, depth=2,
                                      op_name="SUB"), Ctx)
        oracle.rollback_subcall(mark)
        assert oracle._pending == [ev]

    def test_streamed_reverted_subcall_not_reported(self):
        """End to end: overflow inside a guarded (reverting) call must not
        surface through the streaming path (mirrors the batch regression
        in test_oracles.TestRevertedSubcallRegressions)."""
        source = """
        contract T {
            uint256 total = 0;
            function add(uint256 v) public {
                require(total + v >= total);
                total += v;
            }
        }
        """
        _, result = _campaign(source, iterations=30)
        assert BugClass.IO not in {f.bug_class for f in result.findings}


BENIGN_SOURCES = {
    BugClass.BD: """
    contract B { uint256 last = 0;
        function ping() public { last = block.timestamp; } }
    """,
    BugClass.UD: """
    contract B { address lib;
        constructor() public { lib = msg.sender; }
        function run(uint256 d) public { lib.delegatecall(d); } }
    """,
    BugClass.EF: """
    contract B { function put() public payable {}
        function take(uint256 v) public { msg.sender.transfer(v); } }
    """,
    BugClass.IO: """
    contract B { uint256 total = 0;
        function add(uint256 v) public {
            require(total + v >= total); total += v; } }
    """,
    BugClass.RE: """
    contract B { mapping(address => uint256) shares;
        function join() public payable { shares[msg.sender] += msg.value; }
        function redeem() public {
            uint256 owed = shares[msg.sender];
            shares[msg.sender] = 0;
            msg.sender.transfer(owed); } }
    """,
    BugClass.US: """
    contract B { address owner;
        constructor() public { owner = msg.sender; }
        function kill() public {
            require(msg.sender == owner); selfdestruct(owner); } }
    """,
    BugClass.SE: """
    contract B { uint256 ok = 0;
        function check() public {
            if (this.balance >= 1 finney) { ok = 1; } } }
    """,
    BugClass.TO: """
    contract B { address owner;
        constructor() public { owner = msg.sender; }
        function claim() public { require(msg.sender == owner); } }
    """,
    BugClass.UE: """
    contract B { uint256 failures = 0;
        function pay(address to, uint256 v) public {
            bool ok = to.send(v);
            if (!ok) { failures += 1; } } }
    """,
}


class TestNegativeCases:
    """False-positive guard: one benign-but-tempting contract per bug
    class; a short all-oracles campaign must report nothing for it."""

    @pytest.mark.parametrize(
        "bug_class", ALL_BUG_CLASSES,
        ids=[bc.value for bc in ALL_BUG_CLASSES])
    def test_benign_contract_yields_no_finding(self, bug_class):
        _, result = _campaign(BENIGN_SOURCES[bug_class], iterations=25)
        found = {f.bug_class for f in result.findings}
        assert bug_class not in found, result.findings


# -- extended Finding wire format (hypothesis round-trips) --------------------

witness_calls = st.lists(
    st.fixed_dictionaries({
        "function": st.sampled_from(["put", "take", "#fallback"]),
        "args": st.lists(st.integers(min_value=0,
                                     max_value=(1 << 256) - 1),
                         max_size=3),
        "value": st.integers(min_value=0, max_value=10 ** 19),
        "sender": st.integers(min_value=0, max_value=(1 << 160) - 1),
    }),
    max_size=4)

findings = st.builds(
    Finding,
    bug_class=st.sampled_from(ALL_BUG_CLASSES),
    contract=st.text(min_size=1, max_size=12),
    pc=st.integers(min_value=0, max_value=1 << 16),
    line=st.integers(min_value=0, max_value=9999),
    description=st.text(max_size=60),
    severity=st.sampled_from(["high", "medium", "low"]),
    confidence=st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False),
    witness=witness_calls.map(tuple),
)


class TestFindingWireFormat:
    @given(finding=findings)
    @settings(max_examples=60, deadline=None)
    def test_dict_roundtrip_exact(self, finding):
        assert Finding.from_dict(finding.to_dict()) == finding
        assert Finding.from_dict(finding.to_dict()).witness == \
            finding.witness

    @given(finding=findings)
    @settings(max_examples=60, deadline=None)
    def test_json_stable(self, finding):
        import json
        once = json.dumps(finding.to_dict(), sort_keys=True)
        twice = json.dumps(
            Finding.from_dict(json.loads(once)).to_dict(), sort_keys=True)
        assert once == twice

    def test_legacy_record_without_new_fields(self):
        legacy = {"bug_class": "IO", "contract": "T", "pc": 5,
                  "line": 2, "description": "d"}
        finding = Finding.from_dict(legacy)
        assert finding.witness == ()
        assert finding.severity == "medium"
        assert finding.confidence == 0.5
