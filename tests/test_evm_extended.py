"""Extended EVM semantics: signed ops, modular ops, bit ops, call plumbing."""

import pytest

from repro.chain.blockchain import BlockContext
from repro.chain.state import WorldState
from repro.evm.machine import Machine, Message
from repro.evm.opcodes import Op
from tests.test_evm import asm, push1, run_code

U256 = 1 << 256


def top_of_stack(code: bytes, calldata: bytes = b"") -> int:
    """Run code that leaves one value; return it via MSTORE/RETURN suffix."""
    suffix = asm(push1(0), Op.MSTORE, (32, 1), push1(0), Op.RETURN)
    result, _ = run_code(code + suffix, calldata=calldata)
    assert result.success, result.error
    return int.from_bytes(result.returndata, "big")


def neg(v: int) -> int:
    return (U256 - v) % U256


class TestSignedArithmetic:
    def test_sdiv_negative_by_positive(self):
        code = asm(push1(3), (neg(9), 32), Op.SDIV)  # -9 / 3
        assert top_of_stack(code) == neg(3)

    def test_sdiv_by_zero(self):
        code = asm(push1(0), (neg(9), 32), Op.SDIV)
        assert top_of_stack(code) == 0

    def test_smod_sign_follows_dividend(self):
        code = asm(push1(4), (neg(10), 32), Op.SMOD)  # -10 smod 4 = -2
        assert top_of_stack(code) == neg(2)

    def test_signextend_positive(self):
        # sign-extend byte 0 of 0x7F: stays 0x7F
        code = asm(push1(0x7F), push1(0), Op.SIGNEXTEND)
        assert top_of_stack(code) == 0x7F

    def test_signextend_negative(self):
        # sign-extend byte 0 of 0xFF: becomes -1
        code = asm(push1(0xFF), push1(0), Op.SIGNEXTEND)
        assert top_of_stack(code) == U256 - 1


class TestModularOps:
    def test_addmod(self):
        code = asm(push1(7), push1(5), push1(4), Op.ADDMOD)  # (4+5) % 7
        assert top_of_stack(code) == 2

    def test_addmod_zero_modulus(self):
        code = asm(push1(0), push1(5), push1(4), Op.ADDMOD)
        assert top_of_stack(code) == 0

    def test_mulmod(self):
        code = asm(push1(7), push1(5), push1(4), Op.MULMOD)  # (4*5) % 7
        assert top_of_stack(code) == 6

    def test_addmod_does_not_record_overflow(self):
        code = asm(push1(7), (U256 - 1, 32), push1(4), Op.ADDMOD, Op.STOP)
        _, machine = run_code(code)
        assert machine.trace.overflows == []


class TestBitOps:
    def test_and_or_xor_not(self):
        assert top_of_stack(asm(push1(0b1100), push1(0b1010), Op.AND)) == 0b1000
        assert top_of_stack(asm(push1(0b1100), push1(0b1010), Op.OR)) == 0b1110
        assert top_of_stack(asm(push1(0b1100), push1(0b1010), Op.XOR)) == 0b0110
        assert top_of_stack(asm(push1(0), Op.NOT)) == U256 - 1

    def test_byte_extraction(self):
        # BYTE(31, x) is the least significant byte
        code = asm(push1(0xAB), push1(31), Op.BYTE)
        assert top_of_stack(code) == 0xAB

    def test_byte_out_of_range(self):
        code = asm(push1(0xAB), push1(40), Op.BYTE)
        assert top_of_stack(code) == 0

    def test_shl_shr(self):
        assert top_of_stack(asm(push1(1), push1(4), Op.SHL)) == 16
        assert top_of_stack(asm(push1(16), push1(4), Op.SHR)) == 1

    def test_shift_by_256_is_zero(self):
        code = asm(push1(1), (256, 2), Op.SHL)
        assert top_of_stack(code) == 0


class TestStackOps:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_dup_n(self, n):
        ops = [push1(i) for i in range(10, 10 + n)]
        code = asm(*ops, 0x80 + n - 1)  # DUPn duplicates the n-th item
        assert top_of_stack(code) == 10

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_swap_n(self, n):
        ops = [push1(i) for i in range(20, 21 + n)]
        code = asm(*ops, 0x90 + n - 1)  # SWAPn
        assert top_of_stack(code) == 20

    def test_pc_and_msize(self):
        assert top_of_stack(asm(Op.PC)) == 0
        code = asm(push1(1), push1(64), Op.MSTORE, Op.MSIZE)
        assert top_of_stack(code) == 96


class TestCallPlumbing:
    def test_call_to_empty_account_succeeds(self):
        # CALL(gas, to, value=0, 0,0, 0,0) to a codeless account
        code = asm(push1(0), push1(0), push1(0), push1(0), push1(0),
                   (0x5555, 2), (50000, 3), Op.CALL)
        assert top_of_stack(code) == 1

    def test_call_value_moves_balance(self):
        world = WorldState()
        world.account(0xAAA)
        world.set_balance(0xAAA, 1000)
        machine = Machine(world, BlockContext())
        code = asm(push1(0), push1(0), push1(0), push1(0), (400, 2),
                   (0x777, 2), (50000, 3), Op.CALL, Op.STOP)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=code)
        result = machine.execute(msg)
        assert result.success
        assert world.get_balance(0x777) == 400
        assert world.get_balance(0xAAA) == 600

    def test_call_insufficient_balance_fails_cleanly(self):
        world = WorldState()
        world.account(0xAAA)  # zero balance
        machine = Machine(world, BlockContext())
        code = asm(push1(0), push1(0), push1(0), push1(0), (400, 2),
                   (0x777, 2), (50000, 3), Op.CALL, Op.STOP)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=code)
        result = machine.execute(msg)
        assert result.success  # the outer frame continues
        assert machine.trace.calls[0].success is False
        assert world.get_balance(0x777) == 0

    def test_nested_revert_rolls_back_only_callee(self):
        world = WorldState()
        # callee: stores then reverts
        callee_code = asm(push1(9), push1(0), Op.SSTORE,
                          push1(0), push1(0), Op.REVERT)
        world.account(0xCA11)
        world.set_code(0xCA11, callee_code)
        world.account(0xAAA)
        machine = Machine(world, BlockContext())
        # caller: SSTORE(0, 5), CALL callee, STOP
        caller_code = asm(push1(5), push1(0), Op.SSTORE,
                          push1(0), push1(0), push1(0), push1(0), push1(0),
                          (0xCA11, 2), (100000, 3), Op.CALL, Op.STOP)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=caller_code)
        result = machine.execute(msg)
        assert result.success
        assert world.get_storage(0xAAA, 0)[0] == 5      # caller kept
        assert world.get_storage(0xCA11, 0)[0] == 0     # callee rolled back
        assert machine.trace.calls[0].success is False

    def test_delegatecall_uses_caller_storage(self):
        world = WorldState()
        # library code: SSTORE(0, 0x42)
        library = asm(push1(0x42), push1(0), Op.SSTORE, Op.STOP)
        world.account(0x11B)
        world.set_code(0x11B, library)
        world.account(0xAAA)
        machine = Machine(world, BlockContext())
        code = asm(push1(0), push1(0), push1(0), push1(0),
                   (0x11B, 2), (100000, 3), Op.DELEGATECALL, Op.STOP)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=code)
        result = machine.execute(msg)
        assert result.success
        # the write landed in the *caller's* storage
        assert world.get_storage(0xAAA, 0)[0] == 0x42
        assert world.get_storage(0x11B, 0)[0] == 0

    def test_call_result_taint_marks_checked(self):
        # CALL then JUMPI on the success flag → event.checked
        code = asm(push1(0), push1(0), push1(0), push1(0), push1(0),
                   (0x5555, 2), (50000, 3), Op.CALL,
                   (26, 1), Op.JUMPI, Op.STOP, Op.JUMPDEST, Op.STOP)
        result, machine = run_code(code)
        assert machine.trace.calls[0].checked is True


class TestRevertedSubcallTraceRollback:
    """State-effect events recorded in a subcall that later reverts must not
    survive in the trace: the state they describe was rolled back, and
    oracles (ether-freeze, overflow, selfdestruct) would otherwise fire on
    phantom state."""

    CALLEE = 0xCA11

    def _outer_call(self, world, value: int = 0,
                    callee: int = CALLEE) -> bytes:
        return asm(push1(0), push1(0), push1(0), push1(0), (value, 2),
                   (callee, 2), (100000, 3), Op.CALL, Op.STOP)

    def _run(self, callee_code: bytes, value: int = 0):
        world = WorldState()
        world.account(self.CALLEE)
        world.set_code(self.CALLEE, callee_code)
        world.account(0xAAA)
        world.set_balance(0xAAA, 10 ** 6)
        machine = Machine(world, BlockContext())
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6,
                      code=self._outer_call(world, value))
        result = machine.execute(msg)
        assert result.success  # outer frame survives the failed subcall
        assert machine.trace.calls[0].success is False
        return machine, world

    def test_storage_write_events_dropped(self):
        callee = asm(push1(9), push1(0), Op.SSTORE,
                     push1(0), push1(0), Op.REVERT)
        machine, world = self._run(callee)
        writes = [e for e in machine.trace.storage_ops if e.kind == "write"]
        assert writes == []
        assert world.get_storage(self.CALLEE, 0)[0] == 0

    def test_outer_storage_write_is_kept(self):
        # outer writes before calling; the rollback only drops callee events
        callee = asm(push1(9), push1(0), Op.SSTORE,
                     push1(0), push1(0), Op.REVERT)
        world = WorldState()
        world.account(self.CALLEE)
        world.set_code(self.CALLEE, callee)
        world.account(0xAAA)
        machine = Machine(world, BlockContext())
        code = asm(push1(5), push1(0), Op.SSTORE) + self._outer_call(world)
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=code)
        assert machine.execute(msg).success
        writes = [e for e in machine.trace.storage_ops if e.kind == "write"]
        assert [(e.address, e.slot, e.value) for e in writes] == \
            [(0xAAA, 0, 5)]

    def test_overflow_events_dropped(self):
        callee = asm(push1(2), (U256 - 1, 32), Op.ADD, Op.POP,
                     push1(0), push1(0), Op.REVERT)
        machine, _ = self._run(callee)
        assert machine.trace.overflows == []

    def test_overflow_kept_when_subcall_succeeds(self):
        callee = asm(push1(2), (U256 - 1, 32), Op.ADD, Op.POP, Op.STOP)
        world = WorldState()
        world.account(self.CALLEE)
        world.set_code(self.CALLEE, callee)
        world.account(0xAAA)
        machine = Machine(world, BlockContext())
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=self._outer_call(world))
        assert machine.execute(msg).success
        assert len(machine.trace.overflows) == 1

    def test_ether_received_rolled_back(self):
        callee = asm(push1(0), push1(0), Op.REVERT)
        machine, world = self._run(callee, value=500)
        assert machine.trace.ether_received.get(self.CALLEE, 0) == 0
        assert world.get_balance(self.CALLEE) == 0
        assert world.get_balance(0xAAA) == 10 ** 6

    def test_selfdestruct_in_doubly_nested_reverted_call_dropped(self):
        # A -> B -> C; C selfdestructs (successfully), then B reverts:
        # C's destruction is rolled back in the world, so the event goes too.
        grandchild = asm((0xBEEF, 2), Op.SELFDESTRUCT)
        world = WorldState()
        world.account(0xCCC)
        world.set_code(0xCCC, grandchild)
        callee = asm(push1(0), push1(0), push1(0), push1(0), push1(0),
                     (0xCCC, 2), (50000, 3), Op.CALL, Op.POP,
                     push1(0), push1(0), Op.REVERT)
        world.account(self.CALLEE)
        world.set_code(self.CALLEE, callee)
        world.account(0xAAA)
        machine = Machine(world, BlockContext())
        msg = Message(address=0xAAA, caller=0xB, origin=0xB, value=0,
                      data=b"", gas=10 ** 6, code=self._outer_call(world))
        assert machine.execute(msg).success
        assert machine.trace.selfdestructs == []
        assert not world.is_destroyed(0xCCC)


class TestTruncatedPushDecoding:
    def test_truncated_push_zero_pads_right(self):
        # PUSH3 with only one immediate byte: the two missing bytes read as
        # zero, so the value is 0x010000 (EVM spec), not 1.  Observable via
        # a JUMPI whose destination only matches the padded value.
        code = asm(push1(7), push1(0), Op.SSTORE) + bytes([0x62, 0x01])
        result, machine = run_code(code)
        assert result.success
        # execution halts after the truncated push (pc past end-of-code)
        assert machine.trace.storage_ops[-1].value == 7
