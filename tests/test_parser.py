"""Unit tests for the MiniSol parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParserError
from repro.lang.parser import parse_source


def parse_contract(body: str) -> ast.ContractDef:
    return parse_source(f"contract T {{\n{body}\n}}").contracts[0]


def parse_fn_body(statements: str) -> ast.Block:
    contract = parse_contract(
        f"function f(uint256 x, address a) public {{\n{statements}\n}}")
    return contract.functions[0].body


class TestContractStructure:
    def test_empty_contract(self):
        contract = parse_contract("")
        assert contract.name == "T"
        assert contract.functions == []

    def test_missing_contract_keyword(self):
        with pytest.raises(ParserError):
            parse_source("function f() public {}")

    def test_state_variable_with_initializer(self):
        contract = parse_contract("uint256 phase = 3;")
        var = contract.state_vars[0]
        assert var.name == "phase"
        assert isinstance(var.init, ast.IntLit)
        assert var.init.value == 3

    def test_state_variable_visibility(self):
        contract = parse_contract("uint256 public total;")
        assert contract.state_vars[0].visibility == "public"

    def test_mapping_state_variable(self):
        contract = parse_contract("mapping(address => uint256) balances;")
        var_type = contract.state_vars[0].var_type
        assert var_type.is_mapping
        assert var_type.key.kind == "address"
        assert var_type.value.kind == "uint"

    def test_nested_mapping(self):
        contract = parse_contract(
            "mapping(address => mapping(address => uint256)) allowance;")
        assert contract.state_vars[0].var_type.value.is_mapping

    def test_pragma_tolerated(self):
        unit = parse_source("pragma solidity 0.4.26; contract T {}")
        assert unit.contracts[0].name == "T"

    def test_multiple_contracts(self):
        unit = parse_source("contract A {} contract B {}")
        assert [c.name for c in unit.contracts] == ["A", "B"]
        assert unit.contract("B").name == "B"


class TestFunctions:
    def test_constructor(self):
        contract = parse_contract("constructor() public { }")
        assert contract.constructor is not None
        assert contract.constructor.is_constructor

    def test_function_params(self):
        contract = parse_contract(
            "function f(uint256 a, address b, bool c) public {}")
        params = contract.functions[0].params
        assert [p.name for p in params] == ["a", "b", "c"]
        assert [p.param_type.kind for p in params] == [
            "uint", "address", "bool"]

    def test_payable_flag(self):
        contract = parse_contract("function f() public payable {}")
        assert contract.functions[0].payable

    def test_view_mutability(self):
        contract = parse_contract("function f() public view {}")
        assert contract.functions[0].mutability == "view"

    def test_returns_clause(self):
        contract = parse_contract(
            "function f() public returns (uint256) { return 1; }")
        assert contract.functions[0].returns.kind == "uint"

    def test_internal_not_external(self):
        contract = parse_contract("function f() internal {}")
        assert not contract.functions[0].is_external

    def test_modifier_reference(self):
        contract = parse_contract("""
            modifier onlyOwner() { _; }
            function f() public onlyOwner {}
        """)
        assert contract.functions[0].modifiers == ["onlyOwner"]

    def test_modifier_without_placeholder_rejected(self):
        with pytest.raises(ParserError):
            parse_contract("modifier bad() { uint256 x = 1; }")

    def test_event_declaration_and_emit(self):
        contract = parse_contract("""
            event Paid(address who, uint256 amount);
            function f() public { emit Paid(msg.sender, 1); }
        """)
        assert contract.events[0].name == "Paid"
        stmt = contract.functions[0].body.statements[0]
        assert isinstance(stmt, ast.Emit)
        assert len(stmt.args) == 2


class TestStatements:
    def test_local_declaration(self):
        block = parse_fn_body("uint256 y = x + 1;")
        decl = block.statements[0]
        assert isinstance(decl, ast.VarDecl)
        assert isinstance(decl.init, ast.Binary)

    def test_assignment_ops(self):
        for op in ("=", "+=", "-=", "*="):
            block = parse_fn_body(f"x {op} 2;")
            assert block.statements[0].op == op

    def test_increment_sugar(self):
        block = parse_fn_body("x++;")
        stmt = block.statements[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+="
        assert stmt.value.value == 1

    def test_mapping_assignment(self):
        contract = parse_contract("""
            mapping(address => uint256) m;
            function f() public { m[msg.sender] = 5; }
        """)
        stmt = contract.functions[0].body.statements[0]
        assert isinstance(stmt.target, ast.Index)
        assert stmt.target.base == "m"

    def test_if_else(self):
        block = parse_fn_body("if (x > 1) { x = 0; } else { x = 1; }")
        stmt = block.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        block = parse_fn_body(
            "if (x > 1) if (x > 2) x = 0; else x = 1;")
        outer = block.statements[0]
        assert outer.otherwise is None
        assert isinstance(outer.then, ast.If)
        assert outer.then.otherwise is not None

    def test_while(self):
        block = parse_fn_body("while (x < 10) { x += 1; }")
        assert isinstance(block.statements[0], ast.While)

    def test_for_loop(self):
        block = parse_fn_body("for (uint256 i = 0; i < 3; i++) { x += i; }")
        stmt = block.statements[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.update, ast.Assign)

    def test_require_with_message(self):
        block = parse_fn_body('require(x > 0, "must be positive");')
        stmt = block.statements[0]
        assert isinstance(stmt, ast.Require)
        assert stmt.message == "must be positive"

    def test_assert_statement(self):
        block = parse_fn_body("assert(x != 0);")
        assert isinstance(block.statements[0], ast.AssertStmt)

    def test_revert_statement(self):
        block = parse_fn_body("revert();")
        assert isinstance(block.statements[0], ast.RevertStmt)

    def test_return_with_value(self):
        block = parse_fn_body("return x + 1;")
        stmt = block.statements[0]
        assert isinstance(stmt, ast.Return)
        assert isinstance(stmt.value, ast.Binary)

    def test_transfer_statement(self):
        block = parse_fn_body("a.transfer(1 ether);")
        stmt = block.statements[0]
        assert isinstance(stmt, ast.Transfer)

    def test_selfdestruct_statement(self):
        block = parse_fn_body("selfdestruct(a);")
        assert isinstance(block.statements[0], ast.SelfDestructStmt)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        block = parse_fn_body("x = 1 + 2 * 3;")
        expr = block.statements[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        block = parse_fn_body("x = uint256(x < 1 && x > 0);")
        expr = block.statements[0].value
        assert expr.op == "&&"

    def test_parentheses_override(self):
        block = parse_fn_body("x = (1 + 2) * 3;")
        expr = block.statements[0].value
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_not(self):
        block = parse_fn_body("x = uint256(!(x == 1));")
        assert isinstance(block.statements[0].value, ast.Unary)

    def test_ether_units(self):
        for unit, factor in (("wei", 1), ("szabo", 10 ** 12),
                             ("finney", 10 ** 15), ("ether", 10 ** 18)):
            block = parse_fn_body(f"x = 7 {unit};")
            assert block.statements[0].value.value == 7 * factor

    def test_env_reads(self):
        cases = {
            "msg.sender": "msg.sender",
            "msg.value": "msg.value",
            "tx.origin": "tx.origin",
            "block.timestamp": "block.timestamp",
            "block.number": "block.number",
            "now": "block.timestamp",
        }
        for source, expected in cases.items():
            block = parse_fn_body(f"x = uint256({source});")
            assert block.statements[0].value.what == expected

    def test_this_balance(self):
        block = parse_fn_body("x = this.balance;")
        assert block.statements[0].value.what == "this.balance"

    def test_address_this_cast(self):
        block = parse_fn_body("x = address(this).balance;")
        assert block.statements[0].value.what == "this.balance"

    def test_balance_of_expression(self):
        block = parse_fn_body("x = a.balance;")
        assert isinstance(block.statements[0].value, ast.BalanceOf)

    def test_send_expression(self):
        block = parse_fn_body("bool ok = a.send(1);")
        assert isinstance(block.statements[0].init, ast.Send)

    def test_call_value_expression(self):
        block = parse_fn_body("bool ok = a.call.value(x)();")
        assert isinstance(block.statements[0].init, ast.CallValue)

    def test_delegatecall_expression(self):
        block = parse_fn_body("bool ok = a.delegatecall(x);")
        assert isinstance(block.statements[0].init, ast.Delegatecall)

    def test_keccak_with_abi_encode_packed(self):
        block = parse_fn_body(
            "x = uint256(keccak256(abi.encodePacked(block.timestamp, now)));")
        expr = block.statements[0].value
        assert isinstance(expr, ast.Keccak)
        assert len(expr.args) == 2

    def test_internal_call(self):
        contract = parse_contract("""
            function g(uint256 v) public returns (uint256) { return v; }
            function f() public { uint256 r = g(2); }
        """)
        init = contract.functions[1].body.statements[0].init
        assert isinstance(init, ast.InternalCall)
        assert init.name == "g"

    def test_transfer_not_allowed_as_subexpression(self):
        # parses as an internal marker; code generation rejects it
        from repro.compiler.codegen import CompileError, compile_source
        with pytest.raises(CompileError):
            compile_source(
                "contract T { function f(uint256 x, address a) public "
                "{ x = a.transfer(1); } }")

    def test_unknown_member_rejected(self):
        with pytest.raises(ParserError):
            parse_fn_body("x = a.bogus(1);")

    def test_crowdsale_parses(self):
        from tests.conftest import CROWDSALE_SOURCE
        contract = parse_source(CROWDSALE_SOURCE).contracts[0]
        assert contract.name == "Crowdsale"
        assert len(contract.external_functions) == 3
        assert contract.constructor is not None

    def test_game_parses(self):
        from tests.conftest import GAME_SOURCE
        contract = parse_source(GAME_SOURCE).contracts[0]
        assert contract.name == "Game"
