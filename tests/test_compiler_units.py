"""Unit tests for compiler internals: assembler, ABI, storage layout."""

import pytest

from repro.compiler.abi import (
    ContractABI,
    compute_selector,
    decode_words,
    encode_call,
    encode_words,
    make_function_abi,
)
from repro.compiler.asm import Assembler
from repro.compiler.layout import (
    FRAME_BASE,
    StorageLayout,
    build_frames,
    collect_locals,
)
from repro.evm.opcodes import Op
from repro.lang.parser import parse_source
from repro.lang.types import ADDRESS, BOOL, UINT


class TestAssembler:
    def test_emit_and_push(self):
        asm = Assembler()
        asm.push(0x1234)
        asm.emit(Op.STOP)
        code = asm.assemble()
        assert code == bytes([0x61, 0x12, 0x34, Op.STOP])

    def test_push_minimal_width(self):
        asm = Assembler()
        asm.push(0)
        assert asm.assemble() == bytes([0x60, 0x00])

    def test_push_32_bytes(self):
        asm = Assembler()
        asm.push((1 << 256) - 1)
        code = asm.assemble()
        assert code[0] == 0x7F
        assert len(code) == 33

    def test_push_too_wide_rejected(self):
        with pytest.raises(ValueError):
            Assembler().push(1 << 256)

    def test_label_fixup(self):
        asm = Assembler()
        label = asm.new_label()
        asm.jump_to(label)
        dest = asm.place(label)
        asm.emit(Op.STOP)
        code = asm.assemble()
        target = int.from_bytes(code[1:3], "big")
        assert target == dest
        assert code[dest] == Op.JUMPDEST

    def test_unplaced_label_rejected(self):
        asm = Assembler()
        asm.push_label(asm.new_label())
        with pytest.raises(ValueError):
            asm.assemble()

    def test_srcmap_records_lines(self):
        asm = Assembler()
        asm.set_line(12)
        pc = asm.emit(Op.ADD)
        assert asm.srcmap[pc] == 12

    def test_jumpi_to_returns_jumpi_pc(self):
        asm = Assembler()
        label = asm.new_label()
        pc = asm.jumpi_to(label)
        asm.place(label)
        code = asm.assemble()
        assert code[pc] == Op.JUMPI


class TestAbi:
    def test_selector_is_32_bits(self):
        selector = compute_selector("transfer", (ADDRESS, UINT))
        assert 0 <= selector < (1 << 32)

    def test_selector_distinguishes_signatures(self):
        assert compute_selector("f", (UINT,)) != compute_selector("f", ())
        assert compute_selector("f", (UINT,)) != \
            compute_selector("g", (UINT,))

    def test_encode_call_layout(self):
        fn = make_function_abi("f", (UINT, BOOL), None, False, "")
        data = encode_call(fn, [7, 1])
        words = decode_words(data)
        assert words == [fn.selector, 7, 1]

    def test_encode_call_arity_checked(self):
        fn = make_function_abi("f", (UINT,), None, False, "")
        with pytest.raises(ValueError):
            encode_call(fn, [1, 2])

    def test_encode_words_roundtrip_negative_wraps(self):
        data = encode_words([-1])
        assert decode_words(data) == [(1 << 256) - 1]

    def test_contract_abi_lookup(self):
        fn = make_function_abi("f", (), None, False, "view")
        abi = ContractABI(name="T", functions=[fn])
        assert abi.function("f") is fn
        assert abi.by_selector(fn.selector) is fn
        assert abi.by_selector(0) is None
        with pytest.raises(KeyError):
            abi.function("missing")

    def test_mutability_flag(self):
        view = make_function_abi("f", (), None, False, "view")
        plain = make_function_abi("g", (), None, False, "")
        assert not view.mutates_state
        assert plain.mutates_state


SOURCE = """
contract T {
    uint256 a;
    mapping(address => uint256) m;
    bool flag;

    function f(uint256 x, address who) public {
        uint256 local1 = x;
        if (x > 0) {
            uint256 local2 = x + 1;
            a = local2;
        }
    }
    function g() public returns (uint256) { return a; }
}
"""


class TestLayout:
    def _contract(self):
        return parse_source(SOURCE).contracts[0]

    def test_slots_follow_declaration_order(self):
        layout = StorageLayout.for_contract(self._contract())
        assert layout.slot_of("a") == 0
        assert layout.slot_of("m") == 1
        assert layout.slot_of("flag") == 2

    def test_collect_locals_including_nested(self):
        contract = self._contract()
        fn = contract.function("f")
        assert collect_locals(fn.body) == ["local1", "local2"]

    def test_frames_disjoint(self):
        frames, scratch = build_frames(self._contract())
        ranges = []
        for frame in frames.values():
            ranges.append((frame.start, frame.start + frame.size))
        ranges.sort()
        for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2, "frames overlap"
        assert all(start >= FRAME_BASE for start, _ in ranges)
        assert scratch >= max(end for _, end in ranges)

    def test_frame_contains_params_and_locals(self):
        frames, _ = build_frames(self._contract())
        frame = frames["f"]
        for name in ("x", "who", "local1", "local2"):
            assert frame.has_local(name)
        assert frame.ret_offset >= frame.start

    def test_empty_function_still_has_ret_slot(self):
        frames, _ = build_frames(self._contract())
        assert frames["g"].size == 32  # just the return slot
