"""Unit tests for the MiniSol lexer."""

import pytest

from repro.lang.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("myVar")[:-1]
        assert tok.kind == TokenKind.IDENT
        assert tok.text == "myVar"

    def test_identifier_with_underscore_and_digits(self):
        (tok,) = tokenize("_my_var2")[:-1]
        assert tok.kind == TokenKind.IDENT

    def test_keyword(self):
        (tok,) = tokenize("contract")[:-1]
        assert tok.kind == TokenKind.KEYWORD

    def test_uint256_is_keyword(self):
        (tok,) = tokenize("uint256")[:-1]
        assert tok.kind == TokenKind.KEYWORD

    def test_decimal_number(self):
        (tok,) = tokenize("12345")[:-1]
        assert tok.kind == TokenKind.NUMBER
        assert tok.value == 12345

    def test_hex_number(self):
        (tok,) = tokenize("0xFF")[:-1]
        assert tok.value == 255

    def test_hex_number_long(self):
        (tok,) = tokenize("0xdeadbeef")[:-1]
        assert tok.value == 0xDEADBEEF

    def test_string_literal(self):
        (tok,) = tokenize('"hello world"')[:-1]
        assert tok.kind == TokenKind.STRING
        assert tok.value is None
        assert tok.text == "hello world"


class TestPunctuation:
    @pytest.mark.parametrize("punct", [
        "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "++",
    ])
    def test_multichar_punct_lexes_as_one_token(self, punct):
        (tok,) = tokenize(punct)[:-1]
        assert tok.kind == TokenKind.PUNCT
        assert tok.text == punct

    def test_greedy_lexing_of_arrows(self):
        assert texts("= =>") == ["=", "=>"]

    def test_plusplus_vs_plus(self):
        assert texts("+ ++") == ["+", "++"]

    @pytest.mark.parametrize("punct", list("+-*/%<>=!;,(){}[]."))
    def test_single_punct(self, punct):
        (tok,) = tokenize(punct)[:-1]
        assert tok.kind == TokenKind.PUNCT


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc  d") == ["a", "b", "c", "d"]


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3

    def test_column_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"unterminated')

    def test_string_with_newline(self):
        with pytest.raises(LexerError):
            tokenize('"line\nbreak"')

    def test_malformed_hex(self):
        with pytest.raises(LexerError):
            tokenize("0x")

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("ab\n  @")
        assert excinfo.value.line == 2


class TestRealisticSource:
    def test_full_function_header(self):
        source = "function invest(uint256 donations) public payable {"
        token_texts = texts(source)
        assert token_texts == [
            "function", "invest", "(", "uint256", "donations", ")",
            "public", "payable", "{",
        ]

    def test_ether_units_are_keywords(self):
        tokens = tokenize("100 ether")[:-1]
        assert tokens[0].value == 100
        assert tokens[1].kind == TokenKind.KEYWORD
        assert tokens[1].text == "ether"

    def test_mapping_declaration(self):
        token_texts = texts("mapping(address => uint256) invests;")
        assert "=>" in token_texts
