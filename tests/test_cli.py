"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import CROWDSALE_SOURCE


@pytest.fixture
def crowdsale_file(tmp_path):
    path = tmp_path / "crowdsale.sol"
    path.write_text(CROWDSALE_SOURCE)
    return str(path)


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_compile(self, capsys, crowdsale_file):
        out = run_cli(capsys, "compile", crowdsale_file)
        assert "contract Crowdsale" in out
        assert "slot 0: phase" in out
        assert "invest(uint256) payable" in out

    def test_disasm(self, capsys, crowdsale_file):
        out = run_cli(capsys, "disasm", crowdsale_file)
        assert "JUMPI" in out
        assert "SSTORE" in out

    def test_analyze_shows_raw_deps(self, capsys, crowdsale_file):
        out = run_cli(capsys, "analyze", crowdsale_file)
        assert "repeat candidates: ['invest']" in out
        assert "invested" in out

    def test_fuzz(self, capsys, crowdsale_file):
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--iterations", "30", "--seed", "3")
        assert "branch coverage" in out
        assert "MuFuzz" in out

    def test_fuzz_with_baseline(self, capsys, crowdsale_file):
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--fuzzer", "sfuzz", "--iterations", "20")
        assert "sFuzz" in out

    def test_scan(self, capsys, crowdsale_file):
        out = run_cli(capsys, "scan", crowdsale_file)
        for tool in ("Oyente", "Mythril", "Osiris", "Securify", "Slither"):
            assert tool in out

    def test_corpus_d2(self, capsys):
        out = run_cli(capsys, "corpus", "--dataset", "d2", "--count", "5")
        assert "D2 sample" in out
        assert "Vuln0" in out

    def test_campaign_runs_and_resumes(self, capsys, tmp_path,
                                       crowdsale_file):
        results_dir = str(tmp_path / "results")
        argv = ("campaign", crowdsale_file, "--fuzzers", "mufuzz", "sfuzz",
                "--trials", "2", "--iterations", "15", "--workers", "1",
                "--results-dir", results_dir)
        out = run_cli(capsys, *argv)
        assert "campaign matrix: 1 contracts x 2 fuzzers x 2 trials" in out
        assert "0 cached, 4 executed" in out
        assert "MuFuzz" in out and "sFuzz" in out
        assert "mean branch coverage per fuzzer" in out
        rerun = run_cli(capsys, *argv)
        assert "4 cached, 0 executed" in rerun

    def test_campaign_resume_reruns_only_the_missing_cell(self, capsys,
                                                          tmp_path,
                                                          crowdsale_file):
        """End-to-end resume: delete one persisted result and rerun — only
        that cell re-executes, the other three are cache hits."""
        results_dir = tmp_path / "results"
        argv = ("campaign", crowdsale_file, "--fuzzers", "mufuzz", "sfuzz",
                "--trials", "2", "--iterations", "15", "--workers", "1",
                "--results-dir", str(results_dir))
        run_cli(capsys, *argv)
        files = sorted(results_dir.glob("*.json"))
        assert len(files) == 4
        victim, survivors = files[0], files[1:]
        victim.unlink()
        out = run_cli(capsys, *argv)
        assert "3 cached, 1 executed" in out
        # progress lines are printed only for cells that actually ran
        assert f"[ok] {victim.stem}:" in out
        for survivor in survivors:
            assert f"[ok] {survivor.stem}:" not in out
        assert victim.exists()  # re-persisted

    def test_campaign_backend_and_recycle_flags(self, capsys,
                                                crowdsale_file):
        # one worker, 4 jobs, quota 2: the worker is deterministically
        # recycled after its second job (two jobs still pending)
        out = run_cli(capsys, "campaign", crowdsale_file,
                      "--fuzzers", "mufuzz", "--trials", "4",
                      "--iterations", "15", "--workers", "1",
                      "--backend", "pool", "--recycle-after", "2")
        assert "pool backend" in out
        assert "compile cache:" in out
        assert "worker(s) recycled" in out

    def test_campaign_inline_backend_rejects_job_timeout(self,
                                                         crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "inline",
                     "--job-timeout", "5"]) == 2

    def test_campaign_rejects_negative_recycle_after(self, crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "pool",
                     "--recycle-after", "-1"]) == 2

    def test_campaign_rejects_recycle_after_off_pool(self, crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "spawn",
                     "--recycle-after", "5"]) == 2

    def test_campaign_on_corpus_sample(self, capsys, tmp_path):
        out = run_cli(capsys, "campaign", "--dataset", "d2", "--count", "2",
                      "--fuzzers", "mufuzz", "--trials", "1",
                      "--iterations", "15", "--workers", "1")
        assert "Vuln0" in out and "Vuln1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
