"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import CROWDSALE_SOURCE


@pytest.fixture
def crowdsale_file(tmp_path):
    path = tmp_path / "crowdsale.sol"
    path.write_text(CROWDSALE_SOURCE)
    return str(path)


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_compile(self, capsys, crowdsale_file):
        out = run_cli(capsys, "compile", crowdsale_file)
        assert "contract Crowdsale" in out
        assert "slot 0: phase" in out
        assert "invest(uint256) payable" in out

    def test_disasm(self, capsys, crowdsale_file):
        out = run_cli(capsys, "disasm", crowdsale_file)
        assert "JUMPI" in out
        assert "SSTORE" in out

    def test_analyze_shows_raw_deps(self, capsys, crowdsale_file):
        out = run_cli(capsys, "analyze", crowdsale_file)
        assert "repeat candidates: ['invest']" in out
        assert "invested" in out

    def test_fuzz(self, capsys, crowdsale_file):
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--iterations", "30", "--seed", "3")
        assert "branch coverage" in out
        assert "MuFuzz" in out

    def test_fuzz_with_baseline(self, capsys, crowdsale_file):
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--fuzzer", "sfuzz", "--iterations", "20")
        assert "sFuzz" in out

    def test_scan(self, capsys, crowdsale_file):
        out = run_cli(capsys, "scan", crowdsale_file)
        for tool in ("Oyente", "Mythril", "Osiris", "Securify", "Slither"):
            assert tool in out

    def test_corpus_d2(self, capsys):
        out = run_cli(capsys, "corpus", "--dataset", "d2", "--count", "5")
        assert "D2 sample" in out
        assert "Vuln0" in out

    def test_campaign_runs_and_resumes(self, capsys, tmp_path,
                                       crowdsale_file):
        results_dir = str(tmp_path / "results")
        argv = ("campaign", crowdsale_file, "--fuzzers", "mufuzz", "sfuzz",
                "--trials", "2", "--iterations", "15", "--workers", "1",
                "--results-dir", results_dir)
        out = run_cli(capsys, *argv)
        assert "campaign matrix: 1 contracts x 2 fuzzers x 2 trials" in out
        assert "0 cached, 4 executed" in out
        assert "MuFuzz" in out and "sFuzz" in out
        assert "mean branch coverage per fuzzer" in out
        rerun = run_cli(capsys, *argv)
        assert "4 cached, 0 executed" in rerun

    def test_campaign_resume_reruns_only_the_missing_cell(self, capsys,
                                                          tmp_path,
                                                          crowdsale_file):
        """End-to-end resume: delete one persisted result and rerun — only
        that cell re-executes, the other three are cache hits."""
        results_dir = tmp_path / "results"
        argv = ("campaign", crowdsale_file, "--fuzzers", "mufuzz", "sfuzz",
                "--trials", "2", "--iterations", "15", "--workers", "1",
                "--results-dir", str(results_dir))
        run_cli(capsys, *argv)
        from repro.orchestrator.store import ResultStore
        store = ResultStore(results_dir)
        ids = sorted(store.completed_ids())
        assert len(ids) == 4
        victim, survivors = ids[0], ids[1:]
        assert store.delete_record(victim)
        store.close()
        out = run_cli(capsys, *argv)
        assert "3 cached, 1 executed" in out
        # progress lines are printed only for cells that actually ran
        assert f"[ok] {victim}:" in out
        for survivor in survivors:
            assert f"[ok] {survivor}:" not in out
        with ResultStore(results_dir) as store:
            assert victim in store.completed_ids()  # re-persisted

    def test_campaign_backend_and_recycle_flags(self, capsys,
                                                crowdsale_file):
        # one worker, 4 jobs, quota 2: the worker is deterministically
        # recycled after its second job (two jobs still pending)
        out = run_cli(capsys, "campaign", crowdsale_file,
                      "--fuzzers", "mufuzz", "--trials", "4",
                      "--iterations", "15", "--workers", "1",
                      "--backend", "pool", "--recycle-after", "2")
        assert "pool backend" in out
        assert "compile cache:" in out
        assert "worker(s) recycled" in out

    def test_campaign_inline_backend_rejects_job_timeout(self,
                                                         crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "inline",
                     "--job-timeout", "5"]) == 2

    def test_campaign_rejects_negative_recycle_after(self, crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "pool",
                     "--recycle-after", "-1"]) == 2

    def test_campaign_rejects_recycle_after_off_pool(self, crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--backend", "spawn",
                     "--recycle-after", "5"]) == 2

    def test_campaign_on_corpus_sample(self, capsys, tmp_path):
        out = run_cli(capsys, "campaign", "--dataset", "d2", "--count", "2",
                      "--fuzzers", "mufuzz", "--trials", "1",
                      "--iterations", "15", "--workers", "1")
        assert "Vuln0" in out and "Vuln1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


def strip_wall_time(fuzz_output: str) -> str:
    """The fuzz summary line minus its wall-clock suffix (timing is
    environment noise; everything else must be deterministic)."""
    import re
    return re.sub(r", \d+\.\d+s$", "", fuzz_output.strip().splitlines()[0])


VULNERABLE_SOURCE = """
contract Lockbox {
    uint256 total = 0;
    mapping(address => uint256) shares;
    function put(uint256 v) public payable {
        shares[msg.sender] += v;
        total += v;
    }
    function take(uint256 v) public {
        shares[msg.sender] -= v;
        total -= v;
    }
}
"""


@pytest.fixture
def lockbox_file(tmp_path):
    path = tmp_path / "lockbox.sol"
    path.write_text(VULNERABLE_SOURCE)
    return str(path)


class TestOracleSelection:
    def test_fuzz_restricted_oracles(self, capsys, lockbox_file):
        out = run_cli(capsys, "fuzz", lockbox_file,
                      "--iterations", "40", "--seed", "5",
                      "--oracles", "IO")
        assert "IO" in out
        assert "EF" not in out  # ether freezing deselected
        assert "severity" in out

    def test_fuzz_oracles_none_disables_findings(self, capsys,
                                                 lockbox_file):
        out = run_cli(capsys, "fuzz", lockbox_file,
                      "--iterations", "40", "--seed", "5",
                      "--oracles", "none")
        assert "no findings" in out

    def test_fuzz_rejects_unknown_oracle_code(self, capsys, lockbox_file):
        assert main(["fuzz", lockbox_file, "--oracles", "ZZ"]) == 2
        assert "--oracles" in capsys.readouterr().err

    def test_fuzz_rejects_empty_oracles_value(self, capsys, lockbox_file):
        # a fat-fingered empty value must not silently run oracle-free
        assert main(["fuzz", lockbox_file, "--oracles", " , "]) == 2
        assert "no bug-class codes" in capsys.readouterr().err

    def test_campaign_oracles_flag(self, capsys, tmp_path, lockbox_file):
        results = tmp_path / "results"
        out = run_cli(capsys, "campaign", lockbox_file,
                      "--fuzzers", "mufuzz", "--trials", "1",
                      "--iterations", "40", "--workers", "1",
                      "--oracles", "IO,RE",
                      "--results-dir", str(results))
        assert "IO" in out
        assert "EF" not in out

    def test_replay_retriggers_findings(self, capsys, tmp_path,
                                        lockbox_file):
        results = tmp_path / "results"
        run_cli(capsys, "campaign", lockbox_file,
                "--fuzzers", "mufuzz", "--trials", "1",
                "--iterations", "40", "--workers", "1",
                "--results-dir", str(results))
        out = run_cli(capsys, "replay", str(results))
        assert "retriggered" in out
        assert "missed" not in out

    def test_replay_rejects_non_record(self, capsys, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        assert main(["replay", str(bogus)]) == 2
        assert "not a campaign result record" in capsys.readouterr().err


class TestBudgetFlags:
    def test_fuzz_tx_budget_stops_open_ended_campaign(self, capsys,
                                                      crowdsale_file):
        # no --iterations: the transaction budget alone governs the run
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--tx-budget", "150", "--seed", "3")
        assert "branch coverage" in out
        transactions = int(out.split(" transactions")[0].rsplit(", ", 1)[1])
        assert transactions >= 150

    def test_fuzz_time_budget_stops_open_ended_campaign(self, capsys,
                                                        crowdsale_file):
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--time-budget", "0.3", "--seed", "3")
        assert "branch coverage" in out

    def test_fuzz_budgets_combine_with_iterations(self, capsys,
                                                  crowdsale_file):
        # generous time budget alongside a tiny iteration budget: the
        # iteration budget wins, result identical to --iterations alone
        plain = run_cli(capsys, "fuzz", crowdsale_file,
                        "--iterations", "20", "--seed", "3")
        combined = run_cli(capsys, "fuzz", crowdsale_file,
                           "--iterations", "20", "--seed", "3",
                           "--time-budget", "3600")
        assert strip_wall_time(plain) == strip_wall_time(combined)

    def test_campaign_time_budget(self, capsys, crowdsale_file):
        out = run_cli(capsys, "campaign", crowdsale_file,
                      "--fuzzers", "mufuzz", "--trials", "1",
                      "--time-budget", "0.3", "--workers", "1",
                      "--backend", "inline")
        assert "mean branch coverage per fuzzer" in out

    def test_campaign_checkpoint_every_requires_results_dir(self,
                                                            crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--iterations", "10",
                     "--checkpoint-every", "5"]) == 2

    def test_campaign_rejects_non_positive_checkpoint_every(
            self, tmp_path, crowdsale_file):
        assert main(["campaign", crowdsale_file, "--fuzzers", "mufuzz",
                     "--trials", "1", "--iterations", "10",
                     "--results-dir", str(tmp_path / "r"),
                     "--checkpoint-every", "0"]) == 2


class TestCheckpointFlags:
    def test_fuzz_checkpoint_consumed_on_completion(self, capsys, tmp_path,
                                                    crowdsale_file):
        """A completed campaign leaves no checkpoint behind, and emitting
        checkpoints does not perturb the result (pure observation)."""
        checkpoint = tmp_path / "fuzz.checkpoint.json"
        plain = run_cli(capsys, "fuzz", crowdsale_file,
                        "--iterations", "30", "--seed", "3")
        checked = run_cli(capsys, "fuzz", crowdsale_file,
                          "--iterations", "30", "--seed", "3",
                          "--checkpoint-every", "5",
                          "--checkpoint-file", str(checkpoint))
        assert strip_wall_time(plain) == strip_wall_time(checked)
        assert not checkpoint.exists()

    def test_fuzz_resume_without_checkpoint_starts_fresh(self, capsys,
                                                         tmp_path,
                                                         crowdsale_file):
        checkpoint = tmp_path / "none.checkpoint.json"
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--iterations", "20", "--seed", "3", "--resume",
                      "--checkpoint-file", str(checkpoint))
        assert "no matching checkpoint" in out
        assert "branch coverage" in out

    def test_fuzz_rejects_non_positive_checkpoint_every(self, capsys,
                                                        crowdsale_file):
        assert main(["fuzz", crowdsale_file, "--iterations", "10",
                     "--checkpoint-every", "0",
                     "--checkpoint-file", "x.json"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_fuzz_rejects_checkpoint_file_alone(self, capsys, tmp_path,
                                                crowdsale_file):
        """--checkpoint-file without --checkpoint-every/--resume would be
        a silent no-op; refuse it instead of losing the user's progress."""
        assert main(["fuzz", crowdsale_file, "--iterations", "10",
                     "--checkpoint-file",
                     str(tmp_path / "cp.json")]) == 2
        assert "does nothing on its own" in capsys.readouterr().err

    def test_fuzz_checkpoint_not_shared_across_contracts(self, capsys,
                                                         tmp_path):
        """One source file, two contracts: a checkpoint taken for one
        must not be resumed into a campaign for the other (the
        fingerprint covers the contract name)."""
        from tests.conftest import GAME_SOURCE
        multi = tmp_path / "multi.sol"
        multi.write_text(CROWDSALE_SOURCE + GAME_SOURCE)
        checkpoint = tmp_path / "multi.checkpoint.json"
        # leave a mid-campaign checkpoint behind for Crowdsale
        from repro.compiler import compile_source
        from repro.core import Fuzzer, mufuzz_config
        from repro.engine.checkpoint import checkpoint_fingerprint
        from repro.orchestrator.store import write_checkpoint_file
        config = mufuzz_config(iterations=300, rng_seed=1)
        artifact = compile_source(multi.read_text(), "Crowdsale")
        fuzzer = Fuzzer(artifact, config)
        captured = []
        fuzzer.run(checkpoint_every=250, checkpoint_sink=captured.append)
        write_checkpoint_file(
            checkpoint, captured[0],
            checkpoint_fingerprint(artifact.source, "Crowdsale", config))
        out = run_cli(capsys, "fuzz", str(multi), "--contract", "Game",
                      "--iterations", "300", "--seed", "1", "--resume",
                      "--checkpoint-file", str(checkpoint))
        assert "no matching checkpoint" in out
        # the mismatched run must not consume the other campaign's
        # checkpoint: its rightful owner can still resume from it
        assert checkpoint.exists()
        out = run_cli(capsys, "fuzz", str(multi), "--contract",
                      "Crowdsale", "--iterations", "300", "--seed", "1",
                      "--resume", "--checkpoint-file", str(checkpoint))
        assert "resumed from" in out
        assert not checkpoint.exists()

    def test_fuzz_stale_checkpoint_ignored(self, capsys, tmp_path,
                                           crowdsale_file):
        """A checkpoint from a different config must not be resumed."""
        checkpoint = tmp_path / "stale.checkpoint.json"
        checkpoint.write_text('{"schema": 1, "fingerprint": "deadbeef", '
                              '"checkpoint": {}}\n')
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--iterations", "20", "--seed", "3", "--resume",
                      "--checkpoint-file", str(checkpoint))
        assert "no matching checkpoint" in out

    def test_fuzz_never_clobbers_a_foreign_checkpoint(self, capsys,
                                                      tmp_path,
                                                      crowdsale_file):
        """Checkpointing onto a file that holds another campaign's state
        is refused outright — neither the sink nor consume-on-completion
        may destroy someone else's resumable state."""
        checkpoint = tmp_path / "foreign.checkpoint.json"
        foreign = ('{"schema": 1, "fingerprint": "deadbeef", '
                   '"checkpoint": {}}\n')
        checkpoint.write_text(foreign)
        assert main(["fuzz", crowdsale_file,
                     "--iterations", "20", "--seed", "3", "--resume",
                     "--checkpoint-every", "5",
                     "--checkpoint-file", str(checkpoint)]) == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert checkpoint.read_text() == foreign
        # read-only --resume against the same file still runs fresh and
        # leaves it untouched
        out = run_cli(capsys, "fuzz", crowdsale_file,
                      "--iterations", "20", "--seed", "3", "--resume",
                      "--checkpoint-file", str(checkpoint))
        assert "no matching checkpoint" in out
        assert checkpoint.read_text() == foreign


class TestKillAndResume:
    """True interrupt/resume: SIGKILL a running CLI process mid-campaign,
    resume from its persisted checkpoints, and compare byte-for-byte
    against an uninterrupted run."""

    @staticmethod
    def _spawn(*argv, cwd):
        import os
        import subprocess
        import sys
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        return subprocess.Popen([sys.executable, "-m", "repro", *argv],
                                cwd=cwd, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    @staticmethod
    def _kill_once_checkpointed(proc, probe, timeout=60.0):
        """Wait until ``probe()`` reports a persisted checkpoint, then
        SIGKILL the process; returns False if it finished first."""
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if probe():
                proc.kill()
                proc.wait()
                return True
            if proc.poll() is not None:
                return False
            time.sleep(0.01)
        proc.kill()
        proc.wait()
        raise AssertionError("no checkpoint appeared within the timeout")

    def test_fuzz_kill_and_resume_byte_identical(self, capsys, tmp_path,
                                                 crowdsale_file):
        checkpoint = tmp_path / "fuzz.checkpoint.json"
        budget = ("--iterations", "400", "--seed", "3")
        baseline = run_cli(capsys, "fuzz", crowdsale_file, *budget)

        proc = self._spawn("fuzz", crowdsale_file, *budget,
                           "--checkpoint-every", "5",
                           "--checkpoint-file", str(checkpoint),
                           cwd=str(tmp_path))
        interrupted = self._kill_once_checkpointed(proc, checkpoint.exists)
        assert interrupted, "campaign finished before it could be killed"
        assert checkpoint.exists()

        resumed = run_cli(capsys, "fuzz", crowdsale_file, *budget,
                          "--resume", "--checkpoint-file", str(checkpoint))
        assert "resumed from" in resumed
        assert strip_wall_time(baseline) == \
            strip_wall_time(resumed.splitlines()[1])
        assert not checkpoint.exists()  # consumed on completion

    def test_campaign_kill_and_resume_mid_campaign(self, capsys, tmp_path,
                                                   crowdsale_file):
        """An interrupted matrix resumes *mid-campaign* from per-job
        checkpoints, settling results byte-identical to an uninterrupted
        matrix."""
        ref_dir = tmp_path / "reference"
        hot_dir = tmp_path / "interrupted"
        argv = ("campaign", crowdsale_file, "--fuzzers", "mufuzz", "sfuzz",
                "--trials", "3", "--iterations", "120", "--workers", "1",
                "--backend", "inline", "--seed", "3")
        run_cli(capsys, *argv, "--results-dir", str(ref_dir))

        hot_argv = argv + ("--results-dir", str(hot_dir),
                           "--checkpoint-every", "5")
        proc = self._spawn(*hot_argv, cwd=str(tmp_path))
        interrupted = self._kill_once_checkpointed(
            proc, lambda: any(hot_dir.glob("*.checkpoint.json")))
        assert interrupted, "matrix finished before it could be killed"
        assert any(hot_dir.glob("*.checkpoint.json"))

        resumed = run_cli(capsys, *hot_argv)
        assert "executed" in resumed
        assert not any(hot_dir.glob("*.checkpoint.json"))  # all consumed

        from repro.orchestrator.store import ResultStore
        ref = ResultStore(ref_dir).canonical_records()
        hot = ResultStore(hot_dir).canonical_records()
        assert ref and hot == ref
