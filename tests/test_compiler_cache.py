"""The process-local compile cache behind the execution backends."""

from __future__ import annotations

import pytest

from repro.compiler import compile_source
from repro.compiler.cache import (
    CompileCache,
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
)
from repro.lang.errors import MiniSolError
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE


class TestCompileCache:
    def test_hit_returns_the_same_artifact_object(self):
        cache = CompileCache()
        first = cache.get(CROWDSALE_SOURCE)
        second = cache.get(CROWDSALE_SOURCE)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_key_covers_source_and_contract_name(self):
        cache = CompileCache()
        cache.get(CROWDSALE_SOURCE)
        cache.get(GAME_SOURCE)
        cache.get(CROWDSALE_SOURCE, "Crowdsale")  # explicit name: new key
        assert cache.misses == 3 and cache.hits == 0
        cache.get(CROWDSALE_SOURCE, "Crowdsale")
        assert cache.hits == 1

    def test_lru_evicts_the_oldest_entry(self):
        cache = CompileCache(maxsize=1)
        cache.get(CROWDSALE_SOURCE)
        cache.get(GAME_SOURCE)     # evicts Crowdsale
        cache.get(CROWDSALE_SOURCE)  # miss again
        assert cache.misses == 3 and cache.hits == 0
        assert len(cache) == 1

    def test_compile_error_leaves_no_entry(self):
        cache = CompileCache()
        with pytest.raises(MiniSolError):
            cache.get("contract Broken { function f( public")
        assert len(cache) == 0
        assert cache.misses == 1

    def test_cached_artifact_matches_a_fresh_compile(self):
        cached = compile_cached(CROWDSALE_SOURCE)
        fresh = compile_source(CROWDSALE_SOURCE)
        assert cached.name == fresh.name
        assert cached.runtime_code == fresh.runtime_code
        assert cached.init_code == fresh.init_code
        assert sorted(cached.branch_info) == sorted(fresh.branch_info)

    def test_module_level_cache_counts_and_clears(self):
        clear_compile_cache()
        before = compile_cache_stats()
        assert before == {"hits": 0, "misses": 0, "size": 0}
        compile_cached(CROWDSALE_SOURCE)
        compile_cached(CROWDSALE_SOURCE)
        after = compile_cache_stats()
        assert after["hits"] == 1 and after["misses"] == 1
        assert after["size"] == 1
        clear_compile_cache()
        assert compile_cache_stats() == {"hits": 0, "misses": 0, "size": 0}
