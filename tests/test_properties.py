"""Property-based tests (hypothesis) for core invariants (DESIGN.md §6)."""

import random

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import BlockContext
from repro.chain.state import WorldState
from repro.compiler.abi import decode_words, encode_words
from repro.compiler.layout import StorageLayout
from repro.core.masking import (
    ALL_MUTATIONS,
    MutationMask,
    MutationType,
    SeedMutator,
    mutate_stream,
)
from repro.core.seeds import TxCall
from repro.evm.machine import Machine, Message, keccak
from repro.evm.opcodes import Op
from repro.evm.trace import (
    EV_ALL,
    EV_BRANCH,
    EV_COMPARE,
    EV_OVERFLOW,
    combine_and,
    combine_or,
    comparison_shadow,
)
from repro.analysis.absint import transfer_block
from repro.analysis.cfg import build_cfg
from repro.analysis.disassembler import disassemble
from repro.evm.analysis import analyze_code
from repro.evm.opcodes import is_push
from repro.lang.parser import parse_source

U256 = 1 << 256
u256 = st.integers(min_value=0, max_value=U256 - 1)


def exec_binop(op: int, top: int, second: int):
    """Run one binary opcode in a fresh machine; returns (result, machine)."""
    code = bytes([0x7F]) + second.to_bytes(32, "big") + \
        bytes([0x7F]) + top.to_bytes(32, "big") + \
        bytes([op, 0x60, 0x00, Op.MSTORE, 0x60, 0x20, 0x60, 0x00, Op.RETURN])
    world = WorldState()
    world.account(1)
    machine = Machine(world, BlockContext())
    result = machine.execute(Message(address=1, caller=2, origin=2, value=0,
                                     data=b"", gas=10 ** 6, code=code))
    assert result.success, result.error
    return int.from_bytes(result.returndata, "big"), machine


class TestArithmeticProperties:
    @given(a=u256, b=u256)
    @settings(max_examples=60, deadline=None)
    def test_add_is_mod_2_256(self, a, b):
        result, machine = exec_binop(Op.ADD, a, b)
        assert result == (a + b) % U256
        # overflow event iff the mathematical result was truncated
        assert bool(machine.trace.overflows) == (a + b >= U256)

    @given(a=u256, b=u256)
    @settings(max_examples=60, deadline=None)
    def test_sub_is_mod_2_256(self, a, b):
        result, machine = exec_binop(Op.SUB, a, b)
        assert result == (a - b) % U256
        assert bool(machine.trace.overflows) == (a < b)

    @given(a=u256, b=u256)
    @settings(max_examples=40, deadline=None)
    def test_mul_is_mod_2_256(self, a, b):
        result, machine = exec_binop(Op.MUL, a, b)
        assert result == (a * b) % U256
        assert bool(machine.trace.overflows) == (a * b >= U256)

    @given(a=u256, b=u256)
    @settings(max_examples=40, deadline=None)
    def test_div_matches_python_floor(self, a, b):
        result, _ = exec_binop(Op.DIV, a, b)
        assert result == (a // b if b else 0)


class TestShadowProperties:
    @given(a=u256, b=u256)
    @settings(max_examples=80, deadline=None)
    def test_lt_distance_zero_iff_true(self, a, b):
        shadow = comparison_shadow("LT", a, b, frozenset())
        assert (shadow.dist_true == 0) == (a < b)
        assert (shadow.dist_false == 0) == (a >= b)
        assert shadow.dist_true == 0 or shadow.dist_false == 0

    @given(a=u256, b=u256)
    @settings(max_examples=80, deadline=None)
    def test_eq_distance_zero_iff_equal(self, a, b):
        shadow = comparison_shadow("EQ", a, b, frozenset())
        assert (shadow.dist_true == 0) == (a == b)

    @given(a=u256, b=u256)
    @settings(max_examples=50, deadline=None)
    def test_negation_is_involution(self, a, b):
        shadow = comparison_shadow("GT", a, b, frozenset())
        assert shadow.negated().negated() == shadow

    @given(a1=u256, b1=u256, a2=u256, b2=u256)
    @settings(max_examples=50, deadline=None)
    def test_and_or_distance_consistency(self, a1, b1, a2, b2):
        x = comparison_shadow("LT", a1, b1, frozenset())
        y = comparison_shadow("LT", a2, b2, frozenset())
        both = combine_and(x, y)
        either = combine_or(x, y)
        assert (both.dist_true == 0) == (a1 < b1 and a2 < b2)
        assert (either.dist_true == 0) == (a1 < b1 or a2 < b2)


class TestAbiProperties:
    @given(words=st.lists(u256, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip(self, words):
        assert decode_words(encode_words(words)) == words

    @given(words=st.lists(u256, min_size=1, max_size=6), value=u256)
    @settings(max_examples=60, deadline=None)
    def test_txcall_stream_roundtrip(self, words, value):
        call = TxCall(function="f", args=words, value=value)
        decoded = call.apply_stream(call.to_stream())
        assert decoded.args == words
        assert decoded.value == value

    @given(words=st.lists(u256, max_size=6), value=u256, sender=u256,
           delta=st.integers(min_value=-64, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_txcall_stream_roundtrip_grown_and_shrunk(self, words, value,
                                                      sender, delta):
        """INSERT/DELETE mutations resize the stream; applying any resized
        stream must restore the call's exact word count (shrunk streams
        zero-pad on the right, grown streams truncate), and must never
        touch the function name or sender."""
        call = TxCall(function="f", args=words, value=value, sender=sender)
        stream = call.to_stream()
        resized = (stream[:len(stream) + delta] if delta < 0
                   else stream + b"\xa5" * delta)
        decoded = call.apply_stream(resized)
        assert len(decoded.args) == len(words)
        assert decoded.function == call.function
        assert decoded.sender == call.sender
        # re-encoding yields exactly the resized stream normalized back
        # to the canonical width (pad/truncate is idempotent)
        canonical = (resized[:len(stream)]
                     + b"\x00" * max(0, len(stream) - len(resized)))
        assert decoded.to_stream() == canonical

    @given(words=st.lists(u256, max_size=6), value=u256, sender=u256)
    @settings(max_examples=60, deadline=None)
    def test_txcall_dict_roundtrip_through_json(self, words, value, sender):
        """Checkpoint serialization: to_dict/from_dict is exact through a
        JSON wire hop."""
        import json as _json
        call = TxCall(function="g", args=words, value=value, sender=sender)
        restored = TxCall.from_dict(_json.loads(_json.dumps(call.to_dict())))
        assert restored == call


class TestStorageLayoutProperties:
    @given(n=st.integers(min_value=1, max_value=20),
           key=u256, seed=st.integers(min_value=0, max_value=10 ** 9))
    @settings(max_examples=50, deadline=None)
    def test_mapping_slots_never_collide_with_scalars(self, n, key, seed):
        """keccak(key ‖ slot) must not land in the scalar slot range."""
        slot = seed % n
        element = keccak(key.to_bytes(32, "big") + slot.to_bytes(32, "big"))
        assert element >= n  # scalar slots are 0..n-1

    @given(key1=u256, key2=u256, slot1=st.integers(0, 100),
           slot2=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_mapping_elements_unique(self, key1, key2, slot1, slot2):
        if (key1, slot1) == (key2, slot2):
            return
        e1 = keccak(key1.to_bytes(32, "big") + slot1.to_bytes(32, "big"))
        e2 = keccak(key2.to_bytes(32, "big") + slot2.to_bytes(32, "big"))
        assert e1 != e2


class TestMutationProperties:
    @given(data=st.binary(min_size=32, max_size=160),
           pos=st.integers(0, 200), n=st.integers(1, 64),
           op=st.sampled_from(list(ALL_MUTATIONS)),
           seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_mutate_stream_size_law(self, data, pos, n, op, seed):
        rng = random.Random(seed)
        out = mutate_stream(data, op, pos, n, rng)
        if op is MutationType.INSERT:
            assert len(out) > len(data)
        elif op is MutationType.DELETE:
            assert len(out) < len(data)
        else:
            assert len(out) == len(data)

    @given(allowed_word=st.integers(0, 2), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_masked_mutation_confined_to_allowed_region(self, allowed_word,
                                                        seed):
        rng = random.Random(seed)
        mutator = SeedMutator(rng)
        call = TxCall(function="f", args=[0xAB, 0xCD], value=0xEF)
        mask = MutationMask(length=96)
        lo, hi = allowed_word * 32, allowed_word * 32 + 32
        for pos in range(lo, hi):
            mask.allow(pos, MutationType.OVERWRITE)
        mutated = mutator.masked_mutate(call, mask)
        assert mutated is not None
        original_words = [0xAB, 0xCD, 0xEF]
        mutated_words = mutated.args + [mutated.value]
        for i in range(3):
            if i != allowed_word:
                assert mutated_words[i] == original_words[i]


class TestWorldStateProperties:
    @given(ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5), u256), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_revert_restores_exact_state(self, ops):
        world = WorldState()
        for slot in range(6):
            world.set_storage(1, slot, slot * 7)
        baseline = {slot: world.get_storage(1, slot)[0] for slot in range(6)}
        token = world.snapshot()
        for kind, slot, value in ops:
            if kind == 0:
                world.set_storage(1, slot, value)
            elif kind == 1:
                world.set_balance(slot, value)
            elif kind == 2:
                world.account(100 + slot)
            else:
                world.mark_destroyed(1)
        world.revert_to(token)
        for slot in range(6):
            assert world.get_storage(1, slot)[0] == baseline[slot]
        assert not world.is_destroyed(1)


class TestCompilerProperties:
    @given(a=st.integers(0, 10 ** 18), b=st.integers(0, 10 ** 18),
           op=st.sampled_from(["+", "-", "*", "/", "%"]))
    @settings(max_examples=30, deadline=None)
    def test_compiled_arithmetic_matches_python(self, a, b, op):
        from repro.chain import Chain
        from repro.chain.transactions import Transaction
        from repro.compiler import compile_source, encode_call
        source = f"""
        contract T {{
            function f(uint256 a, uint256 b) public returns (uint256) {{
                return a {op} b;
            }}
        }}
        """
        artifact = compile_source(source)
        chain = Chain()
        chain.create_account(0xA)
        deployed = chain.deploy(artifact, sender=0xA)
        fn = artifact.abi.function("f")
        receipt = chain.apply(Transaction(
            sender=0xA, to=deployed.address, data=encode_call(fn, [a, b])))
        assert receipt.success
        got = decode_words(receipt.returndata)[0]
        if op == "+":
            expected = (a + b) % U256
        elif op == "-":
            expected = (a - b) % U256
        elif op == "*":
            expected = (a * b) % U256
        elif op == "/":
            expected = a // b if b else 0
        else:
            expected = a % b if b else 0
        assert got == expected


# -- disassembly / abstract-interpretation properties (PR 8) ------------------


class TestDisassemblyProperties:
    """The linear disassembly is the decode the machine executes."""

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_disassembly_partitions_code(self, code):
        """Instruction extents tile [0, len(code)) exactly: consecutive,
        gap-free, starting at 0 (a truncated trailing PUSH may extend
        past the end — its immediate reads as zero-padded)."""
        instructions = disassemble(code)
        if not code:
            assert instructions == []
            return
        expected_pc = 0
        for ins in instructions:
            assert ins.pc == expected_pc
            expected_pc = ins.pc + ins.size
        assert instructions[-1].pc < len(code)
        assert expected_pc >= len(code)

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    @example(bytes([0x7F, 0x01]))          # PUSH32 with 31 missing bytes
    @example(bytes([Op.PUSH2, 0xAB]))      # PUSH2 with 1 missing byte
    def test_push_operands_agree_with_machine_predecode(self, code):
        """The disassembler's PUSH immediates (including right-padded
        truncated ones) equal the interpreter's predecoded operands —
        one decode, two consumers, no drift."""
        analysis = analyze_code(code)
        for ins in disassemble(code):
            if is_push(ins.opcode):
                entry = analysis.decoded[ins.pc]
                assert entry is not None
                assert entry[2] == ins.operand


_FOLDABLE_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
                 Op.AND, Op.OR, Op.XOR, Op.LT, Op.GT, Op.EQ)


class TestAbstractInterpreterProperties:
    """On straight-line constant code the abstract interpreter is exact."""

    @given(u256, st.lists(st.tuples(st.sampled_from(_FOLDABLE_OPS), u256),
                          min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_const_facts_agree_with_concrete_machine(self, x0, steps):
        body = bytes([0x7F]) + x0.to_bytes(32, "big")
        for op, k in steps:
            body += bytes([0x7F]) + k.to_bytes(32, "big") + bytes([op])

        # concrete: store the accumulator and return it
        code = body + bytes([0x60, 0x00, Op.MSTORE,
                             0x60, 0x20, 0x60, 0x00, Op.RETURN])
        world = WorldState()
        world.account(1)
        machine = Machine(world, BlockContext())
        result = machine.execute(Message(
            address=1, caller=2, origin=2, value=0, data=b"",
            gas=10 ** 6, code=code))
        assert result.success, result.error
        concrete = int.from_bytes(result.returndata, "big")

        # abstract: the same straight line is one basic block
        cfg = build_cfg(body + bytes([Op.STOP]))
        block = cfg.blocks[min(cfg.blocks)]
        out = transfer_block(block)
        assert out.stack
        assert out.stack[-1] == ("const", concrete)


# -- block-fusion differential ------------------------------------------------

#: ops safe for random straight-line programs (no control flow, no calls);
#: arities are tracked by the composer so generated code never underflows
_FUSION_BINOPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
                  Op.XOR, Op.SHL, Op.SHR, Op.LT, Op.GT, Op.SLT, Op.SGT,
                  Op.EQ)
_FUSION_UNOPS = (Op.ISZERO, Op.NOT)
_FUSION_SOURCES = (Op.CALLER, Op.CALLVALUE, Op.NUMBER, Op.TIMESTAMP,
                   Op.ADDRESS, Op.CALLDATASIZE)

_fusion_step = st.one_of(
    st.tuples(st.just("push"), u256),
    st.tuples(st.just("binop"), st.sampled_from(_FUSION_BINOPS)),
    st.tuples(st.just("unop"), st.sampled_from(_FUSION_UNOPS)),
    st.tuples(st.just("source"), st.sampled_from(_FUSION_SOURCES)),
    st.tuples(st.just("dup"), st.integers(min_value=1, max_value=4)),
    st.tuples(st.just("swap"), st.integers(min_value=1, max_value=4)),
    st.tuples(st.just("pop"), st.just(0)),
    st.tuples(st.just("mstore"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("mload"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("sstore"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("sload"), st.integers(min_value=0, max_value=3)),
)


def _compose_straight_line(steps) -> bytes:
    """Assemble a valid straight-line program: ops that would underflow the
    statically tracked stack depth are skipped, so fused and table runs
    only ever diverge through a real semantics bug, never a bad input."""
    out = bytearray()
    depth = 0
    for tag, arg in steps:
        if tag == "push":
            out += bytes([0x7F]) + arg.to_bytes(32, "big")
            depth += 1
        elif tag == "binop" and depth >= 2:
            out.append(arg)
            depth -= 1
        elif tag == "unop" and depth >= 1:
            out.append(arg)
        elif tag == "source":
            out.append(arg)
            depth += 1
        elif tag == "dup" and depth >= arg:
            out.append(0x80 + arg - 1)
            depth += 1
        elif tag == "swap" and depth >= arg + 1:
            out.append(0x90 + arg - 1)
        elif tag == "pop" and depth >= 1:
            out.append(Op.POP)
            depth -= 1
        elif tag == "mstore" and depth >= 1:
            out += bytes([0x60, arg * 32, Op.MSTORE])
            depth -= 1
        elif tag == "mload":
            out += bytes([0x60, arg * 32, Op.MLOAD])
            depth += 1
        elif tag == "sstore" and depth >= 1:
            out += bytes([0x60, arg, Op.SSTORE])
            depth -= 1
        elif tag == "sload":
            out += bytes([0x60, arg, Op.SLOAD])
            depth += 1
    out.append(Op.STOP)
    return bytes(out)


def _run_fusion_arm(code: bytes, mask: int, fused: bool):
    """Execute ``code`` via Machine._run so the final frame stack survives
    for comparison (execute() would drop the frame)."""
    from repro.evm.machine import CallContext

    world = WorldState()
    world.account(1)
    machine = Machine(world, BlockContext(), event_mask=mask,
                      block_fusion=fused)
    machine._steps = 0
    msg = Message(address=1, caller=2, origin=2, value=7,
                  data=b"\x5a" * 36, gas=10 ** 6, code=code)
    frame = CallContext(msg=msg)
    result = machine._run(frame, 0)
    storage = dict(world.account(1).storage)
    trace = machine.trace
    return {
        "success": result.success,
        "returndata": result.returndata,
        "error": result.error,
        "gas_left": result.gas_left,
        "stack_values": list(frame.stack.values),
        "stack_shadows": list(frame.stack.shadows),
        "memory": bytes(frame.memory.data),
        "storage": storage,
        "steps": machine._steps,
        "branches": trace.branches,
        "compares": trace.compares,
        "overflows": trace.overflows,
        "storage_ops": trace.storage_ops,
        "block_reads": trace.block_reads,
        "caller_checked": frame.caller_checked,
    }


class TestBlockFusionDifferential:
    """Fused superinstruction closures are observationally identical to the
    per-opcode table loop: same stack (values *and* shadows), gas, steps,
    memory, storage, and trace-event streams, under every event mask."""

    @given(steps=st.lists(_fusion_step, min_size=1, max_size=24),
           mask=st.sampled_from((0, EV_ALL,
                                 EV_COMPARE | EV_BRANCH, EV_OVERFLOW)))
    @settings(max_examples=120, deadline=None)
    def test_fused_equals_table_on_straight_line_code(self, steps, mask):
        code = _compose_straight_line(steps)
        table = _run_fusion_arm(code, mask, fused=False)
        fused = _run_fusion_arm(code, mask, fused=True)
        assert fused == table

    @given(a=u256, b=u256,
           op=st.sampled_from((Op.ADD, Op.SUB, Op.MUL, Op.LT, Op.EQ)))
    @settings(max_examples=60, deadline=None)
    def test_folded_constants_match_runtime_handlers(self, a, b, op):
        """PUSH/PUSH/op folds at compile time under mask 0 and runs the
        real handler under EV_ALL — both must agree with the table loop."""
        code = (bytes([0x7F]) + b.to_bytes(32, "big")
                + bytes([0x7F]) + a.to_bytes(32, "big")
                + bytes([op, Op.STOP]))
        for mask in (0, EV_ALL):
            table = _run_fusion_arm(code, mask, fused=False)
            fused = _run_fusion_arm(code, mask, fused=True)
            assert fused == table
