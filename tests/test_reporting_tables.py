"""Tests for the reporting/rendering helpers used by the bench harness."""

from repro.core.campaign import CampaignResult
from repro.oracles.base import BugClass, Finding
from repro.reporting.tables import (
    format_curve,
    format_percentage_bars,
    format_table,
)


def finding(bug_class, pc=1, line=1):
    return Finding(bug_class=bug_class, contract="T", pc=pc, line=line,
                   description="x")


class TestTables:
    def test_format_table_pads_columns(self):
        table = format_table(["a", "bbbb"], [["xxxxx", "y"]])
        first, sep, row = table.splitlines()
        assert len(first) == len(sep) == len(row)

    def test_format_table_title_and_rule(self):
        table = format_table(["h"], [["v"]], title="My Title")
        assert table.splitlines()[0] == "My Title"
        assert set(table.splitlines()[1]) == {"="}

    def test_bars_scale_with_fraction(self):
        chart = format_percentage_bars([("full", 1.0), ("half", 0.5)],
                                       width=10)
        full_line, half_line = chart.splitlines()
        assert full_line.count("#") == 10
        assert half_line.count("#") == 5
        assert "100.0%" in full_line

    def test_curve_steps_hold_last_value(self):
        series = {"f": [(0, 0.1), (100, 0.5), (200, 0.9)]}
        text = format_curve(series)
        assert "50.0%" in text
        assert "90.0%" in text

    def test_empty_curve(self):
        assert format_curve({"f": []}, title="t") == "t"


class TestCampaignResult:
    def _result(self):
        return CampaignResult(
            fuzzer="MuFuzz", contract="T", coverage=0.8, iterations=10,
            total_steps=1000, wall_time=0.1,
            findings=[finding(BugClass.IO, pc=1),
                      finding(BugClass.IO, pc=2),
                      finding(BugClass.RE, pc=3)],
            curve=[(100, 0.2), (500, 0.6), (1000, 0.8)])

    def test_bug_classes(self):
        assert self._result().bug_classes == {BugClass.IO, BugClass.RE}

    def test_findings_by_class(self):
        grouped = self._result().findings_by_class()
        assert len(grouped[BugClass.IO]) == 2
        assert len(grouped[BugClass.RE]) == 1

    def test_coverage_at_step_interpolates_backward(self):
        result = self._result()
        assert result.coverage_at_step(99) == 0.0
        assert result.coverage_at_step(100) == 0.2
        assert result.coverage_at_step(750) == 0.6
        assert result.coverage_at_step(10_000) == 0.8
