"""Tests for the §VI prefix-state-cache extension."""

import pytest

from repro.core import Fuzzer, fuzz_contract, mufuzz_config
from repro.core.seeds import Seed, TxCall
from repro.core.statecache import PrefixStateCache, call_key
from tests.conftest import CROWDSALE_SOURCE


def calls(*specs):
    return [TxCall(function=f, args=list(a), value=v, sender=s)
            for f, a, v, s in specs]


class TestCacheMechanics:
    def test_call_key_covers_all_effect_inputs(self):
        base = TxCall(function="f", args=[1], value=2, sender=3)
        assert call_key(base) == call_key(base.clone())
        for mutated in (
                TxCall(function="g", args=[1], value=2, sender=3),
                TxCall(function="f", args=[9], value=2, sender=3),
                TxCall(function="f", args=[1], value=9, sender=3),
                TxCall(function="f", args=[1], value=2, sender=9)):
            assert call_key(mutated) != call_key(base)

    def test_miss_on_empty_cache(self):
        cache = PrefixStateCache()
        depth, chain, trace = cache.longest_prefix(
            calls(("f", [1], 0, 1)))
        assert depth == 0 and chain is None and trace is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        from repro.chain import Chain
        from repro.evm.trace import ExecutionTrace
        cache = PrefixStateCache(capacity=2)
        for i in range(4):
            cache.insert(calls((f"f{i}", [i], 0, 1)), 1, Chain(),
                         ExecutionTrace())
        assert len(cache) == 2


class TestCacheCorrectness:
    """The cached path must produce bit-identical behaviour."""

    def _final_storage(self, use_cache: bool):
        config = mufuzz_config(iterations=80, rng_seed=21,
                               use_state_cache=use_cache)
        fuzzer = Fuzzer(CROWDSALE_SOURCE, config)
        result = fuzzer.run()
        return fuzzer, result

    def test_coverage_identical_with_and_without_cache(self):
        _, with_cache = self._final_storage(True)
        _, without = self._final_storage(False)
        assert with_cache.coverage == without.coverage
        assert [f.key for f in with_cache.findings] == \
            [f.key for f in without.findings]

    def test_cache_actually_hits(self):
        fuzzer, _ = self._final_storage(True)
        stats = fuzzer.state_cache.stats()
        assert stats["hits"] > 0
        assert stats["steps_saved"] > 0

    def test_cached_run_executes_fewer_steps(self):
        fuzzer_cached, cached = self._final_storage(True)
        _, plain = self._final_storage(False)
        # identical campaigns; the cached one skipped replayed prefixes
        assert cached.total_steps < plain.total_steps

    def test_suffix_replay_matches_full_execution(self):
        """Manually execute a sequence, then a one-call extension, and
        check the cached suffix path equals a cold full execution."""
        config = mufuzz_config(iterations=10, rng_seed=1,
                               use_state_cache=True)
        fuzzer = Fuzzer(CROWDSALE_SOURCE, config)
        base = Seed(calls=calls(
            ("invest", [10 ** 20], 0, 0x00CA_FE01),
            ("invest", [5], 0, 0x00CA_FE01)))
        fuzzer._execute(base)

        extended = Seed(calls=base.calls + calls(
            ("withdraw", [], 0, 0x00CA_FE01)))
        warm = fuzzer._execute(extended)

        cold_config = mufuzz_config(iterations=10, rng_seed=1,
                                    use_state_cache=False)
        cold_fuzzer = Fuzzer(CROWDSALE_SOURCE, cold_config)
        cold = cold_fuzzer._execute(
            Seed(calls=[c.clone() for c in extended.calls]))

        warm_edges = {(pc, t) for a, pc, t in warm.branch_edges}
        cold_edges = {(pc, t) for a, pc, t in cold.branch_edges}
        assert warm_edges == cold_edges
