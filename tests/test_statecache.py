"""Tests for the §VI prefix-snapshot tree (the default-on state cache).

The cache is a pure performance layer, so the contract under test is
twofold: *mechanics* (selective insertion, leaf-first LRU eviction, no
deep world copies anywhere on the hot path) and *transparency* (campaign
results byte-identical with the cache on or off, including findings,
witnesses, budget accounting, and checkpoint/resume).
"""

import pytest

from repro.chain.blockchain import Chain
from repro.chain.state import WorldState
from repro.core import Fuzzer, mufuzz_config
from repro.core.seeds import Seed, TxCall
from repro.core.statecache import PrefixStateCache, call_key
from repro.engine.checkpoint import canonical_json
from tests.conftest import CROWDSALE_SOURCE, GAME_SOURCE


def calls(*specs):
    return [TxCall(function=f, args=list(a), value=v, sender=s)
            for f, a, v, s in specs]


def result_json(result) -> str:
    return canonical_json({**result.to_dict(), "wall_time": 0.0})


def _run(source, use_cache, **overrides):
    overrides.setdefault("rng_seed", 21)
    config = mufuzz_config(use_state_cache=use_cache, **overrides)
    fuzzer = Fuzzer(source, config)
    return fuzzer, fuzzer.run()


def _tree_nodes(cache):
    stack = [cache.root]
    while stack:
        node = stack.pop()
        if node is not cache.root:
            yield node
        stack.extend(node.children.values())


class TestCacheMechanics:
    def test_call_key_covers_all_effect_inputs(self):
        base = TxCall(function="f", args=[1], value=2, sender=3)
        assert call_key(base) == call_key(base.clone())
        for mutated in (
                TxCall(function="g", args=[1], value=2, sender=3),
                TxCall(function="f", args=[9], value=2, sender=3),
                TxCall(function="f", args=[1], value=9, sender=3),
                TxCall(function="f", args=[1], value=2, sender=9)):
            assert call_key(mutated) != call_key(base)

    def test_miss_on_empty_cache(self):
        cache = PrefixStateCache()
        assert cache.match(calls(("f", [1], 0, 1))) == []
        assert cache.misses == 1 and cache.hits == 0

    def test_selective_insertion_memoizes_on_recurrence(self):
        """First execution of a prefix costs a skeleton, the second
        materializes it, and only the third is a hit."""
        config = mufuzz_config(iterations=10, rng_seed=1,
                               use_state_cache=True)
        fuzzer = Fuzzer(CROWDSALE_SOURCE, config)
        seed = Seed(calls=calls(("invest", [7], 0, 0x00CA_FE01)))
        cache = fuzzer.state_cache

        fuzzer._execute(seed)
        assert len(cache) == 0 and cache.node_count == 1  # skeleton only
        fuzzer._execute(seed)
        assert len(cache) == 1          # materialized on recurrence...
        assert cache.hits == 0          # ...but that visit still executed
        fuzzer._execute(seed)
        assert cache.hits == 1
        assert cache.steps_saved > 0
        assert cache.transactions_skipped == 1

    def test_lru_capacity_and_leaf_first_eviction(self):
        """The materialized set stays within capacity, and eviction never
        strands a materialized node below an unmaterialized ancestor."""
        fuzzer, _ = _run(CROWDSALE_SOURCE, True, iterations=80,
                         state_cache_capacity=4)
        cache = fuzzer.state_cache
        assert cache.hits > 0
        assert len(cache) <= 4
        for node in _tree_nodes(cache):
            if node.receipt is None:
                continue
            parent = node.parent
            while parent is not cache.root:
                assert parent.receipt is not None, \
                    "materialized node stranded below an evicted parent"
                parent = parent.parent

    def test_skeleton_pruning_bounds_tree_size(self):
        fuzzer, _ = _run(CROWDSALE_SOURCE, True, iterations=120,
                         state_cache_capacity=4)
        cache = fuzzer.state_cache
        assert cache.node_count <= cache.max_nodes
        assert sum(1 for _ in _tree_nodes(cache)) == cache.node_count

    def test_no_world_fork_on_the_cache_path(self, monkeypatch):
        """Acceptance criterion: neither hits nor inserts deep-copy the
        world — a cached campaign must complete with forking forbidden."""
        def forbidden(self):
            raise AssertionError("deep fork on the state-cache hot path")

        monkeypatch.setattr(WorldState, "fork", forbidden)
        monkeypatch.setattr(Chain, "fork", forbidden)
        fuzzer, result = _run(CROWDSALE_SOURCE, True, iterations=60)
        assert result.iterations == 60
        assert fuzzer.state_cache.hits > 0

    def test_stats_shape(self):
        fuzzer, _ = _run(GAME_SOURCE, True, iterations=40)
        stats = fuzzer.state_cache.stats()
        assert set(stats) == {"hits", "misses", "hit_rate", "steps_saved",
                              "transactions_skipped", "nodes",
                              "materialized", "bytes_estimate"}
        assert 0.0 < stats["hit_rate"] < 1.0
        assert stats["bytes_estimate"] > 0
        assert stats["materialized"] == len(fuzzer.state_cache)


class TestCacheTransparency:
    """The cache must be invisible in campaign results."""

    @pytest.mark.parametrize("source", [CROWDSALE_SOURCE, GAME_SOURCE],
                             ids=["crowdsale", "game"])
    def test_campaign_json_byte_identical(self, source):
        _, with_cache = _run(source, True, iterations=80)
        _, without = _run(source, False, iterations=80)
        assert result_json(with_cache) == result_json(without)

    def test_replayed_steps_still_counted(self):
        """Skipped prefixes keep their recorded steps and transactions —
        the saving is wall clock, not accounting."""
        fuzzer, cached = _run(CROWDSALE_SOURCE, True, iterations=80)
        _, plain = _run(CROWDSALE_SOURCE, False, iterations=80)
        assert cached.total_steps == plain.total_steps
        assert cached.transactions == plain.transactions
        stats = fuzzer.state_cache.stats()
        assert stats["hits"] > 0
        assert stats["steps_saved"] > 0

    def test_findings_equal_per_bug_class(self):
        _, with_cache = _run(GAME_SOURCE, True, iterations=80)
        _, without = _run(GAME_SOURCE, False, iterations=80)

        def by_class(result):
            grouped: dict = {}
            for f in result.findings:
                grouped.setdefault(f.bug_class, []).append(
                    (f.pc, f.witness))
            return grouped

        assert by_class(with_cache) == by_class(without)

    def test_suffix_replay_matches_full_execution(self):
        """Execute a sequence until its prefix is memoized, then a
        one-call extension: the fast-forwarded suffix run must equal a
        cold full execution."""
        config = mufuzz_config(iterations=10, rng_seed=1,
                               use_state_cache=True)
        fuzzer = Fuzzer(CROWDSALE_SOURCE, config)
        base = Seed(calls=calls(
            ("invest", [10 ** 20], 0, 0x00CA_FE01),
            ("invest", [5], 0, 0x00CA_FE01)))
        fuzzer._execute(base)
        fuzzer._execute(base)  # second visit materializes the prefix

        extended = Seed(calls=base.calls + calls(
            ("withdraw", [], 0, 0x00CA_FE01)))
        warm = fuzzer._execute(extended)
        assert fuzzer.state_cache.hits == 1

        cold_config = mufuzz_config(iterations=10, rng_seed=1,
                                    use_state_cache=False)
        cold_fuzzer = Fuzzer(CROWDSALE_SOURCE, cold_config)
        cold = cold_fuzzer._execute(
            Seed(calls=[c.clone() for c in extended.calls]))

        assert warm.branch_edges == cold.branch_edges
        assert warm.steps == cold.steps
        assert [a.balance for a in fuzzer.base_chain.world.accounts()] \
            == [a.balance for a in cold_fuzzer.base_chain.world.accounts()]

    def test_witness_from_skipped_prefix_replays(self):
        """A finding whose witness prefix was fast-forwarded from the
        cache must still re-trigger deterministically on replay."""
        fuzzer, result = _run(GAME_SOURCE, True, iterations=80, rng_seed=5)
        assert fuzzer.state_cache.hits > 0
        assert result.findings
        multi_tx = [f for f in result.findings if len(f.witness) > 1]
        assert multi_tx, "campaign produced no multi-transaction witness"
        for finding in result.findings:
            replayer = Fuzzer(GAME_SOURCE, mufuzz_config(
                rng_seed=5, iterations=80, use_state_cache=True))
            assert replayer.replay(finding), finding
