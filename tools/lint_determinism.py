#!/usr/bin/env python
"""Determinism lint: AST checks for nondeterminism-prone Python idioms.

The repro's headline guarantee is byte-identical results across worker
counts, backends, and interruption points.  The usual way that guarantee
rots is innocuous-looking Python: iterating a set straight into output,
ordering by ``id()``, or drawing from the process-global ``random``
module instead of the engine's seeded ``random.Random`` instances.  This
lint walks the AST of every source file and flags:

``set-iteration``
    ``for x in {...}:`` / ``for x in set(...):`` / ``for x in
    frozenset(...):`` (statements and comprehensions).  Set iteration
    order depends on hash seeding; anything it feeds — serialized
    output, RNG draws, dispatch order — inherits that.  Wrap the
    iterable in ``sorted(...)`` (which the lint accepts) or iterate a
    list/tuple/dict instead.

``id-ordering``
    ``sorted`` / ``min`` / ``max`` whose arguments mention ``id(...)``.
    CPython ``id()`` is an address: orderings keyed on it differ across
    processes, so any two workers disagree.

``global-random``
    ``random.<fn>()`` calls on the module-global generator (seeded from
    OS entropy).  Engine code must draw from an explicitly seeded
    ``random.Random(seed)`` instance; ``random.Random(...)`` itself is
    the one allowed attribute access.

Usage: ``python tools/lint_determinism.py [PATHS...]`` (default:
``src/``).  Exits 1 when any violation is found, printing one
``file:line: rule: message`` per finding in path order.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: functions whose call-sites are ordering-sensitive (rule ``id-ordering``)
_ORDERING_FUNCS = frozenset({"sorted", "min", "max"})

#: ``random.<name>`` attributes that are fine on the module itself
_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})


def _is_set_expr(node: ast.expr) -> bool:
    """Is ``node`` a set display or a direct set()/frozenset() call?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _mentions_id_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return True
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[tuple[str, int, str, str]] = []

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((self.path, node.lineno, rule, message))

    # -- rule: set-iteration ---------------------------------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node):
            self._add(iter_node, "set-iteration",
                      "iterating a set directly; wrap in sorted(...) or "
                      "iterate an ordered collection")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- rules: id-ordering and global-random ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDERING_FUNCS:
            ordering_args = list(node.args) + [kw.value
                                               for kw in node.keywords]
            if any(_mentions_id_call(arg) for arg in ordering_args):
                self._add(node, "id-ordering",
                          f"{func.id}() keyed on id(): orderings differ "
                          f"across processes")
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _ALLOWED_RANDOM_ATTRS):
            self._add(node, "global-random",
                      f"random.{func.attr}() draws from the unseeded "
                      f"process-global RNG; use a seeded random.Random "
                      f"instance")
        self.generic_visit(node)


def lint_file(path: Path) -> list[tuple[str, int, str, str]]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(str(path), exc.lineno or 0, "syntax-error", str(exc.msg))]
    linter = _Linter(str(path))
    linter.visit(tree)
    return linter.findings


def lint_paths(paths) -> list[tuple[str, int, str, str]]:
    findings = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file))
    return findings


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = argv or ["src"]
    findings = lint_paths(paths)
    for path, line, rule, message in findings:
        print(f"{path}:{line}: {rule}: {message}")
    if findings:
        print(f"{len(findings)} determinism violation(s)")
        return 1
    print(f"determinism lint: clean "
          f"({sum(1 for _ in _iter_files(paths))} files)")
    return 0


def _iter_files(paths):
    for root in paths:
        root = Path(root)
        if root.is_dir():
            yield from root.rglob("*.py")
        else:
            yield root


if __name__ == "__main__":
    sys.exit(main())
