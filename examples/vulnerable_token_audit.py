#!/usr/bin/env python
"""Audit a DeFi-style token + vault contract with all nine bug oracles.

The contract bundles several classic vulnerabilities — a BEC-style
unchecked multiplication, a DAO-style reentrant withdraw, an unchecked
send, and a timestamp-guarded bonus — behind realistic guard conditions.
The example runs MuFuzz and prints an audit report, then compares what the
static-analyzer models would have said.

Run:  python examples/vulnerable_token_audit.py
"""

from repro import Fuzzer, mufuzz_config
from repro.baselines import STATIC_ANALYZERS

TOKEN = """
contract DefiToken {
    address owner;
    uint256 totalSupply = 0;
    uint256 launchTime = 0;
    mapping(address => uint256) balances;
    mapping(address => uint256) deposits;

    modifier onlyOwner() { require(msg.sender == owner); _; }

    constructor() public {
        owner = msg.sender;
        launchTime = block.timestamp;
    }

    // BEC-style batch transfer: value * count overflows silently
    function batchTransfer(address to, uint256 value, uint256 count) public {
        uint256 amount = value * count;
        balances[msg.sender] -= amount;
        balances[to] += value;
    }

    // DAO-style vault: ether out before the balance update
    function deposit() public payable {
        deposits[msg.sender] += msg.value;
    }
    function withdrawAll() public {
        uint256 owed = deposits[msg.sender];
        if (owed > 0) {
            bool ok = msg.sender.call.value(owed)();
            require(ok);
            deposits[msg.sender] = 0;
        }
    }

    // unchecked send in the referral payout
    function referralBonus(address referrer) public {
        referrer.send(1 finney);
    }

    // timestamp-dependent launch bonus
    function launchBonus() public {
        if (block.timestamp % 15 == 3) {
            balances[msg.sender] += 1000;
        }
    }

    // properly guarded admin path (should stay silent)
    function sweep(uint256 amount) public onlyOwner {
        require(amount <= 1 ether);
        owner.transfer(amount);
    }
}
"""


def main() -> None:
    fuzzer = Fuzzer(TOKEN, mufuzz_config(iterations=400, rng_seed=5))
    result = fuzzer.run()

    print("=== MuFuzz audit report: DefiToken ===")
    print(f"coverage {result.coverage:.1%} after {result.iterations} "
          f"executions ({result.wall_time:.2f}s)")
    print()
    by_class = result.findings_by_class()
    for bug_class in sorted(by_class, key=str):
        for finding in by_class[bug_class]:
            print(f"  [{bug_class}] line {finding.line}: "
                  f"{finding.description}")
    print()

    print("=== static analyzers on the same contract ===")
    for tool_cls in STATIC_ANALYZERS:
        tool = tool_cls()
        static = tool.analyze(fuzzer.artifact)
        status = "timeout" if static.timeout else \
            ",".join(sorted(bc.value for bc in static.findings)) or "clean"
        print(f"  {tool.name:10s}: {status}")

    fuzz_classes = {bc.value for bc in result.bug_classes}
    print()
    print(f"MuFuzz confirmed-by-execution classes: "
          f"{sorted(fuzz_classes)}")


if __name__ == "__main__":
    main()
