#!/usr/bin/env python
"""Replay a reentrancy attack step by step on the chain substrate.

This example works *below* the fuzzer: it deploys a DAO-style vault,
installs a reentrant attacker agent, and walks the attack transaction by
transaction, printing balances and the reentrant call trace — the exact
dynamic evidence the RE oracle consumes (§IV-D).

Run:  python examples/reentrancy_attack_replay.py
"""

from repro.chain import Chain, ReentrantAgent
from repro.chain.transactions import Transaction
from repro.compiler import compile_source, encode_call
from repro.oracles import OracleContext
from repro.oracles.reentrancy import ReentrancyOracle

VAULT = """
contract Vault {
    mapping(address => uint256) shares;
    function join() public payable { shares[msg.sender] += msg.value; }
    function redeem() public {
        uint256 owed = shares[msg.sender];
        if (owed > 0) {
            bool sent = msg.sender.call.value(owed)();
            require(sent);
            shares[msg.sender] = 0;   // too late: state updated after call
        }
    }
}
"""

VICTIM = 0xA11CE
ATTACKER = 0xBAD


def ether(wei: int) -> str:
    return f"{wei / 10 ** 18:.3f} ETH"


def main() -> None:
    chain = Chain()
    chain.create_account(VICTIM)
    agent = ReentrantAgent(ATTACKER, max_reentries=3)
    chain.register_agent(ATTACKER, agent)

    artifact = compile_source(VAULT)
    vault = chain.deploy(artifact, sender=VICTIM)
    join = artifact.abi.function("join")
    redeem = artifact.abi.function("redeem")

    print("1. victim deposits 10 ETH")
    chain.apply(Transaction(sender=VICTIM, to=vault.address,
                            value=10 * 10 ** 18, data=encode_call(join, [])))
    print("   vault balance:", ether(chain.world.get_balance(vault.address)))

    print("2. attacker deposits 1 ETH (establishing a share)")
    chain.apply(Transaction(sender=ATTACKER, to=vault.address,
                            value=1 * 10 ** 18, data=encode_call(join, [])))

    print("3. attacker arms its fallback to re-call redeem() and withdraws")
    agent.arm(encode_call(redeem, []))
    attacker_before = chain.world.get_balance(ATTACKER)
    receipt = chain.apply(Transaction(sender=ATTACKER, to=vault.address,
                                      data=encode_call(redeem, [])))
    stolen = chain.world.get_balance(ATTACKER) - attacker_before

    print("   transaction succeeded:", receipt.success)
    print("   reentrant frames observed:",
          sum(1 for c in receipt.trace.calls if c.reentrant))
    print("   vault balance after :",
          ether(chain.world.get_balance(vault.address)))
    print("   attacker gained     :", ether(stolen),
          "(deposited only 1 ETH)")

    oracle = ReentrancyOracle()
    ctx = OracleContext(artifact=artifact, address=vault.address,
                        deployer=VICTIM,
                        attacker_addresses=frozenset({ATTACKER}))
    findings = list(oracle.on_receipt(receipt, ctx))
    print()
    print("RE oracle verdict:")
    for finding in findings:
        print(f"  [{finding.bug_class}] line {finding.line}: "
              f"{finding.description}")
    assert findings, "the oracle must flag this attack"


if __name__ == "__main__":
    main()
