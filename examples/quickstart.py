#!/usr/bin/env python
"""Quickstart: fuzz the paper's Crowdsale contract (Fig. 1) with MuFuzz.

The contract hides a reachable-only-via-sequence branch: ``withdraw``'s
``phase == 1`` can only become true after ``invest`` runs twice (once to
reach the goal, once to flip the phase).  MuFuzz's sequence-aware mutation
derives exactly that ordering from the state-variable data flow.

Run:  python examples/quickstart.py
"""

from repro import Fuzzer, mufuzz_config

CROWDSALE = """
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);   // the paper's hidden bug branch
        }
    }
}
"""


def main() -> None:
    fuzzer = Fuzzer(CROWDSALE, mufuzz_config(iterations=150, rng_seed=7))

    print("sequence-aware analysis:")
    print("  dependency order :", fuzzer.seqgen.dependency_order())
    print("  repeat candidates:", sorted(fuzzer.seqgen.repeat_candidates()))
    print("  base sequence    :", fuzzer.seqgen.base_sequence())
    print()

    result = fuzzer.run()
    print(f"campaign: {result.iterations} executions, "
          f"{result.transactions} transactions, "
          f"{result.wall_time:.2f}s wall time")
    print(f"branch coverage: {result.coverage:.1%}")

    withdraw_ifs = [pc for pc, info in fuzzer.artifact.branch_info.items()
                    if info.function == "withdraw" and info.kind == "if"]
    hit = all((pc, True) in fuzzer.coverage.covered for pc in withdraw_ifs)
    print(f"withdraw bug branch reached: {'YES' if hit else 'no'}")

    if result.findings:
        print("findings:")
        for finding in result.findings:
            print(f"  [{finding.bug_class}] line {finding.line}: "
                  f"{finding.description}")
    else:
        print("findings: none (the Crowdsale bug is a coverage target, "
              "not an oracle violation)")


if __name__ == "__main__":
    main()
