#!/usr/bin/env python
"""Shoot-out: all five fuzzers on a generated D1 corpus sample.

Reproduces the spirit of the paper's RQ1 comparison in miniature: every
fuzzer gets the same iteration budget on the same contracts; the table
reports average branch coverage, executed transactions, and bugs confirmed
against the generator's ground-truth annotations.

Run:  python examples/fuzzer_shootout.py [n_contracts] [iterations]
"""

import sys

from repro import (
    Fuzzer,
    confuzzius_config,
    irfuzz_config,
    mufuzz_config,
    sfuzz_config,
    smartian_config,
)
from repro.corpus import generate_d1
from repro.reporting import format_table


def main() -> None:
    n_contracts = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    corpus = generate_d1(n_small=n_contracts, n_large=0, seed=11)
    annotated = sum(len(c.expected_bugs) for c in corpus)
    print(f"corpus: {len(corpus)} small contracts, "
          f"{annotated} annotated bugs, budget {iterations} executions each")

    rows = []
    for preset in (mufuzz_config, irfuzz_config, confuzzius_config,
                   smartian_config, sfuzz_config):
        coverage = 0.0
        transactions = 0
        confirmed = 0
        wall = 0.0
        for contract in corpus:
            result = Fuzzer(contract.artifact,
                            preset(iterations=iterations,
                                   rng_seed=13)).run()
            coverage += result.coverage
            transactions += result.transactions
            confirmed += len(result.bug_classes & contract.expected_bugs)
            wall += result.wall_time
        rows.append([
            preset().name,
            f"{coverage / len(corpus):.1%}",
            f"{confirmed}/{annotated}",
            transactions,
            f"{wall:.1f}s",
        ])

    print()
    print(format_table(
        ["fuzzer", "avg coverage", "bugs found", "transactions", "wall"],
        rows, title="D1 shoot-out"))


if __name__ == "__main__":
    main()
