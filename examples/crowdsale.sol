// Figure 1 of the paper, translated to MiniSol: the crowdsale whose
// refund/withdraw bugs need the [invest, refund, invest, withdraw]
// sequence shape to reach.  Try:
//   repro fuzz examples/crowdsale.sol --iterations 300
//   repro campaign examples/crowdsale.sol --fuzzers mufuzz sfuzz --trials 2
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }
    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }
    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }
    function withdraw() public {
        if (phase == 1) {
            owner.transfer(invested);
        }
    }
}
