"""MiniSol code generation.

The generated runtime bytecode has the canonical solc shape:

* a calldata-size guard and selector dispatcher at the top,
* per-function entries (payable guard, argument decode),
* shared function bodies reachable both from dispatch and from internal
  calls (return address on the operand stack),
* explicit REVERT blocks for failed require/payable/transfer checks.

Every ``JUMPI`` the fuzzer will ever see is recorded in
``CompiledContract.branch_info`` with its construct kind, source line, and
static nesting depth.
"""

from __future__ import annotations

import copy

from repro.compiler.abi import ContractABI, encode_words, make_function_abi
from repro.compiler.artifacts import BranchInfo, CompiledContract
from repro.compiler.asm import Assembler
from repro.compiler.layout import StorageLayout, build_frames
from repro.evm.machine import keccak
from repro.evm.opcodes import Op
from repro.lang import ast_nodes as ast
from repro.lang.errors import MiniSolError
from repro.lang.parser import parse_source

#: gas forwarded by transfer/send — the stipend that blocks reentrancy
TRANSFER_GAS = 2300
#: gas forwarded by call.value — plenty for a reentrant callback
CALL_VALUE_GAS = 1_000_000


class CompileError(MiniSolError):
    """Semantic error discovered during code generation."""


class CodeGenerator:
    """Compiles one :class:`~repro.lang.ast_nodes.ContractDef`."""

    def __init__(self, contract: ast.ContractDef, source: str = "") -> None:
        self.contract = contract
        self.source = source
        self.layout = StorageLayout.for_contract(contract)
        self.frames, self.scratch = build_frames(contract)
        self._check_recursion()

        # per-assembly state
        self.asm: Assembler = Assembler()
        self._record_branches = False
        self._branch_info: dict[int, BranchInfo] = {}
        self._function_entries: dict[str, int] = {}
        self._body_labels: dict[str, int] = {}
        self._current_fn: ast.FunctionDef | None = None
        self._nesting = 0

    # -- public API ---------------------------------------------------------------

    def compile(self) -> CompiledContract:
        """Produce the full compilation artifact."""
        runtime = self._compile_runtime()
        srcmap = dict(self.asm.srcmap)
        branch_info = dict(self._branch_info)
        entries = dict(self._function_entries)
        init = self._compile_init()
        abi = self._build_abi()
        return CompiledContract(
            name=self.contract.name,
            init_code=init,
            runtime_code=runtime,
            abi=abi,
            layout=self.layout,
            contract_ast=self.contract,
            srcmap=srcmap,
            branch_info=branch_info,
            function_entries=entries,
            source=self.source,
        )

    # -- semantic checks -------------------------------------------------------------

    def _check_recursion(self) -> None:
        """MiniSol frames are static, so the internal call graph must be a DAG."""
        graph: dict[str, set] = {}
        for fn in self.contract.functions:
            graph[fn.name] = set()
            self._collect_calls(fn.body, graph[fn.name])

        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise CompileError(
                    f"recursive internal call involving {name!r} "
                    "(MiniSol uses static frames)")
            if state.get(name) == 2 or name not in graph:
                return
            state[name] = 1
            for callee in graph[name]:
                visit(callee)
            state[name] = 2

        for fn_name in graph:
            visit(fn_name)

    def _collect_calls(self, node, out: set) -> None:
        if isinstance(node, ast.InternalCall):
            if node.name != "encodePacked":
                out.add(node.name)
        for value in vars(node).values():
            if isinstance(value, (ast.Expr, ast.Stmt)):
                self._collect_calls(value, out)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.Expr, ast.Stmt)):
                        self._collect_calls(item, out)

    def _build_abi(self) -> ContractABI:
        abi = ContractABI(name=self.contract.name)
        for fn in self.contract.external_functions:
            abi.functions.append(make_function_abi(
                fn.name, [p.param_type for p in fn.params], fn.returns,
                fn.payable, fn.mutability))
        ctor = self.contract.constructor
        if ctor is not None:
            abi.constructor_inputs = tuple(p.param_type for p in ctor.params)
        return abi

    def _modifier(self, name: str) -> ast.ModifierDef:
        for mod in self.contract.modifiers:
            if mod.name == name:
                return mod
        raise CompileError(f"unknown modifier {name!r}")

    def _wrapped_body(self, fn: ast.FunctionDef) -> ast.Block:
        """The function body with its modifiers inlined around it."""
        body: ast.Stmt = fn.body
        for mod_name in reversed(fn.modifiers):
            mod = self._modifier(mod_name)
            if mod.params:
                raise CompileError(
                    f"modifier {mod_name!r} with parameters is unsupported")
            wrapper = copy.deepcopy(mod.body)
            _splice_placeholder(wrapper, body)
            body = wrapper
        if isinstance(body, ast.Block):
            return body
        return ast.Block(statements=[body], line=fn.line)

    # -- top-level code layout -----------------------------------------------------------

    def _compile_runtime(self) -> bytes:
        self.asm = Assembler()
        self._record_branches = True
        self._branch_info = {}
        self._function_entries = {}
        self._body_labels = {fn.name: self.asm.new_label()
                             for fn in self.contract.functions
                             if not fn.is_constructor}
        asm = self.asm

        # --- dispatcher ---
        fallback = asm.new_label()
        externals = self.contract.external_functions
        entry_labels = {fn.name: asm.new_label() for fn in externals}

        asm.push(32)
        asm.emit(Op.CALLDATASIZE)
        asm.emit(Op.LT)  # calldatasize < 32
        pc = asm.jumpi_to(fallback)
        self._note_branch(pc, "calldata", self.contract.line, "")

        asm.push(0)
        asm.emit(Op.CALLDATALOAD)
        for fn in externals:
            asm.emit(Op.DUP1)
            asm.push(self._selector(fn))
            asm.emit(Op.EQ)
            pc = asm.jumpi_to(entry_labels[fn.name])
            self._note_branch(pc, "dispatch", fn.line, fn.name)
        asm.emit(Op.POP)
        asm.place(fallback)
        self._emit_revert()

        # --- per-function entries ---
        for fn in externals:
            self._compile_entry(fn, entry_labels[fn.name])

        # --- shared bodies ---
        for fn in self.contract.functions:
            if not fn.is_constructor:
                self._compile_body(fn)

        return asm.assemble()

    def _compile_init(self) -> bytes:
        self.asm = Assembler()
        self._record_branches = False
        self._body_labels = {fn.name: self.asm.new_label()
                             for fn in self.contract.functions
                             if not fn.is_constructor}
        asm = self.asm

        # state variable initializers
        self._current_fn = None
        for var in self.contract.state_vars:
            if var.init is None:
                continue
            if var.var_type.is_mapping:
                raise CompileError(
                    f"mapping {var.name!r} cannot have an initializer",
                    var.line)
            asm.set_line(var.line)
            self._expr(var.init)
            asm.push(self.layout.slot_of(var.name))
            asm.emit(Op.SSTORE)

        ctor = self.contract.constructor
        exit_label = asm.new_label()
        if ctor is not None:
            frame = self.frames[ctor.name]
            for index, param in enumerate(ctor.params):
                asm.push(32 * index)
                asm.emit(Op.CALLDATALOAD)
                asm.push(frame.offset_of(param.name))
                asm.emit(Op.MSTORE)
            ctor_body = asm.new_label()
            asm.push_label(exit_label)
            asm.jump_to(ctor_body)
            asm.place(exit_label)
            asm.emit(Op.STOP)
            # constructor body
            self._current_fn = ctor
            asm.place(ctor_body)
            self._stmt(self._wrapped_body(ctor))
            if ctor.returns is not None:
                asm.push(0)
                asm.push(frame.ret_offset)
                asm.emit(Op.MSTORE)
            asm.emit(Op.JUMP)
        else:
            asm.emit(Op.STOP)

        # bodies of all other functions (reachable from the constructor)
        for fn in self.contract.functions:
            if not fn.is_constructor:
                self._compile_body(fn)

        return asm.assemble()

    def _selector(self, fn: ast.FunctionDef) -> int:
        return make_function_abi(
            fn.name, [p.param_type for p in fn.params], fn.returns,
            fn.payable, fn.mutability).selector

    def _compile_entry(self, fn: ast.FunctionDef, entry_label: int) -> None:
        asm = self.asm
        asm.set_line(fn.line)
        entry_pc = asm.place(entry_label)
        self._function_entries.setdefault(fn.name, entry_pc)
        asm.emit(Op.POP)  # drop the dispatcher's selector copy

        if not fn.payable:
            ok = asm.new_label()
            asm.emit(Op.CALLVALUE)
            asm.emit(Op.ISZERO)
            pc = asm.jumpi_to(ok)
            self._note_branch(pc, "payable", fn.line, fn.name)
            self._emit_revert()
            asm.place(ok)

        frame = self.frames[fn.name]
        for index, param in enumerate(fn.params):
            asm.push(32 * (index + 1))
            asm.emit(Op.CALLDATALOAD)
            asm.push(frame.offset_of(param.name))
            asm.emit(Op.MSTORE)

        exit_label = asm.new_label()
        asm.push_label(exit_label)
        asm.jump_to(self._body_labels[fn.name])
        asm.place(exit_label)
        if fn.returns is not None:
            asm.push(frame.ret_offset)
            asm.emit(Op.MLOAD)
            asm.push(0)
            asm.emit(Op.MSTORE)
            asm.push(32)
            asm.push(0)
            asm.emit(Op.RETURN)
        else:
            asm.emit(Op.STOP)

    def _compile_body(self, fn: ast.FunctionDef) -> None:
        asm = self.asm
        asm.set_line(fn.line)
        self._current_fn = fn
        self._nesting = 0
        asm.place(self._body_labels[fn.name])
        self._stmt(self._wrapped_body(fn))
        if fn.returns is not None:
            asm.push(0)
            asm.push(self.frames[fn.name].ret_offset)
            asm.emit(Op.MSTORE)
        asm.emit(Op.JUMP)  # pops the return address
        self._current_fn = None

    # -- helpers ---------------------------------------------------------------------------

    def _emit_revert(self) -> None:
        self.asm.push(0)
        self.asm.push(0)
        self.asm.emit(Op.REVERT)

    def _note_branch(self, pc: int, kind: str, line: int, function: str) -> None:
        if self._record_branches:
            self._branch_info[pc] = BranchInfo(
                pc=pc, kind=kind, line=line, nesting=self._nesting,
                function=function)

    # -- statements ---------------------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        asm = self.asm
        asm.set_line(stmt.line)

        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._stmt(inner)
            return

        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init)
            else:
                asm.push(0)
            asm.push(self._local_offset(stmt.name, stmt.line))
            asm.emit(Op.MSTORE)
            return

        if isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
            return

        if isinstance(stmt, ast.If):
            self._compile_if(stmt)
            return

        if isinstance(stmt, ast.While):
            self._compile_while(stmt)
            return

        if isinstance(stmt, ast.For):
            self._compile_for(stmt)
            return

        if isinstance(stmt, ast.Require):
            ok = asm.new_label()
            self._expr(stmt.cond)
            pc = asm.jumpi_to(ok)
            self._note_branch(pc, "require", stmt.line, self._fn_name())
            self._emit_revert()
            asm.place(ok)
            return

        if isinstance(stmt, ast.AssertStmt):
            ok = asm.new_label()
            self._expr(stmt.cond)
            pc = asm.jumpi_to(ok)
            self._note_branch(pc, "assert", stmt.line, self._fn_name())
            asm.emit(Op.INVALID)
            asm.place(ok)
            return

        if isinstance(stmt, ast.RevertStmt):
            self._emit_revert()
            return

        if isinstance(stmt, ast.Return):
            fn = self._current_fn
            if stmt.value is not None:
                if fn is None or fn.returns is None:
                    raise CompileError("return value in void function",
                                       stmt.line)
                self._expr(stmt.value)
                asm.push(self.frames[fn.name].ret_offset)
                asm.emit(Op.MSTORE)
            asm.emit(Op.JUMP)
            return

        if isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
            asm.emit(Op.POP)
            return

        if isinstance(stmt, ast.Transfer):
            self._compile_transfer(stmt)
            return

        if isinstance(stmt, ast.SelfDestructStmt):
            self._expr(stmt.beneficiary)
            asm.emit(Op.SELFDESTRUCT)
            return

        if isinstance(stmt, ast.Emit):
            self._compile_emit(stmt)
            return

        if isinstance(stmt, ast.Placeholder):
            raise CompileError("`_;` outside a modifier", stmt.line)

        raise CompileError(f"cannot compile statement {type(stmt).__name__}",
                           stmt.line)

    def _fn_name(self) -> str:
        return self._current_fn.name if self._current_fn else ""

    def _compile_if(self, stmt: ast.If) -> None:
        asm = self.asm
        then_label = asm.new_label()
        end_label = asm.new_label()
        self._expr(stmt.cond)
        pc = asm.jumpi_to(then_label)
        self._note_branch(pc, "if", stmt.line, self._fn_name())
        self._nesting += 1
        if stmt.otherwise is not None:
            self._stmt(stmt.otherwise)
        asm.jump_to(end_label)
        asm.place(then_label)
        self._stmt(stmt.then)
        asm.place(end_label)
        self._nesting -= 1

    def _compile_while(self, stmt: ast.While) -> None:
        asm = self.asm
        start = asm.new_label()
        end = asm.new_label()
        asm.place(start)
        self._expr(stmt.cond)
        asm.emit(Op.ISZERO)
        pc = asm.jumpi_to(end)
        self._note_branch(pc, "while", stmt.line, self._fn_name())
        self._nesting += 1
        self._stmt(stmt.body)
        self._nesting -= 1
        asm.jump_to(start)
        asm.place(end)

    def _compile_for(self, stmt: ast.For) -> None:
        asm = self.asm
        start = asm.new_label()
        end = asm.new_label()
        if stmt.init is not None:
            self._stmt(stmt.init)
        asm.place(start)
        if stmt.cond is not None:
            self._expr(stmt.cond)
        else:
            asm.push(1)
        asm.emit(Op.ISZERO)
        pc = asm.jumpi_to(end)
        self._note_branch(pc, "for", stmt.line, self._fn_name())
        self._nesting += 1
        self._stmt(stmt.body)
        if stmt.update is not None:
            self._stmt(stmt.update)
        self._nesting -= 1
        asm.jump_to(start)
        asm.place(end)

    def _compile_assign(self, stmt: ast.Assign) -> None:
        asm = self.asm
        target = stmt.target

        if isinstance(target, ast.Ident):
            name = target.name
            if self._in_frame(name):
                offset = self._local_offset(name, stmt.line)
                if stmt.op == "=":
                    self._expr(stmt.value)
                else:
                    asm.push(offset)
                    asm.emit(Op.MLOAD)
                    self._expr(stmt.value)
                    self._apply_compound(stmt.op)
                asm.push(offset)
                asm.emit(Op.MSTORE)
                return
            if self.layout.is_state_var(name):
                slot = self.layout.slot_of(name)
                if stmt.op == "=":
                    self._expr(stmt.value)
                else:
                    asm.push(slot)
                    asm.emit(Op.SLOAD)
                    self._expr(stmt.value)
                    self._apply_compound(stmt.op)
                asm.push(slot)
                asm.emit(Op.SSTORE)
                return
            raise CompileError(f"undeclared variable {name!r}", stmt.line)

        if isinstance(target, ast.Index):
            if stmt.op == "=":
                self._expr(stmt.value)
                self._mapping_slot(target)
                asm.emit(Op.SSTORE)
            else:
                self._mapping_slot(target)
                asm.emit(Op.DUP1)
                asm.emit(Op.SLOAD)
                self._expr(stmt.value)
                self._apply_compound(stmt.op)
                asm.emit(Op.SWAP1)
                asm.emit(Op.SSTORE)
            return

        raise CompileError("invalid assignment target", stmt.line)

    def _apply_compound(self, op: str) -> None:
        """Stack: [current, rhs] → [current <op> rhs]."""
        asm = self.asm
        if op == "+=":
            asm.emit(Op.ADD)
        elif op == "-=":
            asm.emit(Op.SWAP1)
            asm.emit(Op.SUB)
        elif op == "*=":
            asm.emit(Op.MUL)
        elif op == "/=":
            asm.emit(Op.SWAP1)
            asm.emit(Op.DIV)
        else:
            raise CompileError(f"unsupported compound op {op!r}")

    def _compile_transfer(self, stmt: ast.Transfer) -> None:
        asm = self.asm
        self._emit_call_prefix()
        self._expr(stmt.amount)
        self._expr(stmt.target)
        asm.push(TRANSFER_GAS)
        asm.emit(Op.CALL)
        ok = asm.new_label()
        pc = asm.jumpi_to(ok)
        self._note_branch(pc, "transfer", stmt.line, self._fn_name())
        self._emit_revert()
        asm.place(ok)

    def _emit_call_prefix(self) -> None:
        """Push ret_size, ret_offset, args_size, args_offset (all zero)."""
        for _ in range(4):
            self.asm.push(0)

    def _compile_emit(self, stmt: ast.Emit) -> None:
        asm = self.asm
        for index, arg in enumerate(stmt.args):
            self._expr(arg)
            asm.push(self.scratch + 32 * index)
            asm.emit(Op.MSTORE)
        asm.push(keccak(stmt.name.encode()) % (1 << 256))
        asm.push(32 * len(stmt.args))
        asm.push(self.scratch)
        asm.emit(Op.LOG1)

    # -- expressions -------------------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        asm = self.asm
        if expr.line:
            asm.set_line(expr.line)

        if isinstance(expr, ast.IntLit):
            asm.push(expr.value % (1 << 256))
            return

        if isinstance(expr, ast.BoolLit):
            asm.push(1 if expr.value else 0)
            return

        if isinstance(expr, ast.StringLit):
            asm.push(keccak(expr.value.encode()) % (1 << 256))
            return

        if isinstance(expr, ast.Ident):
            name = expr.name
            if self._in_frame(name):
                asm.push(self._local_offset(name, expr.line))
                asm.emit(Op.MLOAD)
                return
            if self.layout.is_state_var(name):
                if self.layout.types[name].is_mapping:
                    raise CompileError(
                        f"mapping {name!r} used without an index", expr.line)
                asm.push(self.layout.slot_of(name))
                asm.emit(Op.SLOAD)
                return
            raise CompileError(f"undeclared identifier {name!r}", expr.line)

        if isinstance(expr, ast.Index):
            self._mapping_slot(expr)
            asm.emit(Op.SLOAD)
            return

        if isinstance(expr, ast.Binary):
            self._compile_binary(expr)
            return

        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                self._expr(expr.operand)
                asm.emit(Op.ISZERO)
                return
            if expr.op == "-":
                self._expr(expr.operand)
                asm.push(0)
                asm.emit(Op.SUB)  # 0 - operand
                return
            raise CompileError(f"unsupported unary {expr.op!r}", expr.line)

        if isinstance(expr, ast.EnvRead):
            self._compile_env_read(expr)
            return

        if isinstance(expr, ast.BalanceOf):
            self._expr(expr.target)
            asm.emit(Op.BALANCE)
            return

        if isinstance(expr, ast.Keccak):
            for index, arg in enumerate(expr.args):
                self._expr(arg)
                asm.push(self.scratch + 32 * index)
                asm.emit(Op.MSTORE)
            asm.push(32 * len(expr.args))
            asm.push(self.scratch)
            asm.emit(Op.SHA3)
            return

        if isinstance(expr, ast.InternalCall):
            self._compile_internal_call(expr)
            return

        if isinstance(expr, ast.Send):
            self._emit_call_prefix()
            self._expr(expr.amount)
            self._expr(expr.target)
            asm.push(TRANSFER_GAS)
            asm.emit(Op.CALL)
            return

        if isinstance(expr, ast.CallValue):
            self._emit_call_prefix()
            self._expr(expr.amount)
            self._expr(expr.target)
            asm.push(CALL_VALUE_GAS)
            asm.emit(Op.CALL)
            return

        if isinstance(expr, ast.Delegatecall):
            self._expr(expr.data)
            asm.push(self.scratch)
            asm.emit(Op.MSTORE)
            asm.push(0)               # ret_size
            asm.push(0)               # ret_offset
            asm.push(32)              # args_size
            asm.push(self.scratch)    # args_offset
            self._expr(expr.target)
            asm.emit(Op.GAS)
            asm.emit(Op.DELEGATECALL)
            return

        raise CompileError(f"cannot compile expression {type(expr).__name__}",
                           expr.line)

    def _compile_env_read(self, expr: ast.EnvRead) -> None:
        asm = self.asm
        what = expr.what
        simple = {
            "msg.sender": Op.CALLER,
            "msg.value": Op.CALLVALUE,
            "tx.origin": Op.ORIGIN,
            "block.timestamp": Op.TIMESTAMP,
            "block.number": Op.NUMBER,
            "block.coinbase": Op.COINBASE,
            "block.difficulty": Op.DIFFICULTY,
            "this": Op.ADDRESS,
        }
        if what in simple:
            asm.emit(simple[what])
            return
        if what == "this.balance":
            asm.emit(Op.ADDRESS)
            asm.emit(Op.BALANCE)
            return
        raise CompileError(f"unknown environment read {what!r}", expr.line)

    def _compile_binary(self, expr: ast.Binary) -> None:
        asm = self.asm
        op = expr.op
        self._expr(expr.left)
        self._expr(expr.right)
        # Stack is [left, right] with right on top; EVM binary ops use the
        # top as the first operand, so non-commutative ops need a SWAP1.
        if op == "+":
            asm.emit(Op.ADD)
        elif op == "-":
            asm.emit(Op.SWAP1)
            asm.emit(Op.SUB)
        elif op == "*":
            asm.emit(Op.MUL)
        elif op == "/":
            asm.emit(Op.SWAP1)
            asm.emit(Op.DIV)
        elif op == "%":
            asm.emit(Op.SWAP1)
            asm.emit(Op.MOD)
        elif op == "<":
            asm.emit(Op.SWAP1)
            asm.emit(Op.LT)
        elif op == ">":
            asm.emit(Op.SWAP1)
            asm.emit(Op.GT)
        elif op == "<=":
            asm.emit(Op.SWAP1)
            asm.emit(Op.GT)
            asm.emit(Op.ISZERO)
        elif op == ">=":
            asm.emit(Op.SWAP1)
            asm.emit(Op.LT)
            asm.emit(Op.ISZERO)
        elif op == "==":
            asm.emit(Op.EQ)
        elif op == "!=":
            asm.emit(Op.EQ)
            asm.emit(Op.ISZERO)
        elif op in ("&&", "&"):
            asm.emit(Op.AND)
        elif op in ("||", "|"):
            asm.emit(Op.OR)
        elif op == "^":
            asm.emit(Op.XOR)
        else:
            raise CompileError(f"unsupported operator {op!r}", expr.line)

    def _compile_internal_call(self, expr: ast.InternalCall) -> None:
        asm = self.asm
        callee = None
        for fn in self.contract.functions:
            if fn.name == expr.name and not fn.is_constructor:
                callee = fn
                break
        if callee is None:
            raise CompileError(f"unknown function {expr.name!r}", expr.line)
        if len(expr.args) != len(callee.params):
            raise CompileError(
                f"{expr.name} takes {len(callee.params)} args, "
                f"got {len(expr.args)}", expr.line)
        frame = self.frames[callee.name]
        for param, arg in zip(callee.params, expr.args):
            self._expr(arg)
            asm.push(frame.offset_of(param.name))
            asm.emit(Op.MSTORE)
        ret = asm.new_label()
        asm.push_label(ret)
        asm.jump_to(self._body_labels[callee.name])
        asm.place(ret)
        asm.push(frame.ret_offset)
        asm.emit(Op.MLOAD)

    # -- lvalue helpers -----------------------------------------------------------------------------

    def _in_frame(self, name: str) -> bool:
        fn = self._current_fn
        return fn is not None and self.frames[fn.name].has_local(name)

    def _local_offset(self, name: str, line: int) -> int:
        fn = self._current_fn
        if fn is None or not self.frames[fn.name].has_local(name):
            raise CompileError(f"no local {name!r} in this context", line)
        return self.frames[fn.name].offset_of(name)

    def _mapping_slot(self, expr: ast.Index) -> None:
        """Push keccak(key ‖ slot) for ``base[key]``."""
        asm = self.asm
        if not self.layout.is_state_var(expr.base):
            raise CompileError(f"unknown mapping {expr.base!r}", expr.line)
        if not self.layout.types[expr.base].is_mapping:
            raise CompileError(f"{expr.base!r} is not a mapping", expr.line)
        self._expr(expr.key)
        asm.push(0x00)
        asm.emit(Op.MSTORE)
        asm.push(self.layout.slot_of(expr.base))
        asm.push(0x20)
        asm.emit(Op.MSTORE)
        asm.push(0x40)
        asm.push(0x00)
        asm.emit(Op.SHA3)


def _splice_placeholder(node: ast.Stmt, replacement: ast.Stmt) -> bool:
    """Replace the first ``_;`` under ``node`` with ``replacement``."""
    if isinstance(node, ast.Block):
        for index, stmt in enumerate(node.statements):
            if isinstance(stmt, ast.Placeholder):
                node.statements[index] = replacement
                return True
            if _splice_placeholder(stmt, replacement):
                return True
        return False
    if isinstance(node, ast.If):
        if _splice_placeholder(node.then, replacement):
            return True
        if node.otherwise is not None:
            return _splice_placeholder(node.otherwise, replacement)
        return False
    if isinstance(node, (ast.While, ast.For)):
        return _splice_placeholder(node.body, replacement)
    return False


def compile_contract(contract: ast.ContractDef,
                     source: str = "") -> CompiledContract:
    """Compile one contract AST."""
    return CodeGenerator(contract, source).compile()


def compile_source(source: str, contract_name: str | None = None
                   ) -> CompiledContract:
    """Parse and compile MiniSol ``source``.

    When the source holds several contracts, ``contract_name`` picks one
    (default: the first).
    """
    unit = parse_source(source)
    if contract_name is None:
        contract = unit.contracts[0]
    else:
        contract = unit.contract(contract_name)
    return compile_contract(contract, source)


def encode_constructor_args(values) -> bytes:
    """Encode constructor arguments (plain argument words, no selector)."""
    return encode_words(values)
