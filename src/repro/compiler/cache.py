"""Process-local LRU cache over :func:`repro.compiler.compile_source`.

``compile_cached`` is the entry point the orchestrator's execution
backends and the CLI share.  Entries are keyed on
``(sha256(source), contract)`` — content, not identity — so a contract
fuzzed across many presets × trials compiles once per process instead of
once per job.  The persistent pool backend relies on this: each long-lived
worker keeps its cache warm across the jobs it pulls, and reports per-job
hit/miss deltas back to the scheduler for the matrix-level stats.

Compiled artifacts are treated as immutable by every consumer (the fuzzer,
the analyses, the oracles), so handing the same :class:`CompiledContract`
object to consecutive campaigns is safe; the orchestrator's determinism
guard verifies this empirically by comparing cached-backend output
byte-for-byte against fresh-compile backends.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.compiler.codegen import compile_source
from repro.telemetry import metrics as _metrics
from repro.telemetry.spans import span as _span

#: telemetry mirrors of the cache counters plus a wall-time span over the
#: miss-path compile — no-op singletons unless telemetry is enabled
_T_HITS = _metrics.counter("compile.cache.hits")
_T_MISSES = _metrics.counter("compile.cache.misses")
_S_COMPILE = _span("compile.compile")

#: default entry budget; artifacts are small (KBs), so this is generous
DEFAULT_MAXSIZE = 64


class CompileCache:
    """LRU cache of compiled contracts keyed on source digest + name."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        self.maxsize = max(1, int(maxsize))
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(source: str, contract_name: str | None = None) -> tuple:
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return (digest, contract_name)

    def get(self, source: str, contract_name: str | None = None):
        """The compiled artifact for ``source``; compiles on a miss."""
        key = self.key(source, contract_name)
        try:
            artifact = self._entries[key]
        except KeyError:
            self.misses += 1
            _T_MISSES.inc()
            # compile outside the cache mutation: a compile error must not
            # leave a half-inserted entry behind
            with _S_COMPILE:
                artifact = compile_source(source, contract_name)
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return artifact
        self.hits += 1
        _T_HITS.inc()
        self._entries.move_to_end(key)
        return artifact

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries)}

    def __len__(self) -> int:
        return len(self._entries)


#: the per-process cache behind :func:`compile_cached`
_CACHE = CompileCache()


def compile_cached(source: str, contract_name: str | None = None):
    """Compile MiniSol ``source`` through the process-local cache.

    Same signature and result as :func:`repro.compiler.compile_source`;
    repeated calls with identical source return the same artifact object.
    """
    return _CACHE.get(source, contract_name)


def compile_cache_stats() -> dict:
    """Cumulative ``{"hits", "misses", "size"}`` of the process cache."""
    return _CACHE.stats()


def clear_compile_cache() -> None:
    """Empty the process cache and zero its counters (tests, recycling)."""
    _CACHE.clear()
