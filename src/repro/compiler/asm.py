"""A tiny EVM assembler with labels, fixups, and a pc→line source map."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.opcodes import Op


@dataclass
class _Fixup:
    """A PUSH2 whose immediate is patched with a label address."""

    offset: int  # byte offset of the 2-byte immediate
    label: int


class Assembler:
    """Accumulates bytecode; label addresses are patched at assembly time."""

    def __init__(self) -> None:
        self.code = bytearray()
        self._labels: dict[int, int] = {}
        self._fixups: list[_Fixup] = []
        self._next_label = 0
        #: pc → source line, recorded for every instruction start
        self.srcmap: dict[int, int] = {}
        self._current_line = 0

    # -- source mapping -------------------------------------------------------

    def set_line(self, line: int) -> None:
        """Attribute subsequently emitted instructions to ``line``."""
        if line:
            self._current_line = line

    @property
    def pc(self) -> int:
        """Current bytecode offset."""
        return len(self.code)

    # -- emission ----------------------------------------------------------------

    def emit(self, op: int) -> int:
        """Emit a bare opcode; returns its pc."""
        pc = len(self.code)
        self.srcmap[pc] = self._current_line
        self.code.append(op)
        return pc

    def push(self, value: int) -> int:
        """Emit the narrowest PUSH for ``value``; returns its pc."""
        if value < 0:
            value %= 1 << 256
        width = max(1, (value.bit_length() + 7) // 8)
        if width > 32:
            raise ValueError(f"push value too wide: {value:#x}")
        pc = len(self.code)
        self.srcmap[pc] = self._current_line
        self.code.append(0x60 + width - 1)
        self.code.extend(value.to_bytes(width, "big"))
        return pc

    # -- labels --------------------------------------------------------------------

    def new_label(self) -> int:
        """Allocate a fresh label id."""
        label = self._next_label
        self._next_label += 1
        return label

    def place(self, label: int) -> int:
        """Bind ``label`` here and emit its JUMPDEST; returns the dest pc."""
        pc = self.emit(Op.JUMPDEST)
        self._labels[label] = pc
        return pc

    def push_label(self, label: int) -> None:
        """Emit ``PUSH2 <label>`` to be patched at assembly."""
        self.srcmap[len(self.code)] = self._current_line
        self.code.append(0x61)  # PUSH2
        self._fixups.append(_Fixup(offset=len(self.code), label=label))
        self.code.extend(b"\x00\x00")

    def jump_to(self, label: int) -> None:
        """PUSH2 label; JUMP."""
        self.push_label(label)
        self.emit(Op.JUMP)

    def jumpi_to(self, label: int) -> int:
        """PUSH2 label; JUMPI — returns the pc of the JUMPI instruction."""
        self.push_label(label)
        return self.emit(Op.JUMPI)

    # -- finalize --------------------------------------------------------------------

    def assemble(self) -> bytes:
        """Patch all fixups and return the final bytecode."""
        for fixup in self._fixups:
            try:
                target = self._labels[fixup.label]
            except KeyError:
                raise ValueError(f"label {fixup.label} never placed") from None
            if target > 0xFFFF:
                raise ValueError("code too large for PUSH2 label addressing")
            self.code[fixup.offset:fixup.offset + 2] = target.to_bytes(2, "big")
        return bytes(self.code)
