"""Application binary interface: selectors, call encoding, ABI descriptions.

The wire format is deliberately word-oriented: calldata word 0 carries the
4-byte function selector (keccak of the canonical signature, like Solidity),
and each argument occupies one subsequent 32-byte word.  This keeps
CALLDATALOAD-based decoding trivial while preserving the selector-dispatch
shape that the coverage and sequence analyses expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.machine import keccak
from repro.lang.types import Type


@dataclass(frozen=True)
class FunctionABI:
    """ABI description of one externally callable function."""

    name: str
    inputs: tuple = ()  # tuple[Type, ...]
    output: Type | None = None
    payable: bool = False
    mutability: str = ""  # '', 'view', 'pure'
    selector: int = 0

    @property
    def signature(self) -> str:
        args = ",".join(str(t) for t in self.inputs)
        return f"{self.name}({args})"

    @property
    def mutates_state(self) -> bool:
        return self.mutability not in ("view", "pure")


@dataclass
class ContractABI:
    """ABI of a whole contract."""

    name: str
    functions: list = field(default_factory=list)
    constructor_inputs: tuple = ()

    def function(self, name: str) -> FunctionABI:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no ABI function {name!r} in {self.name}")

    def by_selector(self, selector: int) -> FunctionABI | None:
        for fn in self.functions:
            if fn.selector == selector:
                return fn
        return None


def compute_selector(name: str, inputs) -> int:
    """First four bytes of keccak(signature), as an integer."""
    signature = f"{name}({','.join(str(t) for t in inputs)})"
    return keccak(signature.encode()) >> (256 - 32)


def make_function_abi(name: str, inputs, output: Type | None,
                      payable: bool, mutability: str) -> FunctionABI:
    """Build a :class:`FunctionABI` with its selector filled in."""
    inputs = tuple(inputs)
    return FunctionABI(
        name=name, inputs=inputs, output=output, payable=payable,
        mutability=mutability, selector=compute_selector(name, inputs))


def encode_words(values) -> bytes:
    """Pack integers into consecutive 32-byte big-endian words."""
    out = bytearray()
    for value in values:
        out.extend((value % (1 << 256)).to_bytes(32, "big"))
    return bytes(out)


def encode_call(fn: FunctionABI, args) -> bytes:
    """Encode a call to ``fn``: selector word followed by argument words."""
    args = list(args)
    if len(args) != len(fn.inputs):
        raise ValueError(
            f"{fn.signature} takes {len(fn.inputs)} args, got {len(args)}")
    return encode_words([fn.selector] + args)


def decode_words(data: bytes) -> list[int]:
    """Split calldata/returndata back into integer words."""
    out = []
    for offset in range(0, len(data), 32):
        word = data[offset:offset + 32]
        out.append(int.from_bytes(word + b"\x00" * (32 - len(word)), "big"))
    return out
