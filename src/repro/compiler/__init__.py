"""The MiniSol → EVM-bytecode compiler.

``compile_source`` is the one-call entry point used throughout the project:
it parses MiniSol source and returns :class:`CompiledContract` artifacts
carrying init/runtime bytecode, the ABI, the storage layout, the typed AST,
and per-JUMPI branch metadata (kind, source line, static nesting depth) that
the fuzzer's energy scheduler and the analyses consume.
"""

from repro.compiler.abi import ContractABI, FunctionABI, encode_call, encode_words
from repro.compiler.artifacts import BranchInfo, CompiledContract
from repro.compiler.cache import (
    CompileCache,
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
)
from repro.compiler.codegen import CodeGenerator, compile_contract, compile_source
from repro.compiler.layout import MemoryFrame, StorageLayout

__all__ = [
    "ContractABI",
    "FunctionABI",
    "encode_call",
    "encode_words",
    "BranchInfo",
    "CompiledContract",
    "CompileCache",
    "CodeGenerator",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_cached",
    "compile_contract",
    "compile_source",
    "MemoryFrame",
    "StorageLayout",
]
