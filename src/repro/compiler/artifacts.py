"""Compilation artifacts: everything downstream consumers need."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.abi import ContractABI
from repro.compiler.layout import StorageLayout
from repro.evm import opcodes
from repro.lang import ast_nodes as ast


@dataclass(frozen=True)
class BranchInfo:
    """Compiler-known metadata for one JUMPI in the runtime code."""

    pc: int
    kind: str          # 'if' | 'while' | 'for' | 'require' | 'assert' |
                       # 'payable' | 'dispatch' | 'transfer' | 'calldata'
    line: int
    nesting: int       # static nesting depth of conditional constructs
    function: str      # enclosing function name ('' for dispatcher)


@dataclass
class CompiledContract:
    """The full output of compiling one contract."""

    name: str
    init_code: bytes
    runtime_code: bytes
    abi: ContractABI
    layout: StorageLayout
    contract_ast: ast.ContractDef
    srcmap: dict = field(default_factory=dict)        # runtime pc -> line
    branch_info: dict = field(default_factory=dict)   # jumpi pc -> BranchInfo
    function_entries: dict = field(default_factory=dict)  # fn name -> body pc
    source: str = ""

    @property
    def instruction_count(self) -> int:
        """Number of instructions in the runtime code (D1 size criterion)."""
        count = 0
        i = 0
        code = self.runtime_code
        while i < len(code):
            op = code[i]
            if opcodes.is_push(op):
                i += opcodes.push_width(op)
            i += 1
            count += 1
        return count

    @property
    def total_branches(self) -> int:
        """Total JUMPI direction count (the branch-coverage denominator)."""
        return 2 * len(self.branch_info)

    def branch_line(self, pc: int) -> int:
        """Source line of the JUMPI at ``pc`` (0 if unknown)."""
        info = self.branch_info.get(pc)
        return info.line if info else self.srcmap.get(pc, 0)
