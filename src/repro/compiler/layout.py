"""Storage-slot and memory-frame layout.

Storage: scalar state variables take slots 0..n-1 in declaration order;
mapping variables also own a slot, and element ``m[k]`` lives at
``keccak(k ‖ slot)`` — the Solidity scheme, which guarantees no aliasing
between scalars and mapping elements.

Memory: bytes 0x00–0x3F are hash scratch.  Every function gets a static
frame (parameters, locals, one return slot) at a unique offset — MiniSol
functions are therefore non-reentrant internally (no recursion), which the
compiler rejects at call-graph level elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast

#: first byte after the reserved hash scratch area
FRAME_BASE = 0x40
WORD_SIZE = 32


@dataclass
class StorageLayout:
    """Slot assignment for one contract's state variables."""

    slots: dict = field(default_factory=dict)   # name -> slot
    types: dict = field(default_factory=dict)   # name -> Type

    @classmethod
    def for_contract(cls, contract: ast.ContractDef) -> "StorageLayout":
        layout = cls()
        for index, var in enumerate(contract.state_vars):
            layout.slots[var.name] = index
            layout.types[var.name] = var.var_type
        return layout

    def slot_of(self, name: str) -> int:
        return self.slots[name]

    def is_state_var(self, name: str) -> bool:
        return name in self.slots

    def __len__(self) -> int:
        return len(self.slots)


@dataclass
class MemoryFrame:
    """Static memory frame of one function: param/local offsets + return slot."""

    function: str
    offsets: dict = field(default_factory=dict)  # name -> byte offset
    ret_offset: int = 0
    start: int = 0
    size: int = 0

    def offset_of(self, name: str) -> int:
        return self.offsets[name]

    def has_local(self, name: str) -> bool:
        return name in self.offsets


def collect_locals(body: ast.Stmt) -> list[str]:
    """All local variable names declared anywhere inside ``body`` (in order)."""
    names: list[str] = []

    def walk(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                walk(s)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.name not in names:
                names.append(stmt.name)
        elif isinstance(stmt, ast.If):
            walk(stmt.then)
            if stmt.otherwise is not None:
                walk(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            walk(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                walk(stmt.init)
            if stmt.update is not None:
                walk(stmt.update)
            walk(stmt.body)

    walk(body)
    return names


def build_frames(contract: ast.ContractDef) -> tuple[dict, int]:
    """Assign a memory frame to every function.

    Returns ``(frames, scratch_offset)`` where ``scratch_offset`` is the first
    free byte after all frames — used as keccak/call-argument scratch space.
    """
    frames: dict[str, MemoryFrame] = {}
    cursor = FRAME_BASE
    for fn in contract.functions:
        frame = MemoryFrame(function=fn.name, start=cursor)
        for param in fn.params:
            frame.offsets[param.name] = cursor
            cursor += WORD_SIZE
        for local in collect_locals(fn.body):
            if local in frame.offsets:
                continue
            frame.offsets[local] = cursor
            cursor += WORD_SIZE
        frame.ret_offset = cursor
        cursor += WORD_SIZE
        frame.size = cursor - frame.start
        frames[fn.name] = frame
    return frames, cursor
