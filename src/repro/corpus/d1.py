"""D1: the coverage-benchmark corpus (stands in for ConFuzzius' 21,147
real-world contracts).

Contracts are composed from feature blocks — state machines, RAW
accumulators, mapping ledgers, nested conditionals, loops, owner-guarded
admin functions — with an optional vulnerable fragment (real-world contracts
carry bugs too; Fig. 7 counts detected vulnerabilities on D1 samples).
``small`` / ``large`` follows the paper's split at 3,632 compiled
instructions; the generator verifies each contract's actual size.
"""

from __future__ import annotations

import random

from repro.corpus.builder import GeneratedContract
from repro.corpus.templates import (
    BENIGN_TEMPLATES,
    BUG_TEMPLATES,
    D1_BLOCKS,
    Fragment,
    assemble_contract,
    pick_gate,
)
from repro.oracles.base import BugClass

#: the paper's small/large split (compiled instruction count)
D1_SIZE_THRESHOLD = 3632

#: bug classes sprinkled into D1 (coverage corpus skews to common classes)
_D1_BUG_CLASSES = (
    BugClass.IO, BugClass.UE, BugClass.BD, BugClass.RE, BugClass.US,
    BugClass.SE,
)


def _build_contract(name: str, rng: random.Random, n_blocks: int,
                    bug_probability: float) -> GeneratedContract:
    fragments = []
    expected: set = set()
    lookalikes: set = set()

    for block_index in range(n_blocks):
        block = rng.choice(D1_BLOCKS)
        fragments.append(block(rng, block_index))

    idx = n_blocks
    if rng.random() < bug_probability:
        bug_class = rng.choice(_D1_BUG_CLASSES)
        template = rng.choice(BUG_TEMPLATES[bug_class])
        gate = pick_gate(rng)
        frag = template(rng, idx, gate)
        fragments.append(frag)
        expected |= frag.bugs
        lookalikes |= frag.lookalikes
        idx += 1

    if rng.random() < 0.4:
        benign = rng.choice(BENIGN_TEMPLATES)
        frag = benign(rng, idx)
        fragments.append(frag)
        lookalikes |= frag.lookalikes

    source = assemble_contract(name, fragments)
    return GeneratedContract(name=name, source=source,
                             expected_bugs=expected,
                             benign_lookalikes=lookalikes)


def generate_d1(n_small: int = 24, n_large: int = 8,
                seed: int = 2024) -> list:
    """Generate the D1 corpus: ``n_small`` small + ``n_large`` large
    contracts, deterministically from ``seed``."""
    rng = random.Random(seed)
    corpus: list[GeneratedContract] = []

    for i in range(n_small):
        contract = _build_contract(f"Small{i}", rng,
                                   n_blocks=rng.randint(2, 4),
                                   bug_probability=0.45)
        contract.size_class = "small"
        corpus.append(contract)

    for i in range(n_large):
        contract = _build_contract(f"Large{i}", rng,
                                   n_blocks=rng.randint(40, 56),
                                   bug_probability=0.6)
        contract.size_class = "large"
        corpus.append(contract)

    return corpus


def classify_by_size(corpus) -> tuple:
    """Split a compiled corpus by the paper's instruction threshold.

    Returns ``(small, large)`` lists based on *actual* compiled size, which
    tests assert agrees with the generator's intent.
    """
    small, large = [], []
    for contract in corpus:
        if contract.instruction_count <= D1_SIZE_THRESHOLD:
            small.append(contract)
        else:
            large.append(contract)
    return small, large
