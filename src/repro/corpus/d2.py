"""D2: the annotated vulnerable-contract benchmark (155 contracts / 215
annotated vulnerabilities, matching the paper's per-class totals within its
"217 annotated vulnerabilities, some contracts have multiple bugs").

Allocation: the paper's per-class totals are taken from Table III
(TP + FN of MuFuzz's column).  Sixty contracts carry two bugs of *different*
classes; ether-freezing contracts only pair with bug templates that emit no
ether-out instruction (otherwise EF would be structurally impossible).
Gates are drawn from the weighted realistic mix (``templates.GATE_WEIGHTS``)
with a fixed seed, so every class appears at several reachability depths.
"""

from __future__ import annotations

import random

from repro.corpus.builder import GeneratedContract
from repro.corpus.templates import (
    BUG_TEMPLATES,
    assemble_contract,
    pick_gate,
    block_dependency_dry,
    ether_freeze,
    integer_overflow,
    strict_equality_dry,
)
from repro.oracles.base import BugClass

#: per-class annotated-bug totals (Table III, MuFuzz TP+FN column)
D2_CLASS_TOTALS = {
    BugClass.IO: 65,
    BugClass.UE: 31,
    BugClass.US: 23,
    BugClass.EF: 22,
    BugClass.BD: 20,
    BugClass.SE: 19,
    BugClass.UD: 17,
    BugClass.RE: 16,
    BugClass.TO: 2,
}

#: number of contracts in the dataset
D2_CONTRACT_COUNT = 155

#: templates safe to pair with EF (no ether-out instruction)
_EF_COMPATIBLE = {
    BugClass.IO: integer_overflow,
    BugClass.BD: block_dependency_dry,
    BugClass.SE: strict_equality_dry,
}


def generate_d2(seed: int = 155) -> list:
    """The deterministic D2 corpus."""
    rng = random.Random(seed)

    instances: list[BugClass] = []
    for bug_class, count in D2_CLASS_TOTALS.items():
        instances.extend([bug_class] * count)
    total = len(instances)
    n_pairs = total - D2_CONTRACT_COUNT  # contracts with two bugs

    # -- pairing plan ------------------------------------------------------------
    pool = {bc: D2_CLASS_TOTALS[bc] for bc in D2_CLASS_TOTALS}
    pairs: list[tuple] = []

    # EF must pair with a sink-free class (we give them all partners so the
    # EF contracts exercise two oracles each, like SmartBugs' multi-bug files)
    ef_partners = [BugClass.IO] * 12 + [BugClass.BD] * 5 + [BugClass.SE] * 5
    for partner in ef_partners:
        pairs.append((BugClass.EF, partner))
        pool[BugClass.EF] -= 1
        pool[partner] -= 1

    # remaining pairs: repeatedly join the two most frequent distinct classes
    while len(pairs) < n_pairs:
        ranked = sorted((bc for bc in pool if pool[bc] > 0),
                        key=lambda bc: -pool[bc])
        if len(ranked) < 2:
            break
        first, second = ranked[0], ranked[1]
        pairs.append((first, second))
        pool[first] -= 1
        pool[second] -= 1

    singles: list[BugClass] = []
    for bug_class, remaining in pool.items():
        singles.extend([bug_class] * remaining)
    rng.shuffle(singles)

    # -- render contracts -----------------------------------------------------------
    corpus: list[GeneratedContract] = []

    def next_gate() -> str:
        return pick_gate(rng)

    def render(name: str, bug_classes) -> GeneratedContract:
        fragments = []
        expected: set = set()
        lookalikes: set = set()
        has_ef = BugClass.EF in bug_classes
        for offset, bug_class in enumerate(bug_classes):
            if has_ef and bug_class in _EF_COMPATIBLE:
                template = _EF_COMPATIBLE[bug_class]
            else:
                template = rng.choice(BUG_TEMPLATES[bug_class])
            frag = template(rng, offset, next_gate())
            if has_ef and frag.uses_send:
                # Never emit an ether-out op into an EF contract.
                frag = ether_freeze(rng, offset + 50, "none")
            fragments.append(frag)
            expected |= frag.bugs
            lookalikes |= frag.lookalikes
        source = assemble_contract(name, fragments)
        return GeneratedContract(name=name, source=source,
                                 expected_bugs=expected,
                                 benign_lookalikes=lookalikes)

    index = 0
    for first, second in pairs:
        corpus.append(render(f"Vuln{index}", (first, second)))
        index += 1
    for bug_class in singles:
        corpus.append(render(f"Vuln{index}", (bug_class,)))
        index += 1

    assert len(corpus) == D2_CONTRACT_COUNT, len(corpus)
    return corpus


def class_totals(corpus) -> dict:
    """Annotated bugs per class over a corpus (sanity/reporting helper)."""
    totals: dict = {}
    for contract in corpus:
        for bug_class in contract.expected_bugs:
            totals[bug_class] = totals.get(bug_class, 0) + 1
    return totals
