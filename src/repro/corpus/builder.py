"""Corpus infrastructure: generated-contract records and compilation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.codegen import compile_source
from repro.oracles.base import BugClass


@dataclass
class GeneratedContract:
    """One corpus entry: source, ground truth, and lazy artifact."""

    name: str
    source: str
    #: annotated real bugs (ground truth for TP/FN scoring)
    expected_bugs: set = field(default_factory=set)
    #: benign patterns that imprecise oracles may flag (FP candidates)
    benign_lookalikes: set = field(default_factory=set)
    size_class: str = "small"  # 'small' | 'large'
    _artifact: object = None

    @property
    def artifact(self):
        """Compile on first use (cached)."""
        if self._artifact is None:
            self._artifact = compile_source(self.source, self.name)
        return self._artifact

    @property
    def instruction_count(self) -> int:
        return self.artifact.instruction_count

    def has_bug(self, bug_class: BugClass) -> bool:
        return bug_class in self.expected_bugs


def compile_corpus(contracts) -> list:
    """Force-compile every entry (raises on any front-end failure), returning
    the list for chaining.  Used by tests to assert generator validity."""
    for contract in contracts:
        _ = contract.artifact
    return list(contracts)
