"""Benchmark corpora standing in for the paper's three datasets.

The paper evaluates on 21,147 real Ethereum contracts (D1), 155 annotated
vulnerable contracts (D2), and 500 popular large contracts (D3) — none of
which ship offline.  These generators produce deterministic, seeded MiniSol
corpora with the same *shape*: D1 mixes small/large contracts with deep
state-dependent branching split at the paper's 3,632-instruction threshold;
D2 carries per-class ground-truth bug annotations matching the paper's
per-class totals; D3 yields large realistic application contracts with a
known injected-bug profile for the Table IV case study.
"""

from repro.corpus.builder import GeneratedContract, compile_corpus
from repro.corpus.d1 import generate_d1, D1_SIZE_THRESHOLD
from repro.corpus.d2 import generate_d2, D2_CLASS_TOTALS
from repro.corpus.d3 import generate_d3

__all__ = [
    "GeneratedContract",
    "compile_corpus",
    "generate_d1",
    "D1_SIZE_THRESHOLD",
    "generate_d2",
    "D2_CLASS_TOTALS",
    "generate_d3",
]
