"""D3: the real-world case-study corpus (stands in for Smartian's 500
popular Etherscan contracts with >30,000 transactions each).

These are large, realistic application contracts — token, crowdsale,
auction, multisig wallet, lottery, vault — assembled from many feature
blocks.  A minority carry injected real bugs; several carry *benign
lookalikes* (timestamp vesting, post-update call.value, logged sends) that
imprecise oracles flag, reproducing Table IV's small false-positive tail.
"""

from __future__ import annotations

import random

from repro.corpus.builder import GeneratedContract
from repro.corpus.templates import (
    BUG_TEMPLATES,
    D1_BLOCKS,
    Fragment,
    assemble_contract,
    pick_gate,
    checked_send,
    safe_withdraw,
    vesting_timestamp,
)
from repro.oracles.base import BugClass

#: injected-bug profile per 100 contracts (Table IV's TP column shape:
#: IO-heavy, then BD, then a tail of RE/UE/SE/US)
_D3_BUG_WEIGHTS = (
    (BugClass.IO, 30),
    (BugClass.BD, 14),
    (BugClass.UE, 7),
    (BugClass.RE, 5),
    (BugClass.SE, 2),
    (BugClass.US, 1),
)


def pull_payment_after_update(rng: random.Random, idx: int,
                              gate: str = "none") -> Fragment:
    """call.value *after* the state update — safe, but a reentry-observing
    oracle still sees the callback and flags it (Table IV's RE FPs)."""
    credit = f"credit{idx}"
    fns = [
        (f"    function top{idx}() public payable {{\n"
         f"        {credit}[msg.sender] += msg.value;\n"
         f"    }}\n"),
        (f"    function pull{idx}() public {{\n"
         f"        uint256 due{idx} = {credit}[msg.sender];\n"
         f"        {credit}[msg.sender] = 0;\n"
         f"        if (due{idx} > 0) {{\n"
         f"            msg.sender.call.value(due{idx})();\n"
         f"        }}\n"
         f"    }}\n"),
    ]
    frag = Fragment(state=[f"mapping(address => uint256) {credit};"],
                    functions=fns, uses_send=True)
    frag.lookalikes.add(BugClass.RE)
    # the dropped call.value result is a real (if minor) UE
    frag.bugs.add(BugClass.UE)
    return frag


def logged_send(rng: random.Random, idx: int, gate: str = "none") -> Fragment:
    """send() whose result is recorded in state, not required — commonly
    annotated benign ("handled"), but result never reaches a JUMPI, so
    trace-based UE oracles flag it (Table IV's UE FP)."""
    status = f"sent{idx}"
    fn = (f"    function remit{idx}(uint256 amt{idx}) public {{\n"
          f"        require(amt{idx} <= 1 finney);\n"
          f"        bool ok{idx} = msg.sender.send(amt{idx});\n"
          f"        {status} = ok{idx};\n"
          f"    }}\n")
    frag = Fragment(state=[f"bool {status} = false;"], functions=[fn],
                    uses_send=True)
    frag.lookalikes.add(BugClass.UE)
    return frag


_FP_BAIT = (vesting_timestamp, pull_payment_after_update, logged_send)


def generate_d3(count: int = 100, seed: int = 500) -> list:
    """Generate ``count`` large realistic contracts deterministically."""
    rng = random.Random(seed)

    # expand the weighted bug plan to `count` slots (many contracts clean)
    plan: list = []
    for bug_class, per_hundred in _D3_BUG_WEIGHTS:
        plan.extend([bug_class] * max(1, round(per_hundred * count / 100)))
    plan = plan[:count]
    plan += [None] * (count - len(plan))
    rng.shuffle(plan)

    corpus: list[GeneratedContract] = []
    for i, injected in enumerate(plan):
        fragments = []
        expected: set = set()
        lookalikes: set = set()

        n_blocks = rng.randint(8, 14)
        for block_index in range(n_blocks):
            block = rng.choice(D1_BLOCKS)
            fragments.append(block(rng, block_index))

        idx = n_blocks
        if injected is not None:
            template = rng.choice(BUG_TEMPLATES[injected])
            gate = pick_gate(rng)
            frag = template(rng, idx, gate)
            fragments.append(frag)
            expected |= frag.bugs
            lookalikes |= frag.lookalikes
            idx += 1

        # sparse FP bait: the paper observed only 5 FPs across 100
        # contracts, so lookalikes are a small minority
        if rng.random() < 0.08:
            bait = rng.choice(_FP_BAIT)
            frag = bait(rng, idx)
            fragments.append(frag)
            expected |= frag.bugs
            lookalikes |= frag.lookalikes
            idx += 1

        if rng.random() < 0.5:
            frag = rng.choice((safe_withdraw, checked_send))(rng, idx)
            fragments.append(frag)
            lookalikes |= frag.lookalikes

        source = assemble_contract(f"Popular{i}", fragments)
        corpus.append(GeneratedContract(
            name=f"Popular{i}", source=source, expected_bugs=expected,
            benign_lookalikes=lookalikes, size_class="large"))
    return corpus
