"""Parameterized MiniSol source templates for the benchmark corpora.

Every template is a function ``(rng, idx, gate) -> Fragment`` producing the
state variables and functions that implement one vulnerable (or benign)
pattern.  ``gate`` controls how deeply the buggy code is buried:

* ``none``      — directly reachable,
* ``input``     — behind an equality check on a magic constant,
* ``sequence``  — behind a Crowdsale-style accumulator that must be driven
  over a threshold by *repeated* calls (the paper's motivating shape),
* ``nested``    — behind two or three nested conditionals.

The gates are what separates the fuzzers in Table III: every tool's oracle
could recognize the bug, but only fuzzers that reach the gated code observe
it.  Static analyzers see the pattern regardless of gates but match narrow
shapes (see :mod:`repro.baselines.static`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.oracles.base import BugClass

GATES = ("none", "input", "sequence", "nested")

#: realistic gate mix: most real annotated bugs are directly reachable; a
#: substantial minority hide behind sequence-dependent or nested conditions
GATE_WEIGHTS = (0.5, 0.1, 0.2, 0.2)


def pick_gate(rng: random.Random) -> str:
    """Draw a gate according to the realistic mix."""
    return rng.choices(GATES, weights=GATE_WEIGHTS, k=1)[0]


@dataclass
class Fragment:
    """One template's contribution to a contract."""

    state: list = field(default_factory=list)      # state var declarations
    ctor: list = field(default_factory=list)       # constructor statements
    functions: list = field(default_factory=list)  # full function sources
    bugs: set = field(default_factory=set)         # BugClass ground truth
    lookalikes: set = field(default_factory=set)   # benign FP bait
    uses_send: bool = False                        # has an ether-out op

    def merge(self, other: "Fragment") -> None:
        self.state.extend(other.state)
        self.ctor.extend(other.ctor)
        self.functions.extend(other.functions)
        self.bugs |= other.bugs
        self.lookalikes |= other.lookalikes
        self.uses_send = self.uses_send or other.uses_send


# ---------------------------------------------------------------------------
# gating helpers
# ---------------------------------------------------------------------------


def _magic(rng: random.Random) -> int:
    # At least three bytes wide so the constant appears as a PUSH3+ immediate
    # (what fuzzers' dictionary harvesting picks up, like real magic values).
    return rng.randint(70_000, 99_999_999)


def _gate_wrap(gate: str, idx: int, rng: random.Random, body: str,
               param: str) -> tuple:
    """Wrap ``body`` behind the requested gate.

    Returns ``(state_decls, extra_functions, wrapped_body)``; ``param`` is a
    uint parameter name available inside the host function.
    """
    if gate == "input":
        magic = _magic(rng)
        return [], [], (f"require({param} == {magic});\n        " + body)
    if gate == "sequence":
        pot = f"pot{idx}"
        open_flag = f"open{idx}"
        threshold = rng.choice((50, 80, 120))
        fund = (
            f"    function fund{idx}(uint256 amount{idx}) public {{\n"
            f"        require(amount{idx} <= 500 ether);\n"
            f"        if ({pot} < {threshold} ether) {{\n"
            f"            {pot} += amount{idx};\n"
            f"        }} else {{\n"
            f"            {open_flag} = 1;\n"
            f"        }}\n"
            f"    }}\n")
        state = [f"uint256 {pot} = 0;", f"uint256 {open_flag} = 0;"]
        return state, [fund], (f"require({open_flag} == 1);\n        " + body)
    if gate == "nested":
        magic = _magic(rng)
        limit = rng.choice((100, 1000, 10_000))
        wrapped = (
            f"if ({param} < {limit}) {{\n"
            f"            if ({param} % 2 == 0) {{\n"
            f"                if ({param} != {magic}) {{\n"
            f"                    {body}\n"
            f"                }}\n"
            f"            }}\n"
            f"        }}")
        return [], [], wrapped
    return [], [], body


def _assemble(idx: int, rng: random.Random, gate: str, body: str,
              fn_name: str, payable: bool = False,
              extra_params: str = "") -> Fragment:
    """Build a Fragment whose single entry function wraps ``body``."""
    param = f"x{idx}"
    state, extra_fns, wrapped = _gate_wrap(gate, idx, rng, body, param)
    pay = " payable" if payable else ""
    params = f"uint256 {param}"
    if extra_params:
        params += ", " + extra_params
    fn = (f"    function {fn_name}({params}) public{pay} {{\n"
          f"        {wrapped}\n"
          f"    }}\n")
    frag = Fragment(state=state, functions=extra_fns + [fn])
    return frag


# ---------------------------------------------------------------------------
# vulnerable templates (one per bug class)
# ---------------------------------------------------------------------------


def block_dependency(rng: random.Random, idx: int, gate: str) -> Fragment:
    """BD: block.timestamp / block.number decides a payout branch."""
    source = rng.choice(("block.timestamp", "block.number"))
    modulus = rng.choice((7, 10, 16))
    lucky = rng.randrange(modulus)
    body = (f"if ({source} % {modulus} == {lucky}) {{\n"
            f"            msg.sender.transfer(1 finney);\n"
            f"        }}")
    frag = _assemble(idx, rng, gate, body, f"lottery{idx}", payable=True)
    frag.bugs.add(BugClass.BD)
    frag.uses_send = True
    return frag


def block_dependency_dry(rng: random.Random, idx: int, gate: str) -> Fragment:
    """BD variant without ether transfer (composable with EF contracts)."""
    source = rng.choice(("block.timestamp", "block.number"))
    win = f"wins{idx}"
    body = (f"if ({source} % 8 == {rng.randrange(8)}) {{\n"
            f"            {win}[msg.sender] += 1;\n"
            f"        }}")
    frag = _assemble(idx, rng, gate, body, f"roll{idx}")
    frag.state.append(f"mapping(address => uint256) {win};")
    frag.bugs.add(BugClass.BD)
    return frag


def unprotected_delegatecall(rng: random.Random, idx: int,
                             gate: str) -> Fragment:
    """UD: delegatecall whose target comes straight from calldata."""
    body = f"target{idx}.delegatecall(x{idx});"
    frag = _assemble(idx, rng, gate, body, f"execute{idx}",
                     extra_params=f"address target{idx}")
    frag.bugs.add(BugClass.UD)
    frag.uses_send = True  # DELEGATECALL counts as a potential ether path
    return frag


def ether_freeze(rng: random.Random, idx: int, gate: str) -> Fragment:
    """EF: accepts deposits; the contract has no ether-out instruction.

    Only valid when composed into a contract with ``uses_send == False``.
    """
    ledger = f"deposits{idx}"
    body = f"{ledger}[msg.sender] += msg.value;"
    frag = _assemble(idx, rng, gate, body, f"deposit{idx}", payable=True)
    frag.state.append(f"mapping(address => uint256) {ledger};")
    frag.bugs.add(BugClass.EF)
    return frag


def integer_overflow(rng: random.Random, idx: int, gate: str) -> Fragment:
    """IO: unchecked token arithmetic (classic BEC-style)."""
    supply = f"supply{idx}"
    ledger = f"tokens{idx}"
    variant = rng.choices(("mint", "transfer", "batch"),
                          weights=(0.25, 0.4, 0.35), k=1)[0]
    # NB: the arithmetic operand is a *separate* parameter from the gate
    # parameter x{idx}, otherwise gating constraints would make the
    # overflow structurally impossible.
    if variant == "mint":
        body = (f"{supply} += amt{idx};\n"
                f"        {ledger}[msg.sender] += amt{idx};")
        extra = f"uint256 amt{idx}"
    elif variant == "transfer":
        body = (f"{ledger}[msg.sender] -= amt{idx};\n"
                f"        {ledger}[to{idx}] += amt{idx};")
        extra = f"uint256 amt{idx}, address to{idx}"
    else:
        body = (f"uint256 total{idx} = amt{idx} * 3;\n"
                f"        {ledger}[msg.sender] += total{idx};")
        extra = f"uint256 amt{idx}"
    frag = _assemble(idx, rng, gate, body, f"{variant}{idx}",
                     extra_params=extra)
    frag.state.append(f"uint256 {supply} = 0;")
    frag.state.append(f"mapping(address => uint256) {ledger};")
    frag.bugs.add(BugClass.IO)
    return frag


def reentrancy(rng: random.Random, idx: int, gate: str) -> Fragment:
    """RE: DAO-style withdraw — ether out before the balance update."""
    shares = f"shares{idx}"
    deposit = (
        f"    function join{idx}() public payable {{\n"
        f"        {shares}[msg.sender] += msg.value;\n"
        f"    }}\n")
    body = (f"uint256 owed{idx} = {shares}[msg.sender];\n"
            f"        if (owed{idx} > 0) {{\n"
            f"            bool sent{idx} = msg.sender.call.value(owed{idx})();\n"
            f"            require(sent{idx});\n"
            f"            {shares}[msg.sender] = 0;\n"
            f"        }}")
    frag = _assemble(idx, rng, gate, body, f"redeem{idx}")
    frag.state.append(f"mapping(address => uint256) {shares};")
    frag.functions.insert(0, deposit)
    frag.bugs.add(BugClass.RE)
    frag.uses_send = True
    return frag


def unprotected_selfdestruct(rng: random.Random, idx: int,
                             gate: str) -> Fragment:
    """US: anyone can destroy the contract."""
    body = "selfdestruct(msg.sender);"
    frag = _assemble(idx, rng, gate, body, f"shutdown{idx}")
    frag.bugs.add(BugClass.US)
    frag.uses_send = True
    return frag


def strict_equality(rng: random.Random, idx: int, gate: str) -> Fragment:
    """SE: a strict == on the contract balance guards a bonus."""
    amount = rng.choice((88, 100, 500))
    body = (f"if (this.balance == {amount} finney) {{\n"
            f"            msg.sender.transfer(1 finney);\n"
            f"        }}")
    frag = _assemble(idx, rng, gate, body, f"bonus{idx}", payable=True)
    frag.bugs.add(BugClass.SE)
    frag.uses_send = True
    return frag


def strict_equality_dry(rng: random.Random, idx: int, gate: str) -> Fragment:
    """SE variant without transfer (composable with EF)."""
    flag = f"jackpot{idx}"
    amount = rng.choice((88, 250))
    body = (f"if (this.balance == {amount} finney) {{\n"
            f"            {flag} = 1;\n"
            f"        }}")
    frag = _assemble(idx, rng, gate, body, f"check{idx}")
    frag.state.append(f"uint256 {flag} = 0;")
    frag.bugs.add(BugClass.SE)
    return frag


def tx_origin(rng: random.Random, idx: int, gate: str) -> Fragment:
    """TO: tx.origin-based authentication."""
    body = (f"require(tx.origin == owner);\n"
            f"        owner.transfer(this.balance);")
    frag = _assemble(idx, rng, gate, body, f"claim{idx}")
    frag.bugs.add(BugClass.TO)
    frag.uses_send = True
    return frag


def king_of_ether(rng: random.Random, idx: int, gate: str) -> Fragment:
    """UE: King-of-the-Ether-Throne — the payout goes to the *previous*
    participant, whose fallback may revert; the send result is dropped."""
    king = f"king{idx}"
    prize = f"prize{idx}"
    body = (f"{king}.send({prize});\n"
            f"        {king} = msg.sender;\n"
            f"        {prize} = msg.value;")
    frag = _assemble(idx, rng, gate, body, f"claim{idx}", payable=True)
    frag.state.append(f"address {king};")
    frag.state.append(f"uint256 {prize} = 0;")
    frag.bugs.add(BugClass.UE)
    frag.uses_send = True
    return frag


def unhandled_exception(rng: random.Random, idx: int, gate: str) -> Fragment:
    """UE: a send whose result is silently dropped."""
    variant = rng.choice(("send", "callvalue"))
    if variant == "send":
        body = f"to{idx}.send(x{idx});"
    else:
        body = f"to{idx}.call.value(x{idx})();"
    frag = _assemble(idx, rng, gate, body, f"payout{idx}",
                     extra_params=f"address to{idx}")
    frag.bugs.add(BugClass.UE)
    if variant == "callvalue":
        # gas-forwarding value call: a reentrancy oracle legitimately flags
        # the callback it permits
        frag.lookalikes.add(BugClass.RE)
    frag.uses_send = True
    return frag


#: template registry per bug class (first entry = default)
BUG_TEMPLATES = {
    BugClass.BD: (block_dependency, block_dependency_dry),
    BugClass.UD: (unprotected_delegatecall,),
    BugClass.EF: (ether_freeze,),
    BugClass.IO: (integer_overflow,),
    BugClass.RE: (reentrancy,),
    BugClass.US: (unprotected_selfdestruct,),
    BugClass.SE: (strict_equality, strict_equality_dry),
    BugClass.TO: (tx_origin,),
    BugClass.UE: (unhandled_exception, king_of_ether),
}

#: classes whose default template sends ether (cannot share a contract
#: with an EF bug)
SENDING_CLASSES = frozenset({
    BugClass.UD, BugClass.RE, BugClass.US, BugClass.TO, BugClass.UE,
})


# ---------------------------------------------------------------------------
# benign / protected counterparts (FP bait and D1 filler)
# ---------------------------------------------------------------------------


def safe_withdraw(rng: random.Random, idx: int, gate: str = "none"
                  ) -> Fragment:
    """Checks-effects-interactions withdraw: no reentrancy."""
    ledger = f"vault{idx}"
    fns = [
        (f"    function save{idx}() public payable {{\n"
         f"        {ledger}[msg.sender] += msg.value;\n"
         f"    }}\n"),
        (f"    function take{idx}(uint256 amount{idx}) public {{\n"
         f"        require({ledger}[msg.sender] >= amount{idx});\n"
         f"        {ledger}[msg.sender] -= amount{idx};\n"
         f"        msg.sender.transfer(amount{idx});\n"
         f"    }}\n"),
    ]
    return Fragment(state=[f"mapping(address => uint256) {ledger};"],
                    functions=fns, uses_send=True)


def guarded_selfdestruct(rng: random.Random, idx: int, gate: str = "none"
                         ) -> Fragment:
    """Owner-guarded selfdestruct — protected, no US bug."""
    fn = (f"    function retire{idx}() public onlyOwner {{\n"
          f"        selfdestruct(owner);\n"
          f"    }}\n")
    frag = Fragment(functions=[fn], uses_send=True)
    frag.lookalikes.add(BugClass.US)
    return frag


def vesting_timestamp(rng: random.Random, idx: int, gate: str = "none"
                      ) -> Fragment:
    """Timestamp-compared vesting: commonly annotated benign, but taint-based
    BD oracles flag it — the Table IV false-positive source."""
    start = f"start{idx}"
    fn = (f"    function release{idx}() public {{\n"
          f"        if (block.timestamp >= {start} + 30) {{\n"
          f"            released{idx} = 1;\n"
          f"        }}\n"
          f"    }}\n")
    frag = Fragment(
        state=[f"uint256 {start} = 0;", f"uint256 released{idx} = 0;"],
        ctor=[f"{start} = block.timestamp;"],
        functions=[fn])
    frag.lookalikes.add(BugClass.BD)
    return frag


def checked_send(rng: random.Random, idx: int, gate: str = "none"
                 ) -> Fragment:
    """A send whose result is required — handled, no UE."""
    fn = (f"    function refund{idx}(uint256 amount{idx}) public {{\n"
          f"        require(amount{idx} <= 1 ether);\n"
          f"        require(msg.sender.send(amount{idx}));\n"
          f"    }}\n")
    frag = Fragment(functions=[fn], uses_send=True)
    frag.lookalikes.add(BugClass.UE)
    return frag


def guarded_arithmetic(rng: random.Random, idx: int, gate: str = "none"
                       ) -> Fragment:
    """SafeMath-style guarded add: overflow reverts, no IO bug."""
    total = f"locked{idx}"
    fn = (f"    function lock{idx}(uint256 amount{idx}) public {{\n"
          f"        require({total} + amount{idx} >= {total});\n"
          f"        {total} += amount{idx};\n"
          f"    }}\n")
    frag = Fragment(state=[f"uint256 {total} = 0;"], functions=[fn])
    frag.lookalikes.add(BugClass.IO)
    return frag


BENIGN_TEMPLATES = (
    safe_withdraw, guarded_selfdestruct, vesting_timestamp, checked_send,
    guarded_arithmetic,
)


# ---------------------------------------------------------------------------
# D1 feature blocks (coverage-oriented, mostly benign)
# ---------------------------------------------------------------------------


def state_machine_block(rng: random.Random, idx: int) -> Fragment:
    """A stage counter advanced under conditions — deep sequential states."""
    stage = f"stage{idx}"
    steps = rng.randint(2, 4)
    fns = []
    for step in range(steps):
        fns.append(
            f"    function step{idx}_{step}(uint256 v{idx}) public {{\n"
            f"        if ({stage} == {step}) {{\n"
            f"            if (v{idx} > {rng.randint(1, 50)}) {{\n"
            f"                {stage} = {step + 1};\n"
            f"            }}\n"
            f"        }}\n"
            f"    }}\n")
    fns.append(
        f"    function finish{idx}() public {{\n"
        f"        require({stage} == {steps});\n"
        f"        {stage} = 0;\n"
        f"    }}\n")
    return Fragment(state=[f"uint256 {stage} = 0;"], functions=fns)


def accumulator_block(rng: random.Random, idx: int) -> Fragment:
    """Crowdsale-style RAW accumulator with a threshold flip."""
    pool = f"pool{idx}"
    mode = f"mode{idx}"
    goal = rng.choice((40, 90, 150))
    fns = [
        (f"    function add{idx}(uint256 amount{idx}) public {{\n"
         f"        require(amount{idx} <= 900 ether);\n"
         f"        if ({pool} < {goal} ether) {{\n"
         f"            {pool} += amount{idx};\n"
         f"            {mode} = 0;\n"
         f"        }} else {{\n"
         f"            {mode} = 1;\n"
         f"        }}\n"
         f"    }}\n"),
        (f"    function settle{idx}() public {{\n"
         f"        if ({mode} == 1) {{\n"
         f"            {pool} = 0;\n"
         f"        }}\n"
         f"    }}\n"),
    ]
    return Fragment(state=[f"uint256 {pool} = 0;", f"uint256 {mode} = 0;"],
                    functions=fns)


def ledger_block(rng: random.Random, idx: int) -> Fragment:
    """Mapping-based ledger with guarded moves."""
    book = f"book{idx}"
    fns = [
        (f"    function credit{idx}(address who{idx}, uint256 amt{idx}) "
         f"public {{\n"
         f"        require(amt{idx} < 1000 ether);\n"
         f"        {book}[who{idx}] += amt{idx};\n"
         f"    }}\n"),
        (f"    function move{idx}(address to{idx}, uint256 amt{idx}) "
         f"public {{\n"
         f"        if ({book}[msg.sender] >= amt{idx}) {{\n"
         f"            {book}[msg.sender] -= amt{idx};\n"
         f"            {book}[to{idx}] += amt{idx};\n"
         f"        }}\n"
         f"    }}\n"),
    ]
    return Fragment(state=[f"mapping(address => uint256) {book};"],
                    functions=fns)


def nested_conditions_block(rng: random.Random, idx: int) -> Fragment:
    """Three-deep nested conditionals over inputs and one state var."""
    knob = f"knob{idx}"
    a, b = rng.randint(2, 30), rng.randint(50, 500)
    fn = (
        f"    function tune{idx}(uint256 p{idx}, uint256 q{idx}) public {{\n"
        f"        if (p{idx} > {a}) {{\n"
        f"            if (q{idx} < {b}) {{\n"
        f"                if (p{idx} % {rng.choice((3, 5, 7))} == 1) {{\n"
        f"                    {knob} = p{idx} % 100000 + q{idx};\n"
        f"                }} else {{\n"
        f"                    {knob} = p{idx};\n"
        f"                }}\n"
        f"            }}\n"
        f"        }}\n"
        f"    }}\n")
    return Fragment(state=[f"uint256 {knob} = 0;"], functions=[fn])


def loop_block(rng: random.Random, idx: int) -> Fragment:
    """A bounded loop accumulating into state."""
    acc = f"acc{idx}"
    cap = rng.choice((5, 8, 12))
    fn = (
        f"    function tally{idx}(uint256 n{idx}) public {{\n"
        f"        uint256 i{idx} = 0;\n"
        f"        uint256 s{idx} = 0;\n"
        f"        while (i{idx} < n{idx} && i{idx} < {cap}) {{\n"
        f"            s{idx} += i{idx};\n"
        f"            i{idx} += 1;\n"
        f"        }}\n"
        f"        {acc} = s{idx};\n"
        f"    }}\n")
    return Fragment(state=[f"uint256 {acc} = 0;"], functions=[fn])


def admin_block(rng: random.Random, idx: int) -> Fragment:
    """Owner-guarded parameter setter."""
    knob = f"fee{idx}"
    fn = (f"    function setFee{idx}(uint256 v{idx}) public onlyOwner {{\n"
          f"        require(v{idx} <= 1000);\n"
          f"        {knob} = v{idx};\n"
          f"    }}\n")
    return Fragment(state=[f"uint256 {knob} = 0;"], functions=[fn])


D1_BLOCKS = (
    state_machine_block, accumulator_block, ledger_block,
    nested_conditions_block, loop_block, admin_block,
)


# ---------------------------------------------------------------------------
# contract assembly
# ---------------------------------------------------------------------------

_OWNER_MODIFIER = (
    "    modifier onlyOwner() {\n"
    "        require(msg.sender == owner);\n"
    "        _;\n"
    "    }\n")


def assemble_contract(name: str, fragments, with_owner: bool = True) -> str:
    """Render a full MiniSol contract from fragments."""
    merged = Fragment()
    for frag in fragments:
        merged.merge(frag)

    lines = [f"contract {name} {{"]
    if with_owner:
        lines.append("    address owner;")
    for decl in merged.state:
        lines.append(f"    {decl}")
    lines.append("")
    if with_owner:
        lines.append(_OWNER_MODIFIER)
    ctor_body = ["        owner = msg.sender;"] if with_owner else []
    ctor_body += [f"        {stmt}" for stmt in merged.ctor]
    lines.append("    constructor() public {")
    lines.extend(ctor_body)
    lines.append("    }")
    lines.append("")
    for fn in merged.functions:
        lines.append(fn)
    lines.append("}")
    return "\n".join(lines)
