"""Programmable externally-owned-account agents.

Real Ethereum attackers are contracts whose fallback functions run when they
receive ether.  The fuzzer models them as *agents*: Python objects installed
behind an address.  When the EVM CALLs the address, the agent's ``on_call``
runs with access to the machine, so it can, for example, re-enter the caller
— which is exactly the behaviour the reentrancy oracle must observe.
"""

from __future__ import annotations

from repro.evm.machine import ExecutionResult, Message


class Agent:
    """Base agent: accepts any call (like an EOA accepting a transfer)."""

    def on_call(self, machine, msg: Message, depth: int) -> ExecutionResult:
        """Handle an incoming message; default accepts and returns nothing."""
        return ExecutionResult(True, gas_left=msg.gas)


class BenignAgent(Agent):
    """Accepts transfers and does nothing — a plain user wallet."""


class RejectingAgent(Agent):
    """Reverts on any incoming call — models a contract whose fallback throws.

    Used to exercise unhandled-exception paths: a ``send``/``call`` to this
    agent fails, and the oracle checks whether the caller inspected the flag.
    """

    def on_call(self, machine, msg: Message, depth: int) -> ExecutionResult:
        return ExecutionResult(False, error="revert: rejecting fallback",
                               gas_left=0)


class ReentrantAgent(Agent):
    """Re-enters the calling contract when it receives ether with enough gas.

    ``calldata`` is the encoded call the agent replays against its caller
    (typically the withdraw-style function that sent the ether).  Reentry
    needs more gas than the 2300 stipend, mirroring the real constraint that
    ``transfer``/``send`` cannot be re-entered but ``call.value`` can.
    """

    #: minimum forwarded gas for the fallback to afford a reentrant call
    GAS_NEEDED = 20_000

    def __init__(self, address: int, max_reentries: int = 2) -> None:
        self.address = address
        self.max_reentries = max_reentries
        self.calldata: bytes = b""
        self.reentry_count = 0

    def arm(self, calldata: bytes) -> None:
        """Set the payload replayed on reentry and reset the counter."""
        self.calldata = calldata
        self.reentry_count = 0

    def on_call(self, machine, msg: Message, depth: int) -> ExecutionResult:
        can_reenter = (
            msg.value > 0
            and msg.gas >= self.GAS_NEEDED
            and self.calldata
            and self.reentry_count < self.max_reentries
        )
        if not can_reenter:
            return ExecutionResult(True, gas_left=msg.gas)
        self.reentry_count += 1
        inner = Message(
            address=msg.caller,
            caller=self.address,
            origin=msg.origin,
            value=0,
            data=self.calldata,
            gas=msg.gas - 5_000,
            code=machine.world.get_code(msg.caller),
        )
        # Record the callback in the trace: this is the reentrant call the
        # RE oracle looks for (an on-chain attacker contract's CALL opcode
        # would be recorded by the machine; the agent stands in for it).
        if machine.rec_call:
            from repro.evm.trace import CallEvent
            event = CallEvent(
                pc=0, address=self.address, depth=depth, kind="call",
                target=msg.caller, value=0, gas=inner.gas, reentrant=True,
                index=len(machine.trace.calls))
            machine.trace.calls.append(event)
            for deliver in machine.sub_call:
                deliver(event, machine.oracle_ctx)
        result = machine._call(inner, depth + 1)
        # The fallback itself succeeds even if the reentrant call reverted —
        # a real attacker contract would swallow the failure.
        return ExecutionResult(True, gas_left=msg.gas // 2)
