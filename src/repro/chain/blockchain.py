"""High-level chain API: deploy contracts, apply transactions, advance blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.state import WorldState
from repro.chain.transactions import Transaction, TransactionReceipt
from repro.evm.machine import Machine, Message
from repro.evm.trace import EV_ALL
from repro.telemetry.spans import span as _span

#: wall time spent restoring the post-deployment snapshot between
#: iterations (no-op unless telemetry is enabled)
_S_JOURNAL_RESET = _span("chain.journal_reset")

#: Base address for deployed contracts; user/agent accounts live below this.
CONTRACT_ADDRESS_BASE = 0xC0000000
#: Default funded balance for user accounts (plenty of ether, in wei).
DEFAULT_USER_BALANCE = 10**24


@dataclass
class BlockContext:
    """Block environment visible to contracts."""

    number: int = 1
    timestamp: int = 1_600_000_000
    coinbase: int = 0xC0FFEE
    difficulty: int = 2_500_000
    gas_limit: int = 30_000_000

    def advance(self, seconds: int = 13) -> None:
        """Move to the next block (one transaction per block, like the paper's
        per-transaction fuzzing harness)."""
        self.number += 1
        self.timestamp += seconds


@dataclass
class DeployedContract:
    """Handle for a deployed contract instance."""

    address: int
    artifact: object  # repro.compiler.artifacts.CompiledContract
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name and self.artifact is not None:
            self.name = getattr(self.artifact, "name", "")


class Chain:
    """A single-node blockchain simulator.

    One transaction per block; the block timestamp/number advance between
    transactions so block-dependency bugs are genuinely observable.
    """

    def __init__(self, world: WorldState | None = None,
                 max_steps: int = 200_000,
                 event_mask: int = EV_ALL, oracle_bus=None,
                 block_fusion: bool | None = None) -> None:
        self.world = world if world is not None else WorldState()
        self.block = BlockContext()
        self.max_steps = max_steps
        #: trace-event kinds transactions materialize (EV_* bitmask); the
        #: fuzzer narrows this to what its feedback loop + oracles consume
        self.event_mask = event_mask
        #: optional streaming :class:`~repro.oracles.bus.OracleBus`
        #: attached to every transaction machine (never to deployments:
        #: oracles observe transactions, not constructor runs)
        self.oracle_bus = oracle_bus
        #: block-fusion tier toggle forwarded to every Machine; None defers
        #: to the library default (REPRO_BLOCK_FUSION)
        self.block_fusion = block_fusion
        self._next_contract = CONTRACT_ADDRESS_BASE
        self.receipts: list[TransactionReceipt] = []
        #: set by :meth:`mark_base`; while active, the world journal is
        #: retained across transactions so :meth:`reset_to_base` can undo them
        self._base: tuple | None = None

    # -- accounts ---------------------------------------------------------------

    def create_account(self, address: int,
                       balance: int = DEFAULT_USER_BALANCE) -> int:
        """Fund a user account and return its address."""
        self.world.account(address)
        self.world.set_balance(address, balance)
        if self._base is None:
            self.world.clear_journal()
        return address

    def register_agent(self, address: int, agent,
                       balance: int = DEFAULT_USER_BALANCE) -> int:
        """Install an agent (attacker/benign) behind ``address``."""
        self.create_account(address, balance)
        self.world.register_agent(address, agent)
        return address

    # -- deployment ----------------------------------------------------------------

    def deploy(self, artifact, ctor_args: bytes = b"", sender: int = 0xA11CE,
               value: int = 0) -> DeployedContract:
        """Deploy a compiled contract: run its init code, install runtime code."""
        if not self.world.exists(sender):
            self.create_account(sender)
        address = self._next_contract
        self._next_contract += 1
        self.world.account(address)

        machine = Machine(self.world, self.block, self.max_steps,
                          block_fusion=self.block_fusion)
        msg = Message(
            address=address, caller=sender, origin=sender, value=value,
            data=ctor_args, gas=20_000_000, code=artifact.init_code)
        result = machine.execute(msg)
        if not result.success:
            raise RuntimeError(
                f"deployment of {artifact.name} failed: {result.error}")
        self.world.set_code(address, artifact.runtime_code)
        if self._base is None:
            self.world.clear_journal()
        self.block.advance()
        return DeployedContract(address=address, artifact=artifact)

    # -- transactions ----------------------------------------------------------------

    def apply(self, tx: Transaction) -> TransactionReceipt:
        """Execute one transaction in its own block and return the receipt."""
        if not self.world.exists(tx.sender):
            self.create_account(tx.sender)
        machine = Machine(self.world, self.block, self.max_steps,
                          event_mask=self.event_mask, bus=self.oracle_bus,
                          block_fusion=self.block_fusion)
        msg = Message(
            address=tx.to, caller=tx.sender, origin=tx.sender,
            value=tx.value, data=tx.data, gas=tx.gas,
            code=self.world.get_code(tx.to))
        result = machine.execute(msg)
        if self._base is None:
            self.world.clear_journal()
        receipt = TransactionReceipt(
            tx=tx, success=result.success, returndata=result.returndata,
            error=result.error, trace=machine.trace,
            block_number=self.block.number)
        self.receipts.append(receipt)
        self.block.advance()
        return receipt

    def replay_delta(self, redo_ops: tuple, receipt) -> None:
        """Fast-forward one memoized transaction without executing it.

        The state-cache restore path: applies the transaction's captured
        redo delta through the journaled setters (so a later
        :meth:`reset_to_base` still undoes it), re-appends its receipt,
        and advances the block exactly as :meth:`apply` would have — the
        chain ends up bit-identical to having executed the transaction,
        in O(slots it touched) instead of O(its instruction count).
        """
        self.world.apply_redo(redo_ops)
        self.receipts.append(receipt)
        self.block.advance()

    def fork(self) -> "Chain":
        """Deep-copy the chain (point-in-time snapshot, no base mark)."""
        clone = Chain(self.world.fork(), self.max_steps,
                      event_mask=self.event_mask,
                      oracle_bus=self.oracle_bus,
                      block_fusion=self.block_fusion)
        clone.block = BlockContext(
            number=self.block.number, timestamp=self.block.timestamp,
            coinbase=self.block.coinbase, difficulty=self.block.difficulty,
            gas_limit=self.block.gas_limit)
        clone._next_contract = self._next_contract
        return clone

    # -- journal-based campaign reset ------------------------------------------

    def mark_base(self) -> None:
        """Pin the current state as the reset point for :meth:`reset_to_base`.

        From here on the world journal is *retained* across transactions
        (instead of cleared after each one), so every committed mutation
        stays undoable.  The fuzzer marks the post-deployment state once and
        then restores it between iterations in O(touched slots) — replacing
        the former fork-per-iteration deep copy of every account and
        storage dict, which was O(world) regardless of what the iteration
        touched.
        """
        self.world.clear_journal()
        self._base = (self.block.number, self.block.timestamp,
                      len(self.receipts), self._next_contract)

    def reset_to_base(self) -> "Chain":
        """Undo everything since :meth:`mark_base` and return ``self``."""
        if self._base is None:
            raise RuntimeError("reset_to_base() without mark_base()")
        with _S_JOURNAL_RESET:
            self.world.revert_to(0)
            number, timestamp, n_receipts, next_contract = self._base
            self.block.number = number
            self.block.timestamp = timestamp
            del self.receipts[n_receipts:]
            self._next_contract = next_contract
        return self
