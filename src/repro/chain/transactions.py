"""Transaction and receipt records used by the chain and the fuzzer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.trace import ExecutionTrace


@dataclass
class Transaction:
    """One message-call transaction as the fuzzer submits it."""

    sender: int
    to: int
    value: int = 0
    data: bytes = b""
    gas: int = 10_000_000
    #: set by the fuzzer for bookkeeping: which ABI function this encodes.
    function: str | None = None


@dataclass
class TransactionReceipt:
    """Outcome of applying a transaction."""

    tx: Transaction
    success: bool
    returndata: bytes = b""
    error: str | None = None
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    block_number: int = 0
