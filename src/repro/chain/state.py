"""World state: accounts, balances, storage, and journaled rollback.

The journal is an undo log: every mutation appends its inverse.  A snapshot
is just a journal length; reverting truncates back to it.  This gives the
machine cheap nested-call rollback without copying storage dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.errors import InsufficientBalance
from repro.evm.trace import EMPTY_SHADOW, Shadow


@dataclass
class Account:
    """One account: contract or externally-owned."""

    address: int
    balance: int = 0
    code: bytes = b""
    storage: dict = field(default_factory=dict)
    storage_shadow: dict = field(default_factory=dict)
    nonce: int = 0
    destroyed: bool = False


class WorldState:
    """Mutable chain state with snapshot/revert semantics."""

    def __init__(self) -> None:
        self._accounts: dict[int, Account] = {}
        self._agents: dict[int, object] = {}
        self._journal: list[tuple] = []

    # -- account management ---------------------------------------------------

    def account(self, address: int) -> Account:
        """Fetch-or-create the account at ``address``."""
        acct = self._accounts.get(address)
        if acct is None:
            acct = Account(address=address)
            self._accounts[address] = acct
            self._journal.append(("create", address))
        return acct

    def exists(self, address: int) -> bool:
        """True if the account has been touched before."""
        return address in self._accounts

    def accounts(self) -> list[Account]:
        """All known accounts (stable order by address)."""
        return [self._accounts[a] for a in sorted(self._accounts)]

    # -- agents -----------------------------------------------------------------

    def register_agent(self, address: int, agent: object) -> None:
        """Install a programmable agent behind ``address`` (see chain.agents)."""
        self.account(address)
        self._agents[address] = agent

    def get_agent(self, address: int):
        """The agent registered at ``address``, or None."""
        return self._agents.get(address)

    # -- balances ----------------------------------------------------------------

    def get_balance(self, address: int) -> int:
        acct = self._accounts.get(address)
        return acct.balance if acct else 0

    def set_balance(self, address: int, value: int) -> None:
        acct = self.account(address)
        self._journal.append(("balance", address, acct.balance))
        acct.balance = value

    def add_balance(self, address: int, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def transfer(self, sender: int, recipient: int, amount: int) -> None:
        """Move ``amount`` wei; raises :class:`InsufficientBalance` if short."""
        if amount == 0:
            return
        if self.get_balance(sender) < amount:
            raise InsufficientBalance(
                f"account {sender:#x} holds {self.get_balance(sender)}, "
                f"needs {amount}")
        self.set_balance(sender, self.get_balance(sender) - amount)
        self.set_balance(recipient, self.get_balance(recipient) + amount)

    # -- code ---------------------------------------------------------------------

    def get_code(self, address: int) -> bytes:
        acct = self._accounts.get(address)
        if acct is None or acct.destroyed:
            return b""
        return acct.code

    def set_code(self, address: int, code: bytes) -> None:
        acct = self.account(address)
        self._journal.append(("code", address, acct.code))
        acct.code = code

    # -- storage --------------------------------------------------------------------

    def get_storage(self, address: int, slot: int) -> tuple[int, Shadow]:
        acct = self._accounts.get(address)
        if acct is None:
            return 0, EMPTY_SHADOW
        return (acct.storage.get(slot, 0),
                acct.storage_shadow.get(slot, EMPTY_SHADOW))

    def set_storage(self, address: int, slot: int, value: int,
                    shadow: Shadow = EMPTY_SHADOW) -> None:
        acct = self.account(address)
        old_val = acct.storage.get(slot, 0)
        old_shadow = acct.storage_shadow.get(slot, EMPTY_SHADOW)
        self._journal.append(("storage", address, slot, old_val, old_shadow))
        acct.storage[slot] = value
        if shadow.taints:
            acct.storage_shadow[slot] = shadow
        else:
            acct.storage_shadow.pop(slot, None)

    # -- destruction -----------------------------------------------------------------

    def mark_destroyed(self, address: int) -> None:
        acct = self.account(address)
        self._journal.append(("destroyed", address, acct.destroyed))
        acct.destroyed = True

    def is_destroyed(self, address: int) -> bool:
        acct = self._accounts.get(address)
        return bool(acct and acct.destroyed)

    # -- snapshot / revert ---------------------------------------------------------------

    def snapshot(self) -> int:
        """Return a snapshot token (journal position)."""
        return len(self._journal)

    def revert_to(self, token: int) -> None:
        """Undo every mutation made since ``token``."""
        while len(self._journal) > token:
            entry = self._journal.pop()
            kind = entry[0]
            if kind == "balance":
                _, address, old = entry
                self._accounts[address].balance = old
            elif kind == "storage":
                _, address, slot, old_val, old_shadow = entry
                acct = self._accounts[address]
                acct.storage[slot] = old_val
                if old_shadow.taints:
                    acct.storage_shadow[slot] = old_shadow
                else:
                    acct.storage_shadow.pop(slot, None)
            elif kind == "code":
                _, address, old = entry
                self._accounts[address].code = old
            elif kind == "destroyed":
                _, address, old = entry
                self._accounts[address].destroyed = old
            elif kind == "create":
                _, address = entry
                self._accounts.pop(address, None)
                self._agents.pop(address, None)

    def commit(self, token: int) -> None:
        """Accept mutations since ``token`` (journal retained for outer frames)."""
        # Nothing to do: the undo log stays so an *enclosing* frame can still
        # revert past this point.  The outermost committer may clear it.

    def clear_journal(self) -> None:
        """Drop the undo log (call between transactions)."""
        self._journal.clear()

    # -- redo deltas (prefix-state snapshot tree) -------------------------------

    def journal_mark(self) -> int:
        """Current journal length — the watermark :meth:`capture_redo`
        measures a transaction's committed mutations from."""
        return len(self._journal)

    def capture_redo(self, mark: int) -> tuple:
        """The *forward* delta of every mutation committed since ``mark``.

        The journal is an undo log: each entry names a touched key and its
        pre-image.  Reverted frames already popped their entries, so the
        segment past ``mark`` lists exactly the keys a committed
        transaction changed — in first-touch order, which puts an
        account's ``create`` before any write to it.  For each key the
        *current* (post-transaction) value is read once, so the returned
        ops replay the transaction's net state effect without executing
        it.  Size is O(slots the transaction touched), not O(world).
        """
        seen: set = set()
        ops = []
        for entry in self._journal[mark:]:
            kind = entry[0]
            if kind == "storage":
                key = (kind, entry[1], entry[2])
            else:
                key = (kind, entry[1])
            if key in seen:
                continue
            seen.add(key)
            if kind == "create":
                ops.append(entry[:2])
                continue
            acct = self._accounts[entry[1]]
            if kind == "balance":
                ops.append((kind, entry[1], acct.balance))
            elif kind == "storage":
                slot = entry[2]
                ops.append((kind, entry[1], slot,
                            acct.storage.get(slot, 0),
                            acct.storage_shadow.get(slot, EMPTY_SHADOW)))
            elif kind == "code":
                ops.append((kind, entry[1], acct.code))
            elif kind == "destroyed":
                ops.append((kind, entry[1], acct.destroyed))
        return tuple(ops)

    def apply_redo(self, ops: tuple) -> None:
        """Replay a :meth:`capture_redo` delta through the journaled
        setters, so an enclosing ``revert_to``/``reset_to_base`` still
        undoes the fast-forwarded state."""
        for op in ops:
            kind = op[0]
            if kind == "balance":
                self.set_balance(op[1], op[2])
            elif kind == "storage":
                self.set_storage(op[1], op[2], op[3], op[4])
            elif kind == "create":
                self.account(op[1])
            elif kind == "code":
                self.set_code(op[1], op[2])
            elif kind == "destroyed":
                acct = self.account(op[1])
                self._journal.append(("destroyed", op[1], acct.destroyed))
                acct.destroyed = op[2]

    # -- deep snapshot for campaign-level save/restore ------------------------------------

    def fork(self) -> "WorldState":
        """A deep, independent copy (used to reset state between fuzz runs)."""
        clone = WorldState()
        for address, acct in self._accounts.items():
            clone._accounts[address] = Account(
                address=address,
                balance=acct.balance,
                code=acct.code,
                storage=dict(acct.storage),
                storage_shadow=dict(acct.storage_shadow),
                nonce=acct.nonce,
                destroyed=acct.destroyed,
            )
        clone._agents = dict(self._agents)
        return clone
