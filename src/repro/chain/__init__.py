"""Blockchain state substrate: accounts, storage, transactions, agents.

This package provides the persistent-state environment the paper's fuzzer
operates in: a world state with journaled rollback (so reverts behave like
Ethereum), a block context that advances per transaction, and programmable
*agents* — externally-owned-account stand-ins whose fallback behaviour can
re-enter the caller, which is how the reentrancy oracle is exercised.
"""

from repro.chain.state import Account, WorldState
from repro.chain.blockchain import BlockContext, Chain, DeployedContract
from repro.chain.transactions import Transaction, TransactionReceipt
from repro.chain.agents import Agent, BenignAgent, ReentrantAgent, RejectingAgent

__all__ = [
    "Account",
    "WorldState",
    "BlockContext",
    "Chain",
    "DeployedContract",
    "Transaction",
    "TransactionReceipt",
    "Agent",
    "BenignAgent",
    "ReentrantAgent",
    "RejectingAgent",
]
