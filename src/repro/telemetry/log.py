"""Structured logging for the CLI and the orchestrator.

A thin layer over :mod:`logging` with two properties the raw module does
not give us:

* **level-routed streams** — records below WARNING go to the *current*
  ``sys.stdout``, WARNING and above to the *current* ``sys.stderr``.  The
  streams are resolved at emit time, not handler-construction time, so
  output capture (pytest's ``capsys``, subprocess pipes) always sees what
  the user would;
* **structured fields** — ``log.info("resumed", path=p, at=n)`` renders
  as ``resumed path=... at=...``; the message stays the human-readable
  part and the fields stay greppable.

INFO-level records render bare (they *are* the CLI's user-facing output);
WARNING/ERROR records are prefixed with their level unless the message
already carries an ``error:``-style prefix; DEBUG records are prefixed
``debug:``.

:func:`configure` is idempotent and re-entrant: it installs exactly one
handler on the ``repro`` logger and sets its level from an explicit
level name and/or ``-q``/``-v`` flag counts.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["LOGGER", "configure", "resolve_level", "debug", "info",
           "warning", "error", "format_fields"]

LOGGER = logging.getLogger("repro")
LOGGER.propagate = False

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def format_fields(fields: dict) -> str:
    """``key=value`` rendering for structured fields (insertion order)."""
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            value = f"{value:.3f}"
        value = str(value)
        if " " in value:
            value = f'"{value}"'
        parts.append(f"{key}={value}")
    return " ".join(parts)


class _LevelRoutedHandler(logging.Handler):
    """Writes to the current stdout/stderr, chosen per record level."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = record.getMessage()
            if record.levelno >= logging.WARNING:
                prefix = ("" if message.startswith(("error:", "warning:"))
                          else f"{record.levelname.lower()}: ")
                stream = sys.stderr
                message = prefix + message
            elif record.levelno < logging.INFO:
                stream = sys.stdout
                message = f"debug: {message}"
            else:
                stream = sys.stdout
            stream.write(message + "\n")
        except Exception:  # pragma: no cover - mirrors logging's contract
            self.handleError(record)


def resolve_level(level: str | None = None, quiet: int = 0,
                  verbose: int = 0) -> int:
    """The effective level from ``--log-level`` and ``-q``/``-v`` counts.

    An explicit ``--log-level`` wins; otherwise each ``-q`` steps the
    default (INFO) toward ERROR and each ``-v`` toward DEBUG.
    """
    if level is not None:
        try:
            return LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}: expected one of "
                f"{', '.join(LEVELS)}") from None
    if quiet and verbose:
        raise ValueError("-q and -v are mutually exclusive")
    if quiet:
        return logging.ERROR if quiet > 1 else logging.WARNING
    if verbose:
        return logging.DEBUG
    return logging.INFO


def configure(level: int | str | None = None, quiet: int = 0,
              verbose: int = 0) -> None:
    """(Re)install the level-routed handler and set the threshold."""
    if not isinstance(level, int):
        level = resolve_level(level, quiet=quiet, verbose=verbose)
    for handler in list(LOGGER.handlers):
        LOGGER.removeHandler(handler)
    LOGGER.addHandler(_LevelRoutedHandler())
    LOGGER.setLevel(level)


def _ensure_configured() -> None:
    if not LOGGER.handlers:
        configure()


def _emit(level: int, msg: str, fields: dict) -> None:
    _ensure_configured()
    if fields:
        rendered = format_fields(fields)
        msg = f"{msg} {rendered}" if msg else rendered
    LOGGER.log(level, msg)


def debug(msg: str = "", **fields) -> None:
    _emit(logging.DEBUG, msg, fields)


def info(msg: str = "", **fields) -> None:
    _emit(logging.INFO, msg, fields)


def warning(msg: str = "", **fields) -> None:
    _emit(logging.WARNING, msg, fields)


def error(msg: str = "", **fields) -> None:
    _emit(logging.ERROR, msg, fields)
