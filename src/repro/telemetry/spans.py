"""Span-based stage tracing: per-span wall-time/count aggregation.

A :class:`Span` is a module-level singleton context manager wrapping one
named region of the pipeline (``engine.execution``, ``compile.compile``,
``chain.journal_reset``, ...).  Entering and leaving a span accumulates
into two numbers — entry count and total wall seconds — rather than
appending per-event log records, so a span wrapped around a region that
runs millions of times per campaign stays O(1) in memory.

Spans are reentrancy-safe: a region that re-enters itself (or is reached
again beneath another span) only times the outermost entry, so totals
never double-count nested wall time.  Sibling spans may overlap (the
``engine.mutation`` span includes the probe executions that also tick
``engine.execution``); span totals are a taxonomy of where wall time was
spent, not a disjoint partition of it.

Stage spans (``stage=True``) additionally maintain the *current stage*
stack, which worker heartbeats sample so a post-mortem of a killed worker
shows where in the pipeline it was.

While telemetry is disabled a span's ``__enter__`` is a single attribute
load plus one predictable branch — spans never wrap the per-opcode EVM
loop, only per-iteration/per-transaction boundaries, so this is far off
the hot path.
"""

from __future__ import annotations

from time import perf_counter

from repro.telemetry.metrics import REGISTRY

__all__ = ["Span", "span", "current_stage"]

#: innermost-last stack of active stage-span names (enabled runs only)
_stage_stack: list = []


class Span:
    """One named, aggregating trace region; use as a context manager."""

    __slots__ = ("name", "count", "total", "stage", "_live", "_depth",
                 "_t0")

    def __init__(self, name: str, stage: bool = False,
                 registry=REGISTRY) -> None:
        self.name = name
        self.stage = stage
        self.count = 0
        self.total = 0.0
        self._depth = 0
        self._t0 = 0.0
        self._live = registry.enabled
        registry.register_span(self)

    def __enter__(self) -> "Span":
        if self._live:
            if self._depth == 0:
                self._t0 = perf_counter()
                if self.stage:
                    _stage_stack.append(self.name)
            self._depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._live and self._depth:
            self._depth -= 1
            if self._depth == 0:
                self.total += perf_counter() - self._t0
                self.count += 1
                if self.stage and _stage_stack \
                        and _stage_stack[-1] == self.name:
                    _stage_stack.pop()
        return False

    def set_totals(self, count: int, total_s: float) -> None:
        """Overwrite the aggregates — for snapshot-time collectors
        mirroring a region that times itself with raw ``perf_counter``
        calls because even a live span's enter/exit would be too hot
        (see the per-transaction oracle dispatch)."""
        self.count = count
        self.total = total_s

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._depth = 0


def span(name: str, stage: bool = False) -> Span:
    """Create (or fetch) the aggregating span named ``name``."""
    existing = REGISTRY._spans.get(name)
    if existing is not None:
        return existing
    return Span(name, stage=stage)


def current_stage() -> str | None:
    """The innermost active stage-span name (None when idle/disabled)."""
    return _stage_stack[-1] if _stage_stack else None
