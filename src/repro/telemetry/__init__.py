"""Telemetry: metrics registry, stage/span tracing, worker heartbeats,
structured logging.

The subsystem is **off by default and provably inert**: enabling or
disabling it changes neither the RNG stream nor any campaign result byte
(the determinism guard in ``tests/test_telemetry.py`` enforces this on
every execution backend).  Disabled instruments are module-level no-op
singletons — the EVM hot loop pays one attribute call per instrument,
with no branching.

Layout
------
:mod:`~repro.telemetry.metrics`
    counters / gauges / fixed-bucket histograms, the process registry,
    snapshot + associative merge + delta.
:mod:`~repro.telemetry.spans`
    per-span wall-time/count aggregation over the engine pipeline and
    the caches; maintains the current-stage stack heartbeats sample.
:mod:`~repro.telemetry.progress`
    :class:`ProgressSnapshot` heartbeats from backend workers, plus the
    per-job :class:`TelemetrySession` scope.
:mod:`~repro.telemetry.log`
    the structured, level-routed logger behind the CLI.

Set ``REPRO_TELEMETRY=1`` to enable collection at import time (the CLI's
``--metrics``/``--telemetry`` flags and the orchestrator's
``run_matrix(telemetry=True)`` enable it programmatically).
"""

from __future__ import annotations

import os as _os

from repro.telemetry.metrics import (
    REGISTRY,
    counter,
    diff_snapshots,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    merge_snapshots,
    reset,
    snapshot,
)
from repro.telemetry.progress import (
    HEARTBEAT,
    ProgressSnapshot,
    TelemetrySession,
)
from repro.telemetry.spans import current_stage, span

__all__ = [
    "REGISTRY",
    "HEARTBEAT",
    "ProgressSnapshot",
    "TelemetrySession",
    "counter",
    "current_stage",
    "diff_snapshots",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "merge_snapshots",
    "reset",
    "snapshot",
    "span",
]

if _os.environ.get("REPRO_TELEMETRY") == "1":  # pragma: no cover
    enable()
