"""Worker heartbeats and progress snapshots.

A :class:`ProgressSnapshot` is one worker's view of one running campaign
at an instant: loop position (stage, executions, transactions, current
seed), rates, coverage, queue depth, findings count, cache hit rates, and
remaining budget.  Backend workers periodically fold their telemetry
registry into one and ship it over the existing results queue (tagged
``kind="heartbeat"``); the scheduler keeps the latest per job, feeds the
live ``repro top`` view, and attaches the final snapshot to a job's
outcome when its worker dies or overruns — so a post-mortem shows where
the campaign was, not just that it stopped.

The emitter is a process-global singleton, a deliberate mirror of the
metrics registry: the engine calls :meth:`HeartbeatEmitter.tick` once per
iteration, which is a single attribute load plus a None check unless a
backend has installed a sink.  Heartbeat cadence is wall-clock-throttled
(default 1s); emission timing never influences campaign behaviour, so
heartbeats are as inert as the metrics they carry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from time import perf_counter

from repro.telemetry import metrics

__all__ = ["ProgressSnapshot", "HeartbeatEmitter", "HEARTBEAT",
           "TelemetrySession", "snapshot_of"]

#: default seconds between heartbeats from a busy worker
DEFAULT_HEARTBEAT_EVERY = 1.0


@dataclass
class ProgressSnapshot:
    """One campaign's progress at an instant, as shipped in heartbeats."""

    job_id: str | None = None
    worker: int | None = None
    #: innermost active pipeline stage span (``engine.execution``, ...)
    stage: str | None = None
    executions: int = 0
    transactions: int = 0
    coverage: float = 0.0
    queue_depth: int = 0
    findings: int = 0
    #: index of the seed being mutated (None between selections)
    seed_index: int | None = None
    elapsed_s: float = 0.0
    execs_per_sec: float = 0.0
    txs_per_sec: float = 0.0
    #: compile/code-analysis cache hit counters for this process
    cache: dict = field(default_factory=dict)
    #: remaining budget per axis (absent axes are unlimited)
    budget_remaining: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return asdict(self)

    @classmethod
    def from_wire(cls, data: dict) -> "ProgressSnapshot":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def snapshot_of(fuzzer) -> ProgressSnapshot:
    """Fold a live :class:`~repro.core.fuzzer.Fuzzer` into a snapshot.

    Pure observation: reads counters and aggregates, mutates nothing.
    """
    from repro.compiler.cache import compile_cache_stats
    from repro.evm.analysis import analysis_cache_stats
    from repro.telemetry import spans

    budget = fuzzer.budget
    elapsed = budget.elapsed()
    remaining: dict = {}
    if budget.max_iterations is not None:
        remaining["iterations"] = max(
            0, budget.max_iterations - budget.iterations_used)
    if budget.max_transactions is not None:
        remaining["transactions"] = max(
            0, budget.max_transactions - budget.transactions_used)
    if budget.max_wall_clock is not None:
        remaining["wall_clock_s"] = round(
            max(0.0, budget.max_wall_clock - elapsed), 3)
    compile_stats = compile_cache_stats()
    analysis_stats = analysis_cache_stats()
    state = getattr(fuzzer, "_state", None)
    return ProgressSnapshot(
        stage=spans.current_stage(),
        executions=budget.iterations_used,
        transactions=budget.transactions_used,
        coverage=round(fuzzer.coverage.coverage(), 6),
        queue_depth=len(fuzzer.queue),
        findings=len(fuzzer.collector.all()),
        seed_index=(state.current_index if state is not None else None),
        elapsed_s=round(elapsed, 3),
        execs_per_sec=(round(budget.iterations_used / elapsed, 1)
                       if elapsed > 0 else 0.0),
        txs_per_sec=(round(budget.transactions_used / elapsed, 1)
                     if elapsed > 0 else 0.0),
        cache=_cache_stats(fuzzer, compile_stats, analysis_stats),
        budget_remaining=remaining,
    )


def _cache_stats(fuzzer, compile_stats: dict, analysis_stats: dict) -> dict:
    """The snapshot's cache block: process-wide compile/analysis caches
    plus (when the campaign runs with one) the prefix-snapshot state
    cache's effectiveness counters."""
    cache = {
        "compile_hits": compile_stats["hits"],
        "compile_misses": compile_stats["misses"],
        "analysis_hits": analysis_stats["hits"],
        "analysis_misses": analysis_stats["misses"],
    }
    state_cache = getattr(fuzzer, "state_cache", None)
    if state_cache is not None:
        cache["state_hits"] = state_cache.hits
        cache["state_misses"] = state_cache.misses
        cache["state_steps_saved"] = state_cache.steps_saved
        cache["state_txs_skipped"] = state_cache.transactions_skipped
        cache["state_nodes"] = state_cache.node_count
        cache["state_materialized"] = state_cache.materialized_count
        cache["state_bytes"] = state_cache.bytes_estimate()
    return cache


class HeartbeatEmitter:
    """Process-global heartbeat hook the engine ticks once per iteration.

    Uninstalled (the default), :meth:`tick` costs one attribute load and
    a None check.  A backend installs a sink + cadence around each job;
    the engine then emits a :class:`ProgressSnapshot` whenever the
    wall-clock throttle allows.
    """

    __slots__ = ("_sink", "_every", "_last", "job_id", "worker")

    def __init__(self) -> None:
        self._sink = None
        self._every = DEFAULT_HEARTBEAT_EVERY
        self._last = 0.0
        self.job_id: str | None = None
        self.worker: int | None = None

    def install(self, sink, every: float = DEFAULT_HEARTBEAT_EVERY,
                job_id: str | None = None,
                worker: int | None = None) -> None:
        """Route heartbeats to ``sink(snapshot)`` every ``every`` s."""
        self._sink = sink
        self._every = max(0.0, float(every))
        self._last = 0.0  # first tick after install always emits
        self.job_id = job_id
        self.worker = worker

    def uninstall(self) -> None:
        self._sink = None
        self.job_id = None
        self.worker = None

    def tick(self, fuzzer) -> None:
        """Maybe emit a heartbeat for ``fuzzer`` (engine-called)."""
        sink = self._sink
        if sink is None:
            return
        now = perf_counter()
        if now - self._last < self._every:
            return
        self._last = now
        snapshot = snapshot_of(fuzzer)
        snapshot.job_id = self.job_id
        snapshot.worker = self.worker
        sink(snapshot)


#: the process-global emitter the engine ticks
HEARTBEAT = HeartbeatEmitter()


class TelemetrySession:
    """Telemetry scope for one job in one worker process.

    Enables the registry on entry (restoring the previous switch state on
    exit), installs the heartbeat sink, and exposes the job's registry
    *delta* as :attr:`delta` after exit — a long-lived pool worker's
    cumulative counters are turned into per-job numbers the same way the
    compile-cache delta already is.
    """

    def __init__(self, job_id: str | None = None,
                 heartbeat_sink=None,
                 heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY,
                 worker: int | None = None) -> None:
        self.job_id = job_id
        self.heartbeat_sink = heartbeat_sink
        self.heartbeat_every = heartbeat_every
        self.worker = worker
        self.delta: dict | None = None
        self._before: dict | None = None
        self._was_enabled = False

    def __enter__(self) -> "TelemetrySession":
        self._was_enabled = metrics.enabled()
        metrics.enable()
        self._before = metrics.snapshot()
        if self.heartbeat_sink is not None:
            HEARTBEAT.install(self.heartbeat_sink,
                              every=self.heartbeat_every,
                              job_id=self.job_id, worker=self.worker)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.heartbeat_sink is not None:
            HEARTBEAT.uninstall()
        self.delta = metrics.diff_snapshots(metrics.snapshot(),
                                            self._before)
        if not self._was_enabled:
            metrics.disable()
        return False
