"""Process-local metrics registry: counters, gauges, fixed-bucket
histograms.

Design constraints (the tentpole's hard requirements):

* **Zero overhead when disabled.**  Instruments are module-level
  singletons created at import time; enabling/disabling telemetry swaps
  their *bound methods* (``inc``/``add``/``set``/``observe``) between the
  live implementation and a shared no-op function.  Call sites therefore
  pay exactly one attribute load plus one call — no branch, no lock, no
  dict probe — whether telemetry is on or off.  The EVM hot loop is
  instrumented this way.
* **Provably inert.**  No instrument touches the RNG, allocates into any
  campaign data structure, or influences control flow; the determinism
  guard (``tests/test_telemetry.py``) asserts byte-identical campaign
  JSON with telemetry enabled vs disabled on every execution backend.
* **Cheaply snapshotable.**  :func:`snapshot` folds every registered
  instrument into a canonical, JSON-serializable dict; snapshots from
  different processes merge associatively (:func:`merge_snapshots`) so
  the scheduler can fold worker deltas in any arrival order, and
  :func:`diff_snapshots` turns a long-lived worker's cumulative registry
  into per-job deltas.

Instruments register by name; requesting an existing name returns the
existing instrument (idempotent), so modules can declare their metrics at
import time without coordination.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "register_collector",
    "enable",
    "disable",
    "enabled",
    "reset",
    "snapshot",
    "merge_snapshots",
    "diff_snapshots",
]


def _noop(*_args, **_kwargs) -> None:
    return None


class Counter:
    """Monotonic counter.  ``inc()``/``add(n)`` are swapped to no-ops
    while telemetry is disabled."""

    __slots__ = ("name", "value", "inc", "add")

    def __init__(self, name: str, live: bool) -> None:
        self.name = name
        self.value = 0
        self._bind(live)

    def _bind(self, live: bool) -> None:
        if live:
            self.inc = self._inc_live
            self.add = self._add_live
        else:
            self.inc = _noop
            self.add = _noop

    def _inc_live(self) -> None:
        self.value += 1

    def _add_live(self, n: int) -> None:
        self.value += n

    def set_total(self, value: int) -> None:
        """Overwrite the running total — snapshot-time collectors mirroring
        a counter a subsystem already keeps (never swapped to a no-op:
        collectors only run inside :meth:`Registry.snapshot`, so the hot
        path still pays nothing)."""
        self.value = value

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-written value (merged across snapshots as the max, which
    keeps the merge associative and commutative)."""

    __slots__ = ("name", "value", "set")

    def __init__(self, name: str, live: bool) -> None:
        self.name = name
        self.value = 0
        self._bind(live)

    def _bind(self, live: bool) -> None:
        self.set = self._set_live if live else _noop

    def _set_live(self, value) -> None:
        self.value = value

    def set_value(self, value) -> None:
        """Overwrite the reading — the gauge counterpart of
        :meth:`Counter.set_total`, for snapshot-time collectors mirroring
        sizes a subsystem already tracks (never swapped to a no-op)."""
        self.value = value

    def _reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed-bucket histogram.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket is appended, so ``counts`` has ``len(bounds) + 1``
    cells.  ``observe(v)`` places ``v`` in the first bucket whose bound is
    ``>= v`` (bisect, no allocation).
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "observe")

    def __init__(self, name: str, bounds, live: bool) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty "
                             "ascending sequence")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.count = 0
        self._bind(live)

    def _bind(self, live: bool) -> None:
        self.observe = self._observe_live if live else _noop

    def _observe_live(self, value) -> None:
        # first bucket whose (inclusive) upper edge is >= value; values
        # above every edge land in the overflow cell
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.count = 0


class Registry:
    """Named instruments plus the spans registered by
    :mod:`repro.telemetry.spans`; one per process in practice."""

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._spans: dict = {}  # populated by spans.Span
        self._collectors: list = []
        self._enabled = False

    # -- instrument creation (idempotent by name) -----------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, self._enabled)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, self._enabled)
        return inst

    def histogram(self, name: str, bounds) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds,
                                                      self._enabled)
        return inst

    def register_span(self, span) -> None:
        self._spans[span.name] = span

    def register_collector(self, fn) -> None:
        """Register a snapshot-time callback.

        Collectors run at the top of every :meth:`snapshot` and mirror
        counters a subsystem already maintains for itself (via
        :meth:`Counter.set_total`) into the registry.  This keeps the
        instrumented hot path at literally zero added work — the absolute
        totals land in both a session's baseline and final snapshot, so
        ``diff_snapshots`` still yields exact per-job deltas.
        """
        if fn not in self._collectors:
            self._collectors.append(fn)

    # -- the global switch -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Bind every instrument live (idempotent)."""
        if self._enabled:
            return
        self._enabled = True
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst._bind(True)
        for span in self._spans.values():
            span._live = True

    def disable(self) -> None:
        """Bind every instrument to the shared no-op (idempotent)."""
        if not self._enabled:
            return
        self._enabled = False
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst._bind(False)
        for span in self._spans.values():
            span._live = False

    def reset(self) -> None:
        """Zero every instrument (the enable/disable state is kept)."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst._reset()
        for span in self._spans.values():
            span._reset()

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical JSON-serializable form of every instrument."""
        for fn in self._collectors:
            fn()
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
            "spans": {
                name: {"count": s.count, "total_s": round(s.total, 6)}
                for name, s in sorted(self._spans.items())
            },
        }


def merge_snapshots(a: dict, b: dict) -> dict:
    """Fold two snapshots into one; associative and commutative.

    Counters, histogram cells, and span aggregates add; gauges take the
    max (the associative choice — gauges are point-in-time readings, so
    "highest observed" is the only order-free merge).
    """
    out = {
        "counters": dict(a.get("counters", {})),
        "gauges": dict(a.get("gauges", {})),
        "histograms": {k: {"bounds": list(v["bounds"]),
                           "counts": list(v["counts"]),
                           "total": v["total"], "count": v["count"]}
                       for k, v in a.get("histograms", {}).items()},
        "spans": {k: dict(v) for k, v in a.get("spans", {}).items()},
    }
    for name, value in b.get("counters", {}).items():
        out["counters"][name] = out["counters"].get(name, 0) + value
    for name, value in b.get("gauges", {}).items():
        out["gauges"][name] = max(out["gauges"].get(name, value), value)
    for name, hist in b.get("histograms", {}).items():
        mine = out["histograms"].get(name)
        if mine is None or list(mine["bounds"]) != list(hist["bounds"]):
            # unseen name, or incompatible bucket layouts: keep b's copy
            # (layouts only differ across software versions)
            out["histograms"][name] = {
                "bounds": list(hist["bounds"]),
                "counts": list(hist["counts"]),
                "total": hist["total"], "count": hist["count"]}
            continue
        mine["counts"] = [x + y
                          for x, y in zip(mine["counts"], hist["counts"])]
        mine["total"] += hist["total"]
        mine["count"] += hist["count"]
    for name, span in b.get("spans", {}).items():
        mine = out["spans"].get(name)
        if mine is None:
            out["spans"][name] = dict(span)
        else:
            mine["count"] += span["count"]
            mine["total_s"] = round(mine["total_s"] + span["total_s"], 6)
    return out


def diff_snapshots(after: dict, before: dict) -> dict:
    """``after - before``: the delta one job contributed to a long-lived
    worker's cumulative registry.  Gauges keep their ``after`` reading.
    """
    out = {"counters": {}, "gauges": dict(after.get("gauges", {})),
           "histograms": {}, "spans": {}}
    pre = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        out["counters"][name] = value - pre.get(name, 0)
    pre = before.get("histograms", {})
    for name, hist in after.get("histograms", {}).items():
        old = pre.get(name)
        if old is None or list(old["bounds"]) != list(hist["bounds"]):
            out["histograms"][name] = {
                "bounds": list(hist["bounds"]),
                "counts": list(hist["counts"]),
                "total": hist["total"], "count": hist["count"]}
            continue
        out["histograms"][name] = {
            "bounds": list(hist["bounds"]),
            "counts": [x - y
                       for x, y in zip(hist["counts"], old["counts"])],
            "total": hist["total"] - old["total"],
            "count": hist["count"] - old["count"]}
    pre = before.get("spans", {})
    for name, span in after.get("spans", {}).items():
        old = pre.get(name, {"count": 0, "total_s": 0.0})
        out["spans"][name] = {
            "count": span["count"] - old["count"],
            "total_s": round(span["total_s"] - old["total_s"], 6)}
    return out


#: the process-local registry behind the module-level helpers
REGISTRY = Registry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, bounds) -> Histogram:
    return REGISTRY.histogram(name, bounds)


def register_collector(fn) -> None:
    REGISTRY.register_collector(fn)


def enable() -> None:
    REGISTRY.enable()


def disable() -> None:
    REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled


def reset() -> None:
    REGISTRY.reset()


def snapshot() -> dict:
    return REGISTRY.snapshot()
