"""The staged campaign engine.

The campaign loop of :class:`repro.core.fuzzer.Fuzzer` decomposed into
swappable stages, each owning one concern of Algorithms 1–3:

* :mod:`~repro.engine.budget` — the **single** stopping authority
  combining iteration, transaction, and wall-clock limits;
* :mod:`~repro.engine.selection` — distance-feedback seed selection with
  an incrementally maintained uncovered-target list;
* :mod:`~repro.engine.mutation` — the mutation pipeline as explicit
  weighted stages (fallback-insertion / sequence / dictionary / masked /
  AFL);
* :mod:`~repro.engine.retention` — favored-edge corpus retention;
* :mod:`~repro.engine.checkpoint` — durable mid-campaign state with a
  byte-exact interrupt/resume guarantee.

``Fuzzer`` remains the public facade that wires the stages together; this
package is where scheduling strategies and new campaign shapes get added.
"""

from repro.engine.budget import Budget
from repro.engine.checkpoint import CampaignCheckpoint, CampaignState
from repro.engine.mutation import (
    AflStage,
    DictionaryStage,
    FallbackInsertionStage,
    MaskedStage,
    MutationPipeline,
    SequenceStage,
)
from repro.engine.retention import RetentionPolicy
from repro.engine.selection import SeedSelector

__all__ = [
    "AflStage",
    "Budget",
    "CampaignCheckpoint",
    "CampaignState",
    "DictionaryStage",
    "FallbackInsertionStage",
    "MaskedStage",
    "MutationPipeline",
    "RetentionPolicy",
    "SeedSelector",
    "SequenceStage",
]
