"""Seed selection (Algorithm 1, lines 4–13): the engine's selection stage.

Half the time (under ``use_distance_feedback``) selection targets an
uncovered branch: pick one of the targets some seed has approached, then
take the corpus seed with the smallest recorded distance to it (the queue
maintains that index incrementally — see
:meth:`repro.core.seeds.SeedQueue.best_for_target`).  Otherwise a uniform
random corpus seed is chosen.

The selector also owns the global best-distance table the targets come
from.  The uncovered-target list is maintained *incrementally*: new targets
append when first observed, and covered ones are pruned only when coverage
actually grew — not rebuilt from the whole table every iteration, which was
O(targets) per selection and dominated long campaigns.
"""

from __future__ import annotations

import random

from repro.core.coverage import CoverageTracker
from repro.core.seeds import Seed, SeedQueue


class SeedSelector:
    """Distance-feedback seed selection over the shared corpus queue."""

    #: probability of attempting distance-targeted selection per iteration
    TARGETED_WEIGHT = 0.5

    def __init__(self, rng: random.Random, queue: SeedQueue,
                 coverage: CoverageTracker, address: int,
                 use_distance_feedback: bool) -> None:
        self.rng = rng
        self.queue = queue
        self.coverage = coverage
        self.address = address
        self.use_distance_feedback = use_distance_feedback
        #: target (addr, pc, taken) -> smallest distance any execution saw
        self.global_best: dict = {}
        #: insertion-ordered targets not yet covered (lazily pruned)
        self._targets: list = []
        #: coverage size at the last prune (prune only when it grew)
        self._covered_seen = 0

    # -- feedback: distance bookkeeping (runs for every executed seed) ---------

    def observe(self, seed: Seed, distances: dict) -> None:
        """Attach distance facts to ``seed`` and fold them into the global
        table; sets ``seed.improved_distance`` (Algorithm 1's criterion for
        mask-stage eligibility)."""
        seed.distances = {}
        seed.improved_distance = False
        for key, dist in distances.items():
            address, pc, taken = key
            if address != self.address:
                continue
            if (pc, taken) in self.coverage.covered:
                continue
            seed.distances[key] = dist
            best = self.global_best.get(key)
            if best is None or dist < best:
                if best is None:
                    self._targets.append(key)
                self.global_best[key] = dist
                seed.improved_distance = True

    # -- selection -------------------------------------------------------------

    def select(self) -> int:
        """Queue index of the next parent seed."""
        if (self.use_distance_feedback
                and self.rng.random() < self.TARGETED_WEIGHT):
            targets = self.uncovered_targets()
            if targets:
                target = self.rng.choice(targets)
                index = self.queue.index_for_target(target)
                if index is not None:
                    return index
        return self.rng.randrange(len(self.queue.seeds))

    def uncovered_targets(self) -> list:
        """Targets still worth steering toward, in first-seen order."""
        covered = self.coverage.covered
        if len(covered) != self._covered_seen:
            self._targets = [t for t in self._targets
                             if (t[1], t[2]) not in covered]
            self._covered_seen = len(covered)
        return self._targets

    # -- checkpoint serialization ----------------------------------------------

    def state_dict(self) -> dict:
        # insertion order of the table is load-bearing: it fixes the order
        # targets are offered to rng.choice
        return {"global_best": [[list(key), dist]
                                for key, dist in self.global_best.items()]}

    def restore_state(self, data: dict) -> None:
        self.global_best = {(int(a), int(pc), bool(t)): int(dist)
                            for (a, pc, t), dist
                            in data.get("global_best", ())}
        self._targets = [key for key in self.global_best
                         if (key[1], key[2]) not in self.coverage.covered]
        self._covered_seen = len(self.coverage.covered)
