"""The mutation pipeline: explicit, weighted stages (§IV-A/§IV-B).

One call to :meth:`MutationPipeline.mutate` produces one child from one
parent seed by rolling through the stages in fixed order, each gated by its
``weight`` (the probability the roll enters the stage):

``fallback-insertion``
    insert a fallback / unknown-selector transaction (dispatcher-edge
    probing, how real fuzzers cover the dispatcher's failure edges);
``sequence``
    re-derive the transaction order through the strategy-specific
    :class:`~repro.core.sequence.SequenceGenerator` (§IV-A);
``dictionary``
    resample one typed argument from the generator that knows the
    contract's PUSH constants (sFuzz/ConFuzzius value dictionaries);
``masked``
    Algorithm 1's mask-guided byte mutation, for parents that hit a nested
    branch or improved a branch distance — mask computation (Algorithm 2)
    runs probe executions that consume campaign budget through the shared
    :class:`~repro.engine.budget.Budget`;
``afl``
    the unconditioned AFL-style byte/word mutation every baseline shares.

The stage weights are data, not buried literals; they reproduce the
published mix exactly (the golden campaign fixture pins this byte-for-byte).
"""

from __future__ import annotations

import random

from repro.core.masking import MutationMask, SeedMutator, compute_mask
from repro.core.seeds import (
    BAD_SELECTOR_CALL,
    FALLBACK_CALL,
    SPECIAL_CALLS,
    Seed,
)

#: probability of resampling the mutated call's sender
SENDER_RESAMPLE_WEIGHT = 0.15
#: probability of resampling a payable call's value inside the dictionary stage
PAYABLE_RESAMPLE_WEIGHT = 0.4


class FallbackInsertionStage:
    """Insert a fallback / bad-selector probing transaction."""

    name = "fallback-insertion"

    def __init__(self, rng: random.Random, weight: float,
                 fresh_call) -> None:
        self.rng = rng
        self.weight = weight
        self.fresh_call = fresh_call

    def apply(self, child: Seed) -> Seed:
        name = self.rng.choice((FALLBACK_CALL, BAD_SELECTOR_CALL))
        pos = self.rng.randint(0, len(child.calls))
        child.calls.insert(pos, self.fresh_call(name))
        return child


class SequenceStage:
    """Mutate the transaction *order* via the sequence strategy (§IV-A)."""

    name = "sequence"

    def __init__(self, seqgen, weight: float, fresh_call) -> None:
        self.seqgen = seqgen
        self.weight = weight
        self.fresh_call = fresh_call

    def apply(self, child: Seed) -> Seed:
        regular = [f for f in child.functions if f not in SPECIAL_CALLS]
        functions = self.seqgen.mutate_sequence(regular)
        existing = {c.function: c for c in child.calls}
        child.calls = [
            existing[name].clone() if name in existing
            else self.fresh_call(name)
            for name in functions]
        return child


class DictionaryStage:
    """Resample one typed argument (and maybe the value) of one call."""

    name = "dictionary"

    def __init__(self, rng: random.Random, abi, inputs,
                 weight: float) -> None:
        self.rng = rng
        self.abi = abi
        self.inputs = inputs
        self.weight = weight

    def applies_to(self, call) -> bool:
        return call.function not in SPECIAL_CALLS

    def apply(self, child: Seed, index: int) -> Seed:
        call = child.calls[index]
        fn = self.abi.function(call.function)
        if call.args:
            arg_index = self.rng.randrange(len(call.args))
            call.args[arg_index] = self.inputs.value_for_type(
                fn.inputs[arg_index])
        if fn.payable and self.rng.random() < PAYABLE_RESAMPLE_WEIGHT:
            call.value = self.inputs.call_value_for(fn)
        return child


class MaskedStage:
    """Mask-guided byte mutation (Algorithms 1–2) with budgeted probing.

    Owns the per-(sequence, call) mask cache and the probe counter; both
    are campaign state and serialize into checkpoints.  ``probe_runner``
    is the campaign's execute→feedback→retain cycle — probe executions are
    real executions and spend real budget, exactly like the paper's
    Algorithm 2.
    """

    name = "masked"

    def __init__(self, rng: random.Random, mutator: SeedMutator, budget,
                 weight: float, budget_fraction: float,
                 probe_limit: int, enabled: bool, probe_runner) -> None:
        self.rng = rng
        self.mutator = mutator
        self.budget = budget
        self.weight = weight
        self.budget_fraction = budget_fraction
        self.probe_limit = probe_limit
        self.enabled = enabled
        self.probe_runner = probe_runner
        #: (tuple(functions), call_index) -> MutationMask
        self.masks: dict = {}
        self.probes_spent = 0

    def applies_to(self, parent: Seed) -> bool:
        return self.enabled and bool(parent.nested_hits
                                     or parent.improved_distance)

    def mask_for(self, seed: Seed, call_index: int) -> MutationMask | None:
        """Compute (or reuse) the mask for one call of one seed
        (Algorithm 2); None when the probe budget is spent (the caller
        falls back to regular mutation)."""
        key = (tuple(seed.functions), call_index)
        cached = self.masks.get(key)
        if cached is not None:
            return cached
        cap = self.budget.mask_probe_cap(self.budget_fraction)
        if cap is not None and self.probes_spent >= cap:
            return None

        target_hits = set(seed.nested_hits)
        baseline = dict(seed.distances)

        def probe(stream: bytes) -> bool:
            if self.budget.exhausted():
                return True  # budget exhausted: stop restricting
            self.probes_spent += 1
            variant = seed.clone()
            variant.calls[call_index] = \
                variant.calls[call_index].apply_stream(stream)
            variant = self.probe_runner(variant)
            still_nested = bool(variant.nested_hits & target_hits)
            improved = any(
                variant.distances.get(k, 1 << 260) < baseline[k]
                for k in baseline)
            return still_nested or improved

        call = seed.calls[call_index]
        mask = compute_mask(call.to_stream(), probe, self.rng,
                            probe_limit=self.probe_limit)
        self.masks[key] = mask
        return mask

    def apply(self, child: Seed, index: int,
              mask: MutationMask) -> Seed:
        call = child.calls[index]
        mutated = self.mutator.masked_mutate(call, mask)
        if mutated is not None:
            mutated.sender = call.sender
            child.calls[index] = mutated
        return child

    # -- checkpoint serialization ----------------------------------------------

    def state_dict(self) -> dict:
        return {
            "probes_spent": self.probes_spent,
            "masks": [[list(functions), call_index, mask.to_dict()]
                      for (functions, call_index), mask
                      in self.masks.items()],
        }

    def restore_state(self, data: dict) -> None:
        self.probes_spent = int(data.get("probes_spent", 0))
        self.masks = {
            (tuple(functions), int(call_index)):
                MutationMask.from_dict(mask_data)
            for functions, call_index, mask_data in data.get("masks", ())}


class AflStage:
    """The fallthrough: one AFL-style mutation on one call."""

    name = "afl"

    def __init__(self, mutator: SeedMutator) -> None:
        self.mutator = mutator

    def apply(self, child: Seed, index: int) -> Seed:
        call = child.calls[index]
        child.calls[index] = self.mutator.afl_mutate(call)
        child.calls[index].sender = call.sender
        return child


class MutationPipeline:
    """One child per call: roll through the weighted stages in order."""

    def __init__(self, rng: random.Random, config, abi, seqgen, inputs,
                 mutator: SeedMutator, fresh_call, budget,
                 probe_runner) -> None:
        self.rng = rng
        self.inputs = inputs
        self.fallback = FallbackInsertionStage(
            rng, config.fallback_probability, fresh_call)
        self.sequence = SequenceStage(seqgen, 0.25, fresh_call)
        self.dictionary = DictionaryStage(rng, abi, inputs, 0.3)
        self.masked = MaskedStage(
            rng, mutator, budget, weight=0.6,
            budget_fraction=config.mask_budget_fraction,
            probe_limit=config.mask_probe_limit,
            enabled=config.use_mask, probe_runner=probe_runner)
        self.afl = AflStage(mutator)

    def mutate(self, parent: Seed) -> Seed:
        child = parent.clone()
        if self.rng.random() < self.fallback.weight:
            return self.fallback.apply(child)
        roll = self.rng.random()
        if roll < self.sequence.weight and len(child.calls) >= 1:
            return self.sequence.apply(child)
        return self._mutate_call(parent, child)

    def _mutate_call(self, parent: Seed, child: Seed) -> Seed:
        if not child.calls:
            return child
        index = self.rng.randrange(len(child.calls))
        call = child.calls[index]
        if self.rng.random() < SENDER_RESAMPLE_WEIGHT:
            call.sender = self.inputs.sender()

        if (self.dictionary.applies_to(call)
                and self.rng.random() < self.dictionary.weight):
            return self.dictionary.apply(child, index)

        # Algorithm 1 runs the masked stage for qualifying seeds *alongside*
        # the regular mutation stage — mix rather than replace.
        if (self.masked.applies_to(parent)
                and self.rng.random() < self.masked.weight):
            mask = self.masked.mask_for(parent, index)
            if mask is not None:
                return self.masked.apply(child, index, mask)

        return self.afl.apply(child, index)
