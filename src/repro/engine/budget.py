"""The campaign budget: the single stopping authority of the engine.

Historically the fuzzer's only stopping notion was an iteration count,
checked as ``self.executions >= config.iterations`` scattered across five
methods.  :class:`Budget` replaces all of them: it combines the three
configurable limits — iterations (full-sequence executions), transactions,
and wall-clock seconds — and every engine stage asks the one object the one
question that matters (:meth:`exhausted`).

Consumption counters are part of the serialized campaign state, so an
interrupted campaign resumes with exactly the budget it had left.  Wall
clock is accounted as ``prior_wall`` (closed sessions, from checkpoints)
plus the live session's elapsed time; iteration- and transaction-budgeted
campaigns are byte-deterministic under interrupt/resume, while wall-clock
stopping points naturally vary with the machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Budget:
    """Combined iteration / transaction / wall-clock campaign budget."""

    #: limits; None = unlimited on that axis (at least one must be set)
    max_iterations: int | None = None
    max_transactions: int | None = None
    max_wall_clock: float | None = None

    #: consumption
    iterations_used: int = 0
    transactions_used: int = 0
    #: wall-clock seconds consumed by earlier (checkpointed) sessions
    prior_wall: float = 0.0

    _session_start: float | None = field(default=None, init=False,
                                         repr=False, compare=False)

    @classmethod
    def from_config(cls, config) -> "Budget":
        """Build the campaign budget from a
        :class:`~repro.core.config.FuzzerConfig`."""
        budget = cls(
            max_iterations=config.iterations,
            max_transactions=getattr(config, "tx_budget", None),
            max_wall_clock=getattr(config, "time_budget", None),
        )
        if (budget.max_iterations is None
                and budget.max_transactions is None
                and budget.max_wall_clock is None):
            raise ValueError(
                "unbounded campaign: set at least one of iterations, "
                "tx_budget, or time_budget")
        return budget

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Anchor the wall clock for this session (idempotent)."""
        if self._session_start is None:
            self._session_start = time.perf_counter()

    def elapsed(self) -> float:
        """Total campaign wall-clock seconds, across sessions."""
        if self._session_start is None:
            return self.prior_wall
        return self.prior_wall + (time.perf_counter() - self._session_start)

    # -- consumption ----------------------------------------------------------

    def note_execution(self) -> None:
        self.iterations_used += 1

    def note_transaction(self, count: int = 1) -> None:
        self.transactions_used += count

    # -- the one question every stage asks ------------------------------------

    def exhausted(self) -> bool:
        if (self.max_iterations is not None
                and self.iterations_used >= self.max_iterations):
            return True
        if (self.max_transactions is not None
                and self.transactions_used >= self.max_transactions):
            return True
        if (self.max_wall_clock is not None
                and self.elapsed() >= self.max_wall_clock):
            return True
        return False

    def mask_probe_cap(self, fraction: float) -> int | None:
        """Total mask-probe executions the campaign may spend (Algorithm 2
        pays per-probe fuzz runs), as ``fraction`` of the budget.

        A *nonzero* fraction always affords at least one mask — small
        campaigns used to truncate ``int(iterations * fraction)`` to zero
        and never compute any mask at all.  Returns None (uncapped) for
        purely wall-clock-budgeted campaigns, where probe spend is already
        bounded by time.

        The cap counts probe *executions*, so a transaction budget is
        converted through the campaign's own observed transactions-per-
        execution ratio (a probe replays a full sequence) — otherwise
        probing would consume ~sequence-length times the intended share.
        Both counters are checkpointed state, so the conversion is
        identical on resume.
        """
        if fraction <= 0:
            return 0
        if self.max_iterations is not None:
            return max(1, int(self.max_iterations * fraction))
        if self.max_transactions is not None:
            per_execution = max(1, self.transactions_used
                                // max(1, self.iterations_used))
            return max(1, int(self.max_transactions * fraction
                              / per_execution))
        return None

    # -- checkpoint serialization ----------------------------------------------

    def state_dict(self) -> dict:
        return {
            "iterations_used": self.iterations_used,
            "transactions_used": self.transactions_used,
            "prior_wall": self.elapsed(),
        }

    def restore_state(self, data: dict) -> None:
        self.iterations_used = int(data.get("iterations_used", 0))
        self.transactions_used = int(data.get("transactions_used", 0))
        self.prior_wall = float(data.get("prior_wall", 0.0))
        self._session_start = None
