"""Corpus retention: which executed seeds enter the queue.

A child is retained when it covered a new edge, or when it exercises an
edge fewer than :data:`RARE_EDGE_THRESHOLD` retained seeds cover — AFL's
favored-input heuristic, which keeps rare-state seeds alive so later
mutations can build on them while bounding the queue to O(edges).

The per-edge retained-seed counts are derivable from the queue itself
(each retained seed contributed its covered edges exactly once), so
checkpoints do not serialize them: :meth:`rebuild` reconstructs the exact
counters from a restored queue.
"""

from __future__ import annotations

from repro.core.seeds import Seed, SeedQueue

#: edges covered by fewer retained seeds than this are "rare"
RARE_EDGE_THRESHOLD = 2


class RetentionPolicy:
    """Favored-edge corpus retention over the shared seed queue."""

    def __init__(self, queue: SeedQueue) -> None:
        self.queue = queue
        #: how many queue seeds cover each edge
        self.edge_seed_counts: dict = {}

    def retain(self, seed: Seed, new_edges: int) -> bool:
        """Add ``seed`` to the queue on new coverage or rare-edge use."""
        rare = any(self.edge_seed_counts.get(edge, 0) < RARE_EDGE_THRESHOLD
                   for edge in seed.covered_edges)
        if not new_edges and not rare:
            return False
        self.queue.add(seed)
        for edge in seed.covered_edges:
            self.edge_seed_counts[edge] = \
                self.edge_seed_counts.get(edge, 0) + 1
        return True

    def rebuild(self) -> None:
        """Recompute the edge counters from the (restored) queue."""
        self.edge_seed_counts = {}
        for seed in self.queue.seeds:
            for edge in seed.covered_edges:
                self.edge_seed_counts[edge] = \
                    self.edge_seed_counts.get(edge, 0) + 1
