"""Durable mid-campaign state: checkpoint/resume for the staged engine.

A :class:`CampaignCheckpoint` serializes the *complete* campaign state to
canonical JSON at an iteration boundary: the seed queue with all fitness
facts, coverage set + curve (with its bounded-buffer recording state),
mutation masks and probe spend, the global branch-distance table, energy
scheduler weights, oracle and finding-collector state, the RNG state via
``random.Random.getstate()``, the budget consumption counters, and the
campaign loop position itself (phase, pending initial seeds, current seed,
remaining energy).

The hard guarantee (pinned by tests and CI): interrupting a campaign at
any iteration and resuming from the checkpoint produces a
:class:`~repro.core.campaign.CampaignResult` byte-identical — modulo
``wall_time`` — to the uninterrupted run.  Everything the loop reads is
either serialized here or rebuilt deterministically from it.

The prefix-snapshot state cache (§VI) is deliberately *not* part of a
checkpoint: it is a pure accelerator whose hits produce byte-identical
results to cold execution, so a resumed campaign simply rebuilds it cold
— the first post-resume visits re-learn hot prefixes and results stay
pinned to the golden fixture either way (CI runs the interrupt/resume
sweep with ``REPRO_STATE_CACHE=1`` to prove it).
"""

from __future__ import annotations

import dataclasses
import json

from repro.core.seeds import Seed

#: Schema history —
#: 1: initial complete-campaign-state format.
#: 2: streaming-oracle-bus era: findings carry severity/confidence/witness
#:    (collector state), per-oracle state may embed witness buffers (ether
#:    freeze stores the sequence that first delivered ether), and the
#:    config gained ``bug_classes`` (per-oracle campaign restriction).
#:    v1 checkpoints are refused rather than silently resumed without
#:    witness state.
SCHEMA_VERSION = 2


def canonical_json(record: dict) -> str:
    """The one canonical JSON form shared by checkpoints and the result
    store: sorted keys, fixed separators, trailing newline — identical
    state always serializes to identical bytes."""
    return json.dumps(record, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def checkpoint_fingerprint(source: str, contract: str | None,
                           config) -> str:
    """Ownership fingerprint for a standalone campaign checkpoint.

    Hashes everything that determines the campaign: the source text, the
    *contract name* (one source file can hold several contracts), and the
    full config (which includes the RNG seed).  A checkpoint whose
    fingerprint no longer matches must never be resumed.  Matrix jobs use
    :meth:`~repro.orchestrator.jobs.CampaignJob.fingerprint` instead,
    which covers the same facts through the job identity.
    """
    import hashlib

    payload = json.dumps({"source": source, "contract": contract,
                          "config": dataclasses.asdict(config)},
                         sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class CampaignState:
    """The loop position of a running campaign (part of the checkpoint)."""

    phase: str = "init"  # "init" | "main"
    #: initial-population seeds not yet executed
    pending_initial: list = dataclasses.field(default_factory=list)
    #: queue index of the currently selected parent (None = select next)
    current_index: int | None = None
    #: mutation energy remaining for the current parent
    energy: int = 0
    #: executions counter value at the last emitted checkpoint
    last_checkpoint: int = 0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "pending_initial": [s.to_dict() for s in self.pending_initial],
            "current_index": self.current_index,
            "energy": self.energy,
            "last_checkpoint": self.last_checkpoint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignState":
        current = data.get("current_index")
        return cls(
            phase=data.get("phase", "init"),
            pending_initial=[Seed.from_dict(s)
                             for s in data.get("pending_initial", ())],
            current_index=None if current is None else int(current),
            energy=int(data.get("energy", 0)),
            last_checkpoint=int(data.get("last_checkpoint", 0)),
        )


@dataclasses.dataclass
class CampaignCheckpoint:
    """Serialized mid-campaign state; see the module docstring."""

    config: dict
    rng_state: tuple
    budget: dict
    queue: list
    coverage: dict
    selector: dict
    masked: dict
    scheduler: dict
    collector: dict
    oracle_state: dict
    loop: dict
    fuzzer: str = ""
    contract: str = ""
    #: MiniSol source when known, so ``Fuzzer.resume(checkpoint)`` can
    #: recompile without external context (None for prebuilt artifacts
    #: compiled from sources the campaign never saw)
    source: str | None = None
    supported_bug_classes: list | None = None
    schema: int = SCHEMA_VERSION

    # -- capture ---------------------------------------------------------------

    @classmethod
    def capture(cls, campaign) -> "CampaignCheckpoint":
        """Snapshot a running :class:`~repro.core.fuzzer.Fuzzer`.

        Pure observation: consumes no randomness and mutates nothing, so
        emitting checkpoints cannot perturb the campaign.
        """
        supported = campaign.supported_bug_classes
        return cls(
            config=dataclasses.asdict(campaign.config),
            rng_state=campaign.rng.getstate(),
            budget=campaign.budget.state_dict(),
            queue=[seed.to_dict() for seed in campaign.queue.seeds],
            coverage=campaign.coverage.state_dict(),
            selector=campaign.selector.state_dict(),
            masked=campaign.pipeline.masked.state_dict(),
            scheduler=campaign.scheduler.state_dict(),
            collector=campaign.collector.state_dict(),
            oracle_state={oracle.bug_class.value: state
                          for oracle in campaign.oracles
                          if (state := oracle.state_dict())},
            loop=campaign._state.to_dict(),
            fuzzer=campaign.config.name,
            contract=campaign.artifact.name,
            source=campaign.artifact.source or None,
            supported_bug_classes=(
                None if supported is None
                else sorted(getattr(bc, "value", bc) for bc in supported)),
        )

    # -- restore ---------------------------------------------------------------

    def restore_into(self, campaign) -> None:
        """Install this state into a freshly constructed campaign.

        The campaign must have been built from the same contract and the
        checkpoint's config (``Fuzzer.resume`` guarantees both); the
        deployed base chain is rebuilt deterministically by construction
        and is *not* part of the checkpoint — every iteration starts from
        the post-deployment mark anyway.
        """
        state = self.rng_state
        campaign.rng.setstate((state[0], tuple(state[1]), state[2]))
        campaign.budget.restore_state(self.budget)
        for seed_data in self.queue:
            campaign.queue.add(Seed.from_dict(seed_data))
        campaign.coverage.restore_state(self.coverage)
        campaign.selector.restore_state(self.selector)
        campaign.retention.rebuild()
        campaign.pipeline.masked.restore_state(self.masked)
        campaign.scheduler.restore_state(self.scheduler)
        campaign.collector.restore_state(self.collector)
        for oracle in campaign.oracles:
            data = self.oracle_state.get(oracle.bug_class.value)
            if data:
                oracle.restore_state(data)
        campaign._state = CampaignState.from_dict(self.loop)

    # -- wire format ------------------------------------------------------------

    def to_dict(self) -> dict:
        state = self.rng_state
        return {
            "schema": self.schema,
            "fuzzer": self.fuzzer,
            "contract": self.contract,
            "source": self.source,
            "supported_bug_classes": self.supported_bug_classes,
            "config": dict(self.config),
            "rng_state": [state[0], list(state[1]), state[2]],
            "budget": dict(self.budget),
            "queue": list(self.queue),
            "coverage": dict(self.coverage),
            "selector": dict(self.selector),
            "masked": dict(self.masked),
            "scheduler": dict(self.scheduler),
            "collector": dict(self.collector),
            "oracle_state": dict(self.oracle_state),
            "loop": dict(self.loop),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCheckpoint":
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported checkpoint schema {data.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})")
        rng_state = data["rng_state"]
        return cls(
            fuzzer=data.get("fuzzer", ""),
            contract=data.get("contract", ""),
            source=data.get("source"),
            supported_bug_classes=data.get("supported_bug_classes"),
            config=dict(data["config"]),
            rng_state=(rng_state[0], tuple(rng_state[1]), rng_state[2]),
            budget=dict(data["budget"]),
            queue=list(data["queue"]),
            coverage=dict(data["coverage"]),
            selector=dict(data["selector"]),
            masked=dict(data["masked"]),
            scheduler=dict(data["scheduler"]),
            collector=dict(data["collector"]),
            oracle_state=dict(data.get("oracle_state", {})),
            loop=dict(data["loop"]),
        )

    def to_json(self) -> str:
        """Canonical JSON text — two checkpoints of identical state are
        byte-identical."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CampaignCheckpoint":
        return cls.from_dict(json.loads(text))
