"""Baseline tools: fuzzer presets and static-analyzer behavioural models.

Fuzzer baselines (sFuzz, ConFuzzius, IR-Fuzz, Smartian) are configurations
of the shared campaign loop — see :mod:`repro.core.config`.  Static
analyzers (Oyente, Mythril, Osiris, Securify, Slither) are simplified but
*behavioural* reimplementations: each runs a real analysis (depth-limited
path exploration over the bytecode CFG, or AST pattern matching) with the
capability matrix of Table I and the documented failure modes of §V-C
(Oyente/Osiris solc-version errors, Mythril timeouts on large contracts,
Slither's narrow patterns, Securify's two-class scope).
"""

from repro.baselines.static.common import StaticAnalysisResult, StaticAnalyzer
from repro.baselines.static.oyente import Oyente
from repro.baselines.static.mythril import Mythril
from repro.baselines.static.osiris import Osiris
from repro.baselines.static.securify import Securify
from repro.baselines.static.slither import Slither

STATIC_ANALYZERS = (Oyente, Mythril, Osiris, Securify, Slither)

__all__ = [
    "StaticAnalysisResult",
    "StaticAnalyzer",
    "Oyente",
    "Mythril",
    "Osiris",
    "Securify",
    "Slither",
    "STATIC_ANALYZERS",
]
