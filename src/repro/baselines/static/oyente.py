"""Oyente behavioural model.

Supports BD / IO / RE (Table I).  A shallow symbolic-execution stand-in:
depth-limited CFG path exploration with over-approximate predicates — any
block-state read that later reaches a JUMPI counts as BD, any unguarded
arithmetic counts as IO (no value reasoning → false positives on guarded
arithmetic), a gas-forwarding CALL followed by an SSTORE counts as RE.
Oyente's documented solc-version fragility appears as an error on contracts
that exceed its legacy feature envelope.
"""

from __future__ import annotations

from repro.baselines.static.common import (
    StaticAnalysisResult,
    StaticAnalyzer,
    call_forwards_gas,
    contains_in_order,
)
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass


class Oyente(StaticAnalyzer):
    name = "Oyente"
    supported = frozenset({BugClass.BD, BugClass.IO, BugClass.RE})
    path_limit = 96    # shallow exploration: misses deeply branching code
    depth_limit = 1024

    #: contracts bigger than this hit the legacy toolchain's limits (error)
    ERROR_INSTRUCTION_LIMIT = 6000

    #: Oyente samples a bounded number of symbolic paths per contract; the
    #: rest of the state space is silently skipped (its main FN source)
    SAMPLE_LIMIT = 7

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        if artifact.instruction_count > self.ERROR_INSTRUCTION_LIMIT:
            result.error = True
            return
        sampled = 0
        for path in self.explore_paths(artifact.runtime_code, result):
            sampled += 1
            if sampled > self.SAMPLE_LIMIT:
                return
            if (contains_in_order(path, Op.TIMESTAMP, Op.JUMPI)
                    or contains_in_order(path, Op.NUMBER, Op.JUMPI)):
                result.findings.add(BugClass.BD)
            # Over-approximate IO: arithmetic on values derived from
            # calldata, with no value reasoning at all.
            if contains_in_order(path, Op.CALLDATALOAD, Op.ADD) \
                    or contains_in_order(path, Op.CALLDATALOAD, Op.SUB) \
                    or contains_in_order(path, Op.CALLDATALOAD, Op.MUL):
                result.findings.add(BugClass.IO)
            for index, ins in enumerate(path):
                if ins.opcode == Op.CALL and call_forwards_gas(path, index):
                    if any(later.opcode == Op.SSTORE
                           for later in path[index + 1:]):
                        result.findings.add(BugClass.RE)
