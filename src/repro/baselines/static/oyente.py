"""Oyente behavioural model.

Supports BD / IO / RE (Table I).  A shallow symbolic-execution stand-in:
depth-limited CFG path exploration with over-approximate predicates — any
block-state read that later reaches a JUMPI counts as BD, any unguarded
arithmetic counts as IO (no value reasoning → false positives on guarded
arithmetic), a gas-forwarding CALL followed by an SSTORE counts as RE.
Oyente's documented solc-version fragility appears as an error on contracts
that exceed its legacy feature envelope.
"""

from __future__ import annotations

from repro.baselines.static.common import (
    StaticAnalysisResult,
    StaticAnalyzer,
    block_dep_branch,
    reentrant_call,
    tainted_arithmetic,
)
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass


class Oyente(StaticAnalyzer):
    name = "Oyente"
    supported = frozenset({BugClass.BD, BugClass.IO, BugClass.RE})
    uses_bytecode_surface = True
    path_limit = 96    # shallow exploration: misses deeply branching code
    depth_limit = 1024

    #: contracts bigger than this hit the legacy toolchain's limits (error)
    ERROR_INSTRUCTION_LIMIT = 6000

    #: Oyente samples a bounded number of symbolic paths per contract; the
    #: rest of the state space is silently skipped (its main FN source)
    SAMPLE_LIMIT = 7

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        if artifact.instruction_count > self.ERROR_INSTRUCTION_LIMIT:
            result.error = True
            return
        sampled = 0
        for path in self.explore_paths(artifact.runtime_code, result):
            sampled += 1
            if sampled > self.SAMPLE_LIMIT:
                return
            if block_dep_branch(path):
                result.findings.add(BugClass.BD)
            # Over-approximate IO: arithmetic on values derived from
            # calldata, with no value reasoning at all.
            if tainted_arithmetic(path, (Op.ADD, Op.SUB, Op.MUL)):
                result.findings.add(BugClass.IO)
            if reentrant_call(path):
                result.findings.add(BugClass.RE)
