"""Static-analyzer behavioural models (see package docstring one level up)."""

from repro.baselines.static.common import StaticAnalysisResult, StaticAnalyzer
from repro.baselines.static.oyente import Oyente
from repro.baselines.static.mythril import Mythril
from repro.baselines.static.osiris import Osiris
from repro.baselines.static.securify import Securify
from repro.baselines.static.slither import Slither

__all__ = [
    "StaticAnalysisResult",
    "StaticAnalyzer",
    "Oyente",
    "Mythril",
    "Osiris",
    "Securify",
    "Slither",
]
