"""Osiris behavioural model.

The Oyente derivative specialized for integer bugs (Table I: BD / IO / RE).
Its IO check adds a taint discipline Oyente lacks: arithmetic only counts
when a calldata word reaches it *without* an intervening comparison guard
on the same path — so SafeMath-style ``require(a + b >= a)`` patterns and
bounded loop arithmetic stop producing alarms, at the cost of missing some
multiplication overflows (its documented weakness).
"""

from __future__ import annotations

from repro.baselines.static.common import (
    StaticAnalysisResult,
    StaticAnalyzer,
    block_dep_branch,
    reentrant_call,
)
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass

_ARITH = (Op.ADD, Op.SUB)


class Osiris(StaticAnalyzer):
    name = "Osiris"
    supported = frozenset({BugClass.BD, BugClass.IO, BugClass.RE})
    uses_bytecode_surface = True
    path_limit = 128
    depth_limit = 2048

    ERROR_INSTRUCTION_LIMIT = 6000

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        if artifact.instruction_count > self.ERROR_INSTRUCTION_LIMIT:
            result.error = True
            return
        for path in self.explore_paths(artifact.runtime_code, result):
            if block_dep_branch(path):
                result.findings.add(BugClass.BD)
            self._check_io(path, result)
            if reentrant_call(path):
                result.findings.add(BugClass.RE)

    def _check_io(self, path, result: StaticAnalysisResult) -> None:
        # Pass 1: is there a relational guard anywhere after calldata enters
        # the path?  (Osiris' constraint pruning treats the arithmetic as
        # range-checked whether the comparison precedes or — SafeMath-style
        # — follows it.  The dispatcher's calldatasize LT precedes any
        # CALLDATALOAD and is therefore ignored.)
        saw_calldata = False
        guarded = False
        arith_present = False
        for ins in path:
            if ins.opcode == Op.CALLDATALOAD:
                saw_calldata = True
            elif ins.opcode in (Op.LT, Op.GT, Op.SLT, Op.SGT) \
                    and saw_calldata:
                guarded = True
            elif ins.opcode in _ARITH and saw_calldata:
                arith_present = True
        if arith_present and not guarded:
            result.findings.add(BugClass.IO)
