"""Mythril behavioural model.

The broadest static tool (Table I: everything except EF).  Deeper path
exploration than Oyente — and exactly because of that, it *times out* on
contracts whose CFG produces too many paths (the paper reports 72 timeout
cases, concentrated in large contracts).
"""

from __future__ import annotations

from repro.baselines.static.common import (
    StaticAnalysisResult,
    StaticAnalyzer,
    block_dep_branch,
    call_forwards_gas,
    contains_in_order,
    reentrant_call,
    tainted_arithmetic,
)
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass


class Mythril(StaticAnalyzer):
    name = "Mythril"
    supported = frozenset({
        BugClass.BD, BugClass.UD, BugClass.IO, BugClass.RE, BugClass.US,
        BugClass.SE, BugClass.TO, BugClass.UE,
    })
    uses_bytecode_surface = True
    path_limit = 192     # deeper than Oyente, but path explosion → timeout
    depth_limit = 4096
    # symbolic work budget: constraint solving makes Mythril spend minutes
    # per path, so contracts above a modest total path length time out —
    # the paper reports 72 timeouts on D2
    instruction_budget = 320

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        for path in self.explore_paths(artifact.runtime_code, result):
            ops = [ins.opcode for ins in path]
            if block_dep_branch(path):
                result.findings.add(BugClass.BD)
            if Op.DELEGATECALL in ops and not self._caller_guarded(path):
                result.findings.add(BugClass.UD)
            if tainted_arithmetic(path, (Op.ADD, Op.SUB)):
                result.findings.add(BugClass.IO)
            if Op.SELFDESTRUCT in ops and not self._caller_guarded(path):
                result.findings.add(BugClass.US)
            if contains_in_order(path, Op.BALANCE, Op.EQ):
                result.findings.add(BugClass.SE)
            if Op.ORIGIN in ops and (Op.EQ in ops or Op.JUMPI in ops):
                result.findings.add(BugClass.TO)
            if reentrant_call(path):
                result.findings.add(BugClass.RE)
            for index, ins in enumerate(path):
                # unchecked call: success flag immediately discarded
                if ins.opcode == Op.CALL and index + 1 < len(path) \
                        and path[index + 1].opcode == Op.POP:
                    result.findings.add(BugClass.UE)

    @staticmethod
    def _caller_guarded(path) -> bool:
        """CALLER feeding an EQ before the dangerous op — modifier shape."""
        return contains_in_order(path, Op.CALLER, Op.EQ)
