"""Securify behavioural model.

Datalog-pattern analysis over bytecode; per Table I it covers RE and UE
only.  Patterns are *compliance/violation* style: a gas-forwarding CALL
with a later storage write violates the no-write-after-call property (RE);
a CALL whose result is immediately dropped violates handled-exception (UE).
"""

from __future__ import annotations

from repro.baselines.static.common import (
    StaticAnalysisResult,
    StaticAnalyzer,
    call_forwards_gas,
    reentrant_call,
)
from repro.evm.opcodes import Op
from repro.oracles.base import BugClass


class Securify(StaticAnalyzer):
    name = "Securify"
    supported = frozenset({BugClass.RE, BugClass.UE})
    uses_bytecode_surface = True
    path_limit = 160
    depth_limit = 4096

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        for path in self.explore_paths(artifact.runtime_code, result):
            if reentrant_call(path):
                result.findings.add(BugClass.RE)
            for index, ins in enumerate(path):
                # handled-exception pattern: only `send` (2300-gas) calls —
                # gas-forwarding low-level calls are out of the property's
                # scope, a documented source of Securify false negatives
                if ins.opcode == Op.CALL and index + 1 < len(path) \
                        and path[index + 1].opcode == Op.POP \
                        and not call_forwards_gas(path, index):
                    result.findings.add(BugClass.UE)
