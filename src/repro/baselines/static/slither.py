"""Slither behavioural model.

AST-level detectors (Table I: everything except IO).  Patterns are narrow
and structural, exactly like Slither's real detectors: they match the
canonical shape of each bug and miss semantically equivalent variants —
which is where its Table III false negatives come from — but they see the
whole AST, so reachability gates never hide a bug from them.
"""

from __future__ import annotations

from repro.baselines.static.common import StaticAnalysisResult, StaticAnalyzer
from repro.lang import ast_nodes as ast
from repro.oracles.base import BugClass


class Slither(StaticAnalyzer):
    name = "Slither"
    supported = frozenset({
        BugClass.BD, BugClass.UD, BugClass.EF, BugClass.RE, BugClass.US,
        BugClass.SE, BugClass.TO, BugClass.UE,
    })

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        contract = artifact.contract_ast
        for fn in contract.functions:
            self._check_function(contract, fn, result)
        self._check_ether_freeze(contract, result)

    # -- per-function patterns ---------------------------------------------------

    def _check_function(self, contract, fn, result) -> None:
        guarded = bool(fn.modifiers)
        statements = list(self.walk_statements(fn.body))

        # timestamp detector: Slither's `timestamp` check flags
        # block.timestamp comparisons used in *require-style* guards; plain
        # if-branching on block state slips through (its Table III FNs)
        for stmt in statements:
            if isinstance(stmt, (ast.Require, ast.AssertStmt)):
                for expr in self.walk_expressions(stmt.cond):
                    if isinstance(expr, ast.EnvRead) and \
                            expr.what == "block.timestamp":
                        result.findings.add(BugClass.BD)
        for cond in self.conditions_of(fn):
            for expr in self.walk_expressions(cond):
                if isinstance(expr, ast.EnvRead) and \
                        expr.what == "tx.origin":
                    result.findings.add(BugClass.TO)

        param_names = {p.name for p in fn.params}
        # controlled-delegatecall and suicidal detectors: both only match
        # the dangerous statement at the *top level* of the function body —
        # conditionally nested occurrences are assumed guarded (a narrow,
        # FN-prone approximation that mirrors the real detectors' precision)
        for stmt in fn.body.statements:
            for expr in self.walk_expressions(stmt) \
                    if not isinstance(stmt, (ast.If, ast.While, ast.For)) \
                    else ():
                if isinstance(expr, ast.Delegatecall) and not guarded:
                    target = expr.target
                    if isinstance(target, ast.Ident) and \
                            target.name in param_names:
                        result.findings.add(BugClass.UD)
            if isinstance(stmt, ast.SelfDestructStmt) and not guarded \
                    and not self._has_sender_require(statements):
                result.findings.add(BugClass.US)

        # incorrect-equality: strict balance comparison, flagged only in
        # non-payable functions (payable flows are assumed to manage the
        # balance deliberately)
        if not fn.payable:
            for stmt in statements:
                for expr in self.walk_expressions(stmt):
                    if isinstance(expr, ast.Binary) and expr.op == "==":
                        if self._reads_balance(expr.left) or \
                                self._reads_balance(expr.right):
                            result.findings.add(BugClass.SE)

        for stmt in statements:
            # unchecked-send: only plain `send` statements; low-level
            # call.value is reported by a separate informational detector
            # the comparison methodology does not count
            if isinstance(stmt, ast.ExprStmt) and isinstance(
                    stmt.expr, ast.Send):
                result.findings.add(BugClass.UE)

        # narrow RE pattern: call.value followed by a later write to state
        # in the same function body (statement order approximation)
        self._check_reentrancy(contract, statements, result)

    def _check_reentrancy(self, contract, statements, result) -> None:
        state_names = {v.name for v in contract.state_vars}
        seen_call_value = False
        for stmt in statements:
            has_call_value = any(
                isinstance(e, ast.CallValue)
                for e in self.walk_expressions(stmt))
            if has_call_value:
                seen_call_value = True
                continue
            if seen_call_value and isinstance(stmt, ast.Assign):
                target = stmt.target
                name = target.name if isinstance(target, ast.Ident) else \
                    getattr(target, "base", None)
                if name in state_names:
                    result.findings.add(BugClass.RE)

    @staticmethod
    def _reads_balance(expr) -> bool:
        for sub in StaticAnalyzer.walk_expressions(expr):
            if isinstance(sub, ast.BalanceOf):
                return True
            if isinstance(sub, ast.EnvRead) and sub.what == "this.balance":
                return True
        return False

    @staticmethod
    def _has_sender_require(statements) -> bool:
        for stmt in statements:
            if isinstance(stmt, ast.Require):
                for expr in StaticAnalyzer.walk_expressions(stmt.cond):
                    if isinstance(expr, ast.EnvRead) and \
                            expr.what == "msg.sender":
                        return True
        return False

    # -- whole-contract pattern ------------------------------------------------------

    def _check_ether_freeze(self, contract, result) -> None:
        has_payable = any(fn.payable for fn in contract.functions)
        if not has_payable:
            return
        for fn in contract.functions:
            for stmt in self.walk_statements(fn.body):
                if isinstance(stmt, (ast.Transfer, ast.SelfDestructStmt)):
                    return
                for expr in self.walk_expressions(stmt):
                    if isinstance(expr, (ast.Send, ast.CallValue,
                                         ast.Delegatecall)):
                        return
        result.findings.add(BugClass.EF)
