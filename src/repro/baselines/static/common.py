"""Shared infrastructure for the static-analyzer behavioural models.

Each tool model runs a *real* (if simplified) analysis:

* bytecode tools (Oyente, Osiris, Mythril, Securify) explore CFG paths with
  tool-specific depth/path budgets — exceeding the budget is how Mythril's
  documented timeouts on path-heavy contracts arise;
* Slither works on the MiniSol AST with narrow structural patterns.

The base class exposes the path explorer and small AST-walking helpers the
concrete tools share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.surface import surface_for
from repro.evm.opcodes import Op
from repro.lang import ast_nodes as ast
from repro.oracles.base import BugClass


@dataclass
class StaticAnalysisResult:
    """Outcome of one static tool on one contract."""

    tool: str
    contract: str
    findings: set = field(default_factory=set)  # set[BugClass]
    timeout: bool = False
    error: bool = False
    paths_explored: int = 0

    @property
    def ok(self) -> bool:
        return not (self.timeout or self.error)


class StaticAnalyzer:
    """Base class; concrete tools override ``_analyze``."""

    name: str = "static"
    #: bug classes the tool supports (Table I row)
    supported: frozenset = frozenset()
    #: bytecode tools filter their findings through the shared
    #: :class:`~repro.analysis.surface.VulnerabilitySurface`: a class the
    #: surface *proves* impossible (whole-code opcode absence) cannot
    #: survive as a finding.  Semantically a no-op for the current pattern
    #: set — every pattern implies the opcodes the proof checks — but it
    #: pins the tools to the same soundness baseline as the fuzzer's
    #: oracle pruning.  AST tools (Slither) leave this off.
    uses_bytecode_surface: bool = False
    #: maximum CFG paths explored before the tool gives up (timeout)
    path_limit: int = 256
    #: maximum instructions along one path
    depth_limit: int = 4096
    #: total symbolic work budget (sum of explored path lengths); None = off.
    #: Models symbolic executors whose per-instruction constraint solving
    #: makes path-heavy contracts time out (Mythril's failure mode).
    instruction_budget: int | None = None

    def analyze(self, artifact, contract_name: str | None = None
                ) -> StaticAnalysisResult:
        """Run the tool on a compiled contract artifact."""
        result = StaticAnalysisResult(
            tool=self.name,
            contract=contract_name or artifact.name)
        self._work = 0
        try:
            self._analyze(artifact, result)
        except _AnalysisTimeout:
            result.timeout = True
            result.findings.clear()
        result.findings &= set(self.supported)
        if self.uses_bytecode_surface and result.ok:
            surface = surface_for(artifact.runtime_code)
            result.findings = {bc for bc in result.findings
                               if surface.is_live(bc)}
        return result

    def _analyze(self, artifact, result: StaticAnalysisResult) -> None:
        raise NotImplementedError

    # -- CFG path exploration ------------------------------------------------------

    def explore_paths(self, code: bytes, result: StaticAnalysisResult):
        """Yield opcode-sequence paths (lists of Instruction) via bounded
        DFS from the entry block.  Raises :class:`_AnalysisTimeout` when the
        path budget is exhausted — the tool's documented failure mode."""
        cfg = build_cfg(code)
        if not cfg.blocks:
            return
        entry = min(cfg.blocks)
        stack = [(entry, [], frozenset())]
        while stack:
            block_pc, prefix, visited = stack.pop()
            block = cfg.blocks.get(block_pc)
            if block is None:
                continue
            path = prefix + block.instructions
            if len(path) > self.depth_limit:
                continue
            successors = [s for s in block.successors if s not in visited]
            if not successors:
                result.paths_explored += 1
                self._work += len(path)
                if result.paths_explored > self.path_limit:
                    raise _AnalysisTimeout()
                if self.instruction_budget is not None \
                        and self._work > self.instruction_budget:
                    raise _AnalysisTimeout()
                yield path
                continue
            for succ in successors:
                stack.append((succ, path, visited | {block_pc}))

    # -- AST helpers --------------------------------------------------------------------

    @staticmethod
    def walk_expressions(node):
        """Yield every Expr node under ``node`` (statement or expression)."""
        if isinstance(node, ast.Expr):
            yield node
        for value in vars(node).values():
            if isinstance(value, (ast.Expr, ast.Stmt)):
                yield from StaticAnalyzer.walk_expressions(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.Expr, ast.Stmt)):
                        yield from StaticAnalyzer.walk_expressions(item)

    @staticmethod
    def walk_statements(node):
        """Yield every Stmt under ``node`` (inclusive), in source order."""
        if isinstance(node, ast.Stmt):
            yield node
        for value in vars(node).values():
            if isinstance(value, ast.Stmt):
                yield from StaticAnalyzer.walk_statements(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Stmt):
                        yield from StaticAnalyzer.walk_statements(item)

    @staticmethod
    def conditions_of(fn: ast.FunctionDef):
        """Yield the condition expressions of every branch construct."""
        for stmt in StaticAnalyzer.walk_statements(fn.body):
            if isinstance(stmt, (ast.If, ast.While, ast.Require,
                                 ast.AssertStmt)):
                yield stmt.cond
            elif isinstance(stmt, ast.For) and stmt.cond is not None:
                yield stmt.cond


class _AnalysisTimeout(Exception):
    """Internal: the path budget ran out."""


# -- small opcode-path predicates shared by the bytecode tools -----------------


def path_opcodes(path) -> list:
    """Opcode list of a path."""
    return [ins.opcode for ins in path]


def contains_in_order(path, first: int, second: int) -> bool:
    """True when opcode ``first`` occurs before ``second`` on the path."""
    seen_first = False
    for ins in path:
        if ins.opcode == first:
            seen_first = True
        elif seen_first and ins.opcode == second:
            return True
    return False


def call_forwards_gas(path, index: int) -> bool:
    """True when the CALL at ``path[index]`` forwards more than the 2300
    stipend (its gas operand is the preceding PUSH's immediate, or GAS)."""
    if index == 0:
        return False
    prev = path[index - 1]
    if prev.opcode == Op.GAS:
        return True
    if 0x60 <= prev.opcode <= 0x7F and prev.operand is not None:
        return prev.operand > 2300
    return False


def block_dep_branch(path) -> bool:
    """Block-dependence pattern: a block-state read reaching a JUMPI."""
    return (contains_in_order(path, Op.TIMESTAMP, Op.JUMPI)
            or contains_in_order(path, Op.NUMBER, Op.JUMPI))


def tainted_arithmetic(path, arith_ops) -> bool:
    """Over-approximate IO pattern: a calldata word preceding arithmetic
    on the path (no value reasoning — the tools' shared FP source)."""
    return any(contains_in_order(path, Op.CALLDATALOAD, op)
               for op in arith_ops)


def reentrant_call(path) -> bool:
    """No-write-after-call violation: a gas-forwarding CALL with a later
    SSTORE on the same path — the RE pattern every bytecode tool shares."""
    for index, ins in enumerate(path):
        if ins.opcode == Op.CALL and call_forwards_gas(path, index) \
                and any(later.opcode == Op.SSTORE
                        for later in path[index + 1:]):
            return True
    return False
