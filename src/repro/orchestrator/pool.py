"""Spawn-safe multiprocessing pool for campaign jobs.

One OS process per in-flight job, at most ``workers`` alive at once.  The
scheduler owns the lifecycle: it enforces a per-job wall-clock timeout by
terminating the worker, and a worker that dies (crash, OOM kill) yields an
``error`` outcome instead of taking the whole matrix down.  Results travel
back as plain dicts over a queue, so only :mod:`repro.orchestrator.jobs`
data ever crosses the process boundary.

``workers <= 1`` with no timeout runs jobs inline in the calling process —
same code path as a worker, no subprocesses — which is both the debugging
mode and the reference the determinism tests compare parallel runs
against.

"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback

from repro.compiler.codegen import compile_source
from repro.core.campaign import CampaignResult
from repro.core.fuzzer import Fuzzer
from repro.orchestrator.jobs import CampaignJob, JobOutcome

#: scheduler poll interval (seconds)
_POLL = 0.02
#: grace period for draining a finished worker's queued result
_DRAIN_GRACE = 2.0


def resolve_workers(workers: int | None) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def execute_job(job: CampaignJob) -> JobOutcome:
    """Run one campaign to completion in this process."""
    start = time.perf_counter()
    try:
        artifact = compile_source(job.source, job.contract)
        result = Fuzzer(artifact, job.build_config(),
                        job.supported_set()).run()
        return JobOutcome(job=job, status="ok", result=result,
                          elapsed=time.perf_counter() - start)
    except Exception:
        return JobOutcome(job=job, status="error",
                          error=traceback.format_exc(),
                          elapsed=time.perf_counter() - start)


def _worker_main(job_data: dict, results_queue) -> None:
    """Child-process entry point (module-level: spawn picklable)."""
    outcome = execute_job(CampaignJob.from_dict(job_data))
    results_queue.put({
        "job_id": outcome.job.job_id,
        "status": outcome.status,
        "result": outcome.result.to_dict() if outcome.ok else None,
        "error": outcome.error,
        "elapsed": outcome.elapsed,
    })


def run_jobs(jobs, workers: int | None = None,
             job_timeout: float | None = None,
             progress=None) -> list:
    """Execute every job; returns :class:`JobOutcome` per job, in job order.

    ``progress`` is an optional ``callback(outcome)`` invoked as each job
    settles (out of order under parallelism).
    """
    jobs = list(jobs)
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        # the scheduler tracks processes by job_id; a duplicate would
        # silently orphan one worker and double-report the other's outcome
        raise ValueError("duplicate job ids passed to run_jobs: "
                         + ", ".join(sorted({i for i in ids
                                             if ids.count(i) > 1})))
    workers = resolve_workers(workers)
    # Inline execution cannot enforce a wall-clock timeout or crash
    # isolation, so it is reserved for the explicit workers<=1 debugging
    # mode with no timeout requested.
    if job_timeout is None and workers <= 1:
        outcomes = []
        for job in jobs:
            outcome = execute_job(job)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes
    return _run_parallel(jobs, workers, job_timeout, progress)


def _run_parallel(jobs, workers, job_timeout, progress) -> list:
    ctx = multiprocessing.get_context("spawn")
    results_queue = ctx.Queue()
    by_id = {job.job_id: job for job in jobs}
    pending = list(jobs)
    running: dict = {}  # job_id -> (process, monotonic start)
    settled: dict = {}  # job_id -> JobOutcome

    def settle(outcome: JobOutcome) -> None:
        # first outcome wins: a result racing a timeout termination must
        # not settle the same job twice (double progress callbacks and a
        # final state contradicting the live log)
        if outcome.job.job_id in settled:
            return
        settled[outcome.job.job_id] = outcome
        if progress is not None:
            progress(outcome)

    def drain(block_for: float = 0.0, until: str | None = None) -> None:
        """Dequeue available results; with ``until``, keep polling up to
        ``block_for`` seconds until that job settles."""
        deadline = time.monotonic() + block_for
        while True:
            if until is not None and until in settled:
                return
            try:
                wire = results_queue.get_nowait()
            except queue_mod.Empty:
                if time.monotonic() >= deadline:
                    return
                time.sleep(_POLL)
                continue
            except Exception:
                # terminating a worker mid-put can leave a mangled item in
                # the shared queue (the documented multiprocessing caveat);
                # drop it — the owning job settles via the timeout or
                # crash path instead of taking the whole matrix down.
                # Deadline check + sleep as in the Empty branch: a
                # persistently-failing read must not busy-loop forever.
                if time.monotonic() >= deadline:
                    return
                time.sleep(_POLL)
                continue
            try:
                job = by_id[wire["job_id"]]
                outcome = JobOutcome(
                    job=job, status=wire["status"],
                    result=(CampaignResult.from_dict(wire["result"])
                            if wire["status"] == "ok" else None),
                    error=wire["error"], elapsed=wire["elapsed"])
            except Exception:
                continue  # mangled wire record (terminated mid-put):
                # the owning job settles via the crash/timeout path
            settle(outcome)

    try:
        while pending or running:
            while pending and len(running) < workers:
                job = pending.pop(0)
                proc = ctx.Process(target=_worker_main,
                                   args=(job.to_dict(), results_queue),
                                   daemon=True)
                proc.start()
                running[job.job_id] = (proc, time.monotonic())

            drain()
            for job_id in list(running):
                proc, started = running[job_id]
                # per-job timestamp: the worker-exit branch below can
                # block in drain(), which would stale a loop-wide `now`
                now = time.monotonic()
                if job_id in settled:
                    proc.join()
                    del running[job_id]
                elif (job_timeout is not None
                        and now - started > job_timeout
                        and proc.is_alive()):
                    proc.terminate()
                    proc.join()
                    del running[job_id]
                    settle(JobOutcome(
                        job=by_id[job_id], status="timeout",
                        error=f"job exceeded {job_timeout:.1f}s wall-clock "
                              f"timeout", elapsed=now - started))
                elif not proc.is_alive():
                    # worker exited: a clean exit (code 0) always queued a
                    # result, so wait briefly for it to arrive; a nonzero
                    # exit (crash, OOM kill) never will, so skip the grace
                    # and only collect what is already queued
                    if proc.exitcode == 0:
                        drain(block_for=_DRAIN_GRACE, until=job_id)
                    else:
                        drain()
                    proc.join()
                    del running[job_id]
                    if job_id not in settled:
                        settle(JobOutcome(
                            job=by_id[job_id], status="error",
                            error=f"worker died with exit code "
                                  f"{proc.exitcode} before reporting a "
                                  f"result", elapsed=now - started))
            time.sleep(_POLL)
    finally:
        for proc, _ in running.values():  # interrupted: reap children
            proc.terminate()
            proc.join()
        results_queue.close()

    return [settled[job.job_id] for job in jobs]
