"""Backward-compatibility shim: the scheduler moved to
:mod:`repro.orchestrator.backends`.

The single spawn-per-job pool this module used to implement became one of
three pluggable execution backends (inline / spawn / pool); the public
entry points — :func:`run_jobs`, :func:`execute_job`,
:func:`resolve_workers` — keep working from here unchanged.
"""

from __future__ import annotations

from repro.orchestrator.backends import (
    BACKENDS,
    backend_for,
    create_backend,
    execute_job,
    resolve_workers,
    run_jobs,
)

__all__ = [
    "BACKENDS",
    "backend_for",
    "create_backend",
    "execute_job",
    "resolve_workers",
    "run_jobs",
]
