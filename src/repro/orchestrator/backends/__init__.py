"""Pluggable execution backends for the campaign orchestrator.

Three strategies for pushing a batch of :class:`CampaignJob`s through the
machine, all settling byte-identical results:

``inline``
    everything in the calling process — the debugging mode and the
    determinism reference; no isolation, no timeouts.
``spawn``
    one OS process per job — maximum isolation, pays interpreter boot +
    import + compile per cell.
``pool`` (default)
    persistent workers pulling jobs from the scheduler, each with a warm
    per-process compile cache — amortizes startup and compilation while
    keeping spawn's timeout/crash guarantees via kill-and-respawn.

``create_backend(None, ...)`` auto-selects: inline for the explicit
single-worker no-timeout debugging mode, otherwise the pool.
"""

from __future__ import annotations

from repro.orchestrator.backends.base import (
    DEFAULT_SWEEP,
    ExecutionBackend,
    SchedulerCore,
    execute_job,
    resolve_workers,
)
from repro.orchestrator.backends.inline import InlineBackend
from repro.orchestrator.backends.pool import PoolBackend
from repro.orchestrator.backends.spawn import SpawnBackend

#: registry: CLI choice / ``run_matrix(backend=...)`` name -> class
BACKENDS = {
    InlineBackend.name: InlineBackend,
    SpawnBackend.name: SpawnBackend,
    PoolBackend.name: PoolBackend,
}

DEFAULT_BACKEND = PoolBackend.name


def backend_for(workers: int | None = None,
                job_timeout: float | None = None) -> str:
    """Auto-selected backend name: inline for the single-worker
    no-timeout debugging mode (no subprocesses), otherwise the pool."""
    if job_timeout is None and resolve_workers(workers) <= 1:
        return InlineBackend.name
    return DEFAULT_BACKEND


def create_backend(name: str | None = None, *, workers: int | None = None,
                   job_timeout: float | None = None,
                   recycle_after: int | None = None,
                   sweep_interval: float | None = None,
                   checkpoint_every: int | None = None,
                   checkpoint_dir=None,
                   telemetry: bool = False,
                   heartbeat_every: float | None = None,
                   heartbeat=None) -> ExecutionBackend:
    """Instantiate a backend by name (``None`` = auto, see
    :func:`backend_for`)."""
    if name is None:
        name = backend_for(workers, job_timeout)
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown execution backend {name!r}: expected "
                         f"one of {', '.join(sorted(BACKENDS))}") from None
    return cls(workers=workers, job_timeout=job_timeout,
               recycle_after=recycle_after, sweep_interval=sweep_interval,
               checkpoint_every=checkpoint_every,
               checkpoint_dir=checkpoint_dir,
               telemetry=telemetry, heartbeat_every=heartbeat_every,
               heartbeat=heartbeat)


def run_jobs(jobs, workers: int | None = None,
             job_timeout: float | None = None, progress=None,
             backend: str | None = None, recycle_after: int | None = None,
             sweep_interval: float | None = None,
             checkpoint_every: int | None = None,
             checkpoint_dir=None, telemetry: bool = False,
             heartbeat_every: float | None = None, heartbeat=None) -> list:
    """Execute every job; returns :class:`JobOutcome` per job, in job
    order (one-call convenience over :func:`create_backend`)."""
    engine = create_backend(backend, workers=workers,
                            job_timeout=job_timeout,
                            recycle_after=recycle_after,
                            sweep_interval=sweep_interval,
                            checkpoint_every=checkpoint_every,
                            checkpoint_dir=checkpoint_dir,
                            telemetry=telemetry,
                            heartbeat_every=heartbeat_every,
                            heartbeat=heartbeat)
    return engine.run(jobs, progress=progress)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_SWEEP",
    "ExecutionBackend",
    "InlineBackend",
    "PoolBackend",
    "SchedulerCore",
    "SpawnBackend",
    "backend_for",
    "create_backend",
    "execute_job",
    "resolve_workers",
    "run_jobs",
]
