"""The inline backend: every job in the calling process.

No subprocesses, no isolation, no timeouts — this is the debugging mode
and the reference the determinism guard compares the process-based
backends against.  It still compiles through the process-local compile
cache, so repeated cells over the same contract amortize compilation
exactly like a pool worker does.
"""

from __future__ import annotations

from repro.orchestrator.backends.base import (
    ExecutionBackend,
    execute_with_cache_delta,
    heartbeat_wire,
)
from repro.telemetry.progress import TelemetrySession


class InlineBackend(ExecutionBackend):
    name = "inline"

    def __init__(self, workers=None, job_timeout=None, recycle_after=None,
                 sweep_interval=None, checkpoint_every=None,
                 checkpoint_dir=None, telemetry=False,
                 heartbeat_every=None, heartbeat=None) -> None:
        # one logical worker regardless of the requested count
        super().__init__(workers=1, job_timeout=job_timeout,
                         recycle_after=recycle_after,
                         sweep_interval=sweep_interval,
                         checkpoint_every=checkpoint_every,
                         checkpoint_dir=checkpoint_dir,
                         telemetry=telemetry,
                         heartbeat_every=heartbeat_every,
                         heartbeat=heartbeat)
        if self.job_timeout is not None:
            raise ValueError(
                "the inline backend cannot enforce a wall-clock job "
                "timeout (nothing to kill); use the spawn or pool backend")

    def _run(self, jobs, progress) -> list:
        # with no worker process, heartbeats flow straight from the
        # in-process emitter to the scheduler-side callback
        sink = None
        if self.telemetry and self.heartbeat is not None:
            def sink(snapshot):
                self.heartbeat(heartbeat_wire(snapshot))

        outcomes = []
        for job in jobs:
            transport = self.checkpoint_transport(job) or {}
            if self.telemetry:
                with TelemetrySession(
                        job.job_id, heartbeat_sink=sink,
                        heartbeat_every=self.heartbeat_every) as session:
                    outcome, delta = execute_with_cache_delta(
                        job, checkpoint_every=transport.get("every"),
                        checkpoint_path=transport.get("path"))
                outcome.telemetry = session.delta
                self._absorb_telemetry(session.delta)
            else:
                outcome, delta = execute_with_cache_delta(
                    job, checkpoint_every=transport.get("every"),
                    checkpoint_path=transport.get("path"))
            self._absorb_cache_stats(delta)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes
