"""Shared scheduler machinery for the pluggable execution backends.

Three pieces live here because every backend needs them:

* :func:`execute_job` — run one campaign to completion in the current
  process, compiling through the process-local compile cache
  (:func:`repro.compiler.compile_cached`);
* :class:`ExecutionBackend` — the protocol a backend implements (validate
  the batch, run it, expose run-level ``stats``);
* :class:`SchedulerCore` — the result-side bookkeeping the process-based
  backends (spawn, pool) share: the spawn context, the shared results
  queue, first-wins settlement, and a *blocking* drain that sleeps in
  ``Queue.get(timeout=...)`` instead of spinning on a poll interval.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback

from repro.compiler.cache import compile_cache_stats, compile_cached
from repro.core.fuzzer import Fuzzer
from repro.orchestrator.jobs import CampaignJob, JobOutcome
from repro.telemetry import metrics as _metrics
from repro.telemetry.progress import (
    DEFAULT_HEARTBEAT_EVERY,
    TelemetrySession,
)

#: default scheduler sweep interval (seconds): the upper bound on how long
#: the scheduler blocks waiting for a result before checking timeouts and
#: dead workers.  Configurable per backend via ``sweep_interval``.
DEFAULT_SWEEP = 0.05

#: grace period for draining a cleanly-exited worker's queued result
DRAIN_GRACE = 2.0


def resolve_workers(workers: int | None) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def execute_job(job: CampaignJob, checkpoint_every: int | None = None,
                checkpoint_path=None) -> JobOutcome:
    """Run one campaign to completion in this process.

    Compilation goes through the process-local compile cache, so a
    long-lived worker executing many jobs over the same contract compiles
    it once.

    With ``checkpoint_every``/``checkpoint_path`` the campaign persists a
    mid-flight checkpoint to ``checkpoint_path`` every N executions, and
    — when a valid checkpoint (matching the job's fingerprint) is already
    there — *resumes* from it instead of starting over.  The engine's
    determinism guarantee makes the resumed result byte-identical, so
    cached results and resumed results are interchangeable.  The
    checkpoint is consumed on completion."""
    from repro.orchestrator.store import CheckpointSession

    start = time.perf_counter()
    try:
        artifact = compile_cached(job.source, job.contract)
        fuzzer = None
        session = None
        if checkpoint_path is not None:
            session = CheckpointSession(checkpoint_path, job.fingerprint(),
                                        checkpoint_every)
            checkpoint = session.load()
            if checkpoint is not None:
                fuzzer = Fuzzer.resume(checkpoint, artifact=artifact)
        if fuzzer is None:
            fuzzer = Fuzzer(artifact, job.build_config(),
                            job.supported_set())
        result = fuzzer.run(**(session.run_kwargs() if session else {}))
        if session is not None:
            session.complete()
        return JobOutcome(job=job, status="ok", result=result,
                          elapsed=time.perf_counter() - start)
    except Exception:
        return JobOutcome(job=job, status="error",
                          error=traceback.format_exc(),
                          elapsed=time.perf_counter() - start)


def execute_with_cache_delta(job: CampaignJob,
                             checkpoint_every: int | None = None,
                             checkpoint_path=None) -> tuple:
    """Execute one job and measure the compile-cache hit/miss delta it
    caused; every backend reports these deltas into its run stats."""
    before = compile_cache_stats()
    outcome = execute_job(job, checkpoint_every=checkpoint_every,
                          checkpoint_path=checkpoint_path)
    after = compile_cache_stats()
    return outcome, {"cache_hits": after["hits"] - before["hits"],
                     "cache_misses": after["misses"] - before["misses"]}


def heartbeat_wire(snapshot) -> dict:
    """The results-queue record for one worker heartbeat.  Tagged with
    ``kind`` so :meth:`SchedulerCore._receive` can intercept it before
    outcome settlement (result records carry no ``kind``)."""
    return {"kind": "heartbeat", "job_id": snapshot.job_id,
            "worker": snapshot.worker, "snapshot": snapshot.to_wire()}


def execute_to_wire(job_data: dict, heartbeat_sink=None,
                    worker: int | None = None) -> dict:
    """Worker-side helper: execute a serialized job and build its wire
    record, annotated with the compile-cache delta.

    ``job_data`` may carry transport envelopes — scheduler-side state
    that is not part of the job's identity (neither enters the
    fingerprint):

    * ``_checkpoint`` (``{"every": N, "path": str}``) — mid-campaign
      checkpointing;
    * ``_telemetry`` (``{"heartbeat_every": s}``) — run the job inside a
      :class:`~repro.telemetry.progress.TelemetrySession`: the wire
      record gains the job's registry delta under ``telemetry``, and
      ``heartbeat_sink(snapshot)`` receives periodic progress snapshots
      while the campaign runs.
    """
    job_data = dict(job_data)
    transport = job_data.pop("_checkpoint", None) or {}
    telemetry = job_data.pop("_telemetry", None)
    job = CampaignJob.from_dict(job_data)
    if telemetry is None:
        outcome, delta = execute_with_cache_delta(
            job, checkpoint_every=transport.get("every"),
            checkpoint_path=transport.get("path"))
    else:
        with TelemetrySession(
                job.job_id, heartbeat_sink=heartbeat_sink,
                heartbeat_every=telemetry.get("heartbeat_every",
                                              DEFAULT_HEARTBEAT_EVERY),
                worker=worker) as session:
            outcome, delta = execute_with_cache_delta(
                job, checkpoint_every=transport.get("every"),
                checkpoint_path=transport.get("path"))
        outcome.telemetry = session.delta
    wire = outcome.to_wire()
    wire.update(delta)
    return wire


class ExecutionBackend:
    """One strategy for executing a batch of campaign jobs.

    Subclasses set :attr:`name` and implement ``_run(jobs, progress)``
    returning one :class:`JobOutcome` per job **in job order**.  All
    backends accept the same knobs; the ones that do not apply to a given
    backend are ignored (``recycle_after`` outside the pool) or rejected
    (``job_timeout`` on inline, which cannot kill anything).
    """

    name = "abstract"

    def __init__(self, workers: int | None = None,
                 job_timeout: float | None = None,
                 recycle_after: int | None = None,
                 sweep_interval: float | None = None,
                 checkpoint_every: int | None = None,
                 checkpoint_dir=None,
                 telemetry: bool = False,
                 heartbeat_every: float | None = None,
                 heartbeat=None) -> None:
        self.workers = resolve_workers(workers)
        #: collect per-job telemetry deltas + worker heartbeats this run
        self.telemetry = bool(telemetry)
        self.heartbeat_every = (DEFAULT_HEARTBEAT_EVERY
                                if heartbeat_every is None
                                else max(0.0, float(heartbeat_every)))
        #: optional ``callback(heartbeat_wire_dict)`` invoked scheduler-side
        #: as worker heartbeats arrive (drives the live ``repro top`` file)
        self.heartbeat = heartbeat
        #: merged telemetry across every fresh job of the last run (a
        #: registry snapshot dict), None when telemetry was off
        self.telemetry_totals: dict | None = None
        self.job_timeout = None if job_timeout is None else float(job_timeout)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires a checkpoint_dir "
                             "(persist checkpoints somewhere resumable)")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        if recycle_after is not None and (recycle_after < 0
                                          or recycle_after
                                          != int(recycle_after)):
            raise ValueError("recycle_after must be an integer >= 1 "
                             "(0 or None disables recycling)")
        self.recycle_after = (None if not recycle_after
                              else int(recycle_after))
        self.sweep_interval = (DEFAULT_SWEEP if sweep_interval is None
                               else max(0.001, float(sweep_interval)))
        #: run-level statistics, populated by :meth:`run`
        self.stats = {
            "backend": self.name,
            "workers": self.workers,
            "compile_cache_hits": 0,
            "compile_cache_misses": 0,
            "workers_recycled": 0,
            "workers_killed": 0,
        }

    def run(self, jobs, progress=None) -> list:
        """Execute every job; one outcome per job, in job order.

        ``progress`` is an optional ``callback(outcome)`` invoked as each
        job settles (out of order under parallelism)."""
        jobs = list(jobs)
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            # schedulers track in-flight work by job_id; a duplicate would
            # silently orphan one worker and double-report the other
            raise ValueError("duplicate job ids passed to backend: "
                             + ", ".join(sorted({i for i in ids
                                                 if ids.count(i) > 1})))
        if not jobs:
            return []
        for counter in ("compile_cache_hits", "compile_cache_misses",
                        "workers_recycled", "workers_killed"):
            self.stats[counter] = 0  # stats describe one run, not a life
        self.telemetry_totals = None
        return self._run(jobs, progress)

    def _run(self, jobs, progress) -> list:
        raise NotImplementedError

    def checkpoint_transport(self, job: CampaignJob) -> dict | None:
        """The checkpoint envelope for ``job`` (``{"every": N, "path":
        str}``), or None when mid-campaign checkpointing is off."""
        if not self.checkpoint_every or self.checkpoint_dir is None:
            return None
        from repro.orchestrator.store import CHECKPOINT_SUFFIX
        path = os.path.join(str(self.checkpoint_dir),
                            f"{job.job_id}{CHECKPOINT_SUFFIX}")
        return {"every": int(self.checkpoint_every), "path": path}

    def telemetry_transport(self) -> dict | None:
        """The telemetry envelope dispatched with every job (``None``
        when telemetry collection is off for this run)."""
        if not self.telemetry:
            return None
        return {"heartbeat_every": self.heartbeat_every}

    def job_payload(self, job: CampaignJob) -> dict:
        """The wire dict dispatched to a worker for ``job``: its
        serialized form plus the transport envelopes (checkpointing,
        telemetry) configured for this run."""
        data = job.to_dict()
        transport = self.checkpoint_transport(job)
        if transport is not None:
            data["_checkpoint"] = transport
        telemetry = self.telemetry_transport()
        if telemetry is not None:
            data["_telemetry"] = telemetry
        return data

    def _absorb_cache_stats(self, wire: dict) -> None:
        self.stats["compile_cache_hits"] += int(wire.get("cache_hits") or 0)
        self.stats["compile_cache_misses"] += \
            int(wire.get("cache_misses") or 0)

    def _absorb_telemetry(self, delta: dict | None) -> None:
        """Fold one job's telemetry delta into the run totals (snapshot
        merge is associative + commutative, so settlement order does not
        matter)."""
        if not delta:
            return
        self.telemetry_totals = (
            delta if self.telemetry_totals is None
            else _metrics.merge_snapshots(self.telemetry_totals, delta))


class SchedulerCore:
    """Result-side state shared by the process-based schedulers.

    Owns the ``spawn`` context, the shared results queue, and settlement:
    first outcome wins (a result racing a timeout termination must not
    settle the same job twice — double progress callbacks and a final
    state contradicting the live log), and the drain tolerates the mangled
    queue items a worker terminated mid-``put`` can leave behind (the
    documented multiprocessing caveat) — the owning job settles via the
    timeout or crash path instead of taking the whole matrix down.
    """

    def __init__(self, jobs, progress=None,
                 sweep_interval: float = DEFAULT_SWEEP,
                 on_heartbeat=None) -> None:
        self.jobs = list(jobs)
        self.by_id = {job.job_id: job for job in self.jobs}
        self.progress = progress
        self.sweep = max(0.001, float(sweep_interval))
        self.ctx = multiprocessing.get_context("spawn")
        self.results_queue = self.ctx.Queue()
        self.settled: dict = {}  # job_id -> JobOutcome
        #: latest progress snapshot per in-flight job (wire dicts); a
        #: job's entry is attached to its outcome when the worker dies or
        #: overruns — the post-mortem shows where the campaign was
        self.heartbeats: dict = {}
        self.on_heartbeat = on_heartbeat

    def settle(self, outcome: JobOutcome) -> None:
        if outcome.job.job_id in self.settled:
            return
        self.settled[outcome.job.job_id] = outcome
        if self.progress is not None:
            self.progress(outcome)

    def all_settled(self) -> bool:
        return len(self.settled) == len(self.by_id)

    def settle_timeout(self, job_id: str, timeout: float,
                       started: float) -> None:
        """Settle an overrunning job (its worker was just terminated)."""
        self.settle(JobOutcome(
            job=self.by_id[job_id], status="timeout",
            error=f"job exceeded {timeout:.1f}s wall-clock timeout",
            elapsed=time.monotonic() - started,
            heartbeat=self.heartbeats.get(job_id)))

    def settle_dead_worker(self, job_id: str, exitcode, started: float,
                           handler=None, label: str = "worker") -> None:
        """A worker died holding ``job_id``: a clean exit (code 0) always
        queued its result first, so grace-drain for it; a nonzero exit
        (crash, OOM kill) never will, so only collect what is already
        queued.  Settles the job as ``error`` if no result surfaced."""
        if exitcode == 0:
            self.drain(block_for=DRAIN_GRACE, until=job_id,
                       handler=handler)
        else:
            self.drain(handler=handler)
        if job_id not in self.settled:
            self.settle(JobOutcome(
                job=self.by_id[job_id], status="error",
                error=f"{label} died with exit code {exitcode} before "
                      f"reporting a result",
                elapsed=time.monotonic() - started,
                heartbeat=self.heartbeats.get(job_id)))

    def outcomes_in_job_order(self) -> list:
        return [self.settled[job.job_id] for job in self.jobs]

    def drain(self, block_for: float = 0.0, until: str | None = None,
              handler=None) -> None:
        """Dequeue results; optionally block up to ``block_for`` seconds.

        Without ``until``, blocks until at least one result arrives (or
        the deadline passes), then collects everything already queued and
        returns — so the calling scheduler reacts promptly.  With
        ``until``, keeps draining until that specific job settles or time
        runs out.  The blocking path sleeps in ``Queue.get(timeout=...)``
        capped at the sweep interval, so an idle scheduler never spins.

        ``handler`` (optional) sees each raw wire record before it
        settles — the pool backend uses it for worker bookkeeping.
        """
        deadline = time.monotonic() + block_for
        got = False
        while True:
            if until is not None and until in self.settled:
                return
            try:
                if got or block_for <= 0:
                    wire = self.results_queue.get_nowait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return
                    wire = self.results_queue.get(
                        timeout=min(remaining, self.sweep))
            except queue_mod.Empty:
                if got or block_for <= 0 or time.monotonic() >= deadline:
                    return
                continue
            except Exception:
                # mangled item from a terminated worker: drop it, but
                # keep honouring the deadline so a persistently-failing
                # read cannot loop forever
                if time.monotonic() >= deadline:
                    return
                continue
            if until is None:
                got = True
            self._receive(wire, handler)

    def _receive(self, wire, handler) -> None:
        try:
            if wire.get("kind") == "heartbeat":
                # progress report, not a result: remember the latest per
                # job and never let it near settlement
                job_id = wire.get("job_id")
                if job_id in self.by_id:
                    self.heartbeats[job_id] = wire.get("snapshot") or {}
                    if self.on_heartbeat is not None:
                        self.on_heartbeat(wire)
                return
            job = self.by_id[wire["job_id"]]
            outcome = JobOutcome.from_wire(job, wire)
        except Exception:
            return  # mangled wire record (terminated mid-put): the
            # owning job settles via the crash/timeout path
        if handler is not None:
            handler(wire)
        self.settle(outcome)

    def close(self) -> None:
        self.results_queue.close()
