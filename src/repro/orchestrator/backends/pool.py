"""The pool backend: persistent workers with warm compile caches.

``workers`` long-lived child processes each pull jobs from the scheduler
until the matrix is done, so interpreter boot and package import are paid
once per worker instead of once per job, and each worker's process-local
compile cache (:mod:`repro.compiler.cache`) means a contract fuzzed
across presets × trials compiles once per worker instead of once per
cell.

The scheduler dispatches exactly one job at a time to each worker over a
per-worker queue, so it always knows which job a worker holds — the
invariant that makes the spawn backend's guarantees portable:

* **timeouts** — a worker overrunning the per-job wall-clock budget is
  terminated, its in-flight job settles as ``timeout`` (never requeued),
  and a replacement worker is spawned;
* **crash isolation** — a worker that dies settles only its in-flight job
  as ``error`` and is replaced; queued jobs are unaffected;
* **recycling** — with ``recycle_after=K`` a worker is retired after
  completing K jobs and replaced fresh, bounding per-process memory
  growth on long matrices (at the cost of a cold compile cache).

Results are byte-identical to the inline and spawn backends at any worker
count: job seeds derive from job identity alone, and compiled artifacts
are immutable, so cache reuse cannot leak state between cells.  The
determinism guard in the test suite enforces this.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field

from repro.orchestrator.backends.base import (
    ExecutionBackend,
    SchedulerCore,
    execute_to_wire,
    heartbeat_wire,
)


def _pool_worker_main(worker_key: int, dispatch_queue,
                      results_queue) -> None:
    """Long-lived child entry point (module-level: spawn picklable).

    Pulls serialized jobs until the ``None`` sentinel arrives; the
    process-local compile cache stays warm across jobs.  Heartbeats share
    the results queue (tagged ``kind="heartbeat"``) and carry the worker
    key, so the scheduler can show who is doing what."""
    def sink(snapshot) -> None:
        results_queue.put(heartbeat_wire(snapshot))

    while True:
        job_data = dispatch_queue.get()
        if job_data is None:
            break
        wire = execute_to_wire(job_data, heartbeat_sink=sink,
                               worker=worker_key)
        wire["worker"] = worker_key
        results_queue.put(wire)


@dataclass
class _PoolWorker:
    """Scheduler-side record of one live worker process."""

    key: int
    proc: object
    dispatch: object  # per-worker job queue (one in-flight job at a time)
    job_id: str | None = None
    started: float = field(default=0.0)
    jobs_done: int = 0


class PoolBackend(ExecutionBackend):
    name = "pool"

    def _run(self, jobs, progress) -> list:
        core = SchedulerCore(jobs, progress, self.sweep_interval,
                             on_heartbeat=self.heartbeat)
        pending = deque(jobs)
        workers: dict = {}  # key -> _PoolWorker
        keys = itertools.count()

        def spawn_worker() -> None:
            key = next(keys)
            dispatch = core.ctx.Queue()
            proc = core.ctx.Process(
                target=_pool_worker_main,
                args=(key, dispatch, core.results_queue), daemon=True)
            proc.start()
            workers[key] = _PoolWorker(key=key, proc=proc,
                                       dispatch=dispatch)

        def retire(worker: _PoolWorker, kill: bool = False) -> None:
            """Remove a worker: sentinel + join for idle workers, hard
            terminate for overrunning ones."""
            workers.pop(worker.key, None)
            if kill:
                worker.proc.terminate()
            else:
                worker.dispatch.put(None)
            worker.proc.join()
            worker.dispatch.close()

        def on_wire(wire) -> None:
            self._absorb_cache_stats(wire)
            self._absorb_telemetry(wire.get("telemetry"))
            # match against the live incarnation only: a result racing in
            # from an already-terminated worker must not free anything
            worker = workers.get(wire.get("worker"))
            if worker is not None and worker.job_id == wire.get("job_id"):
                worker.job_id = None
                worker.jobs_done += 1

        def sweep() -> None:
            """Settle timeouts and dead workers; replacements are spawned
            by the top-of-loop headcount."""
            for worker in list(workers.values()):
                now = time.monotonic()
                if worker.job_id is None:
                    if not worker.proc.is_alive():
                        # died idle (rare): drop the carcass (terminate
                        # on a dead process is a harmless no-op)
                        retire(worker, kill=True)
                    continue
                job_id = worker.job_id
                if (self.job_timeout is not None
                        and now - worker.started > self.job_timeout
                        and worker.proc.is_alive()):
                    retire(worker, kill=True)
                    self.stats["workers_killed"] += 1
                    core.settle_timeout(job_id, self.job_timeout,
                                        worker.started)
                elif not worker.proc.is_alive():
                    core.settle_dead_worker(job_id, worker.proc.exitcode,
                                            worker.started,
                                            handler=on_wire,
                                            label="pool worker")
                    retire(worker, kill=True)

        try:
            while not core.all_settled():
                # retire idle workers that served their recycling quota
                # (the headcount below spawns fresh replacements)
                if self.recycle_after is not None:
                    for worker in [w for w in workers.values()
                                   if w.job_id is None
                                   and w.jobs_done >= self.recycle_after]:
                        retire(worker)
                        self.stats["workers_recycled"] += 1

                # headcount: enough workers for the remaining jobs, never
                # more than the configured pool size
                in_flight = sum(1 for w in workers.values()
                                if w.job_id is not None)
                while len(workers) < min(self.workers,
                                         len(pending) + in_flight):
                    spawn_worker()

                # dispatch one job to each idle worker; never hand work
                # to a worker that died while idle (sweep reaps it and
                # the headcount replaces it — the job stays pending)
                for worker in workers.values():
                    if not pending:
                        break
                    if worker.job_id is None and worker.proc.is_alive():
                        job = pending.popleft()
                        worker.job_id = job.job_id
                        worker.started = time.monotonic()
                        worker.dispatch.put(self.job_payload(job))

                core.drain(block_for=self.sweep_interval, handler=on_wire)
                sweep()
        finally:
            # wind down politely, then terminate stragglers (a worker
            # still mid-job after an interrupt will not see its sentinel)
            for worker in workers.values():
                try:
                    worker.dispatch.put(None)
                except Exception:
                    pass
            deadline = time.monotonic() + 1.0
            for worker in workers.values():
                worker.proc.join(
                    timeout=max(0.0, deadline - time.monotonic()))
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join()
                worker.dispatch.close()
            core.close()

        return core.outcomes_in_job_order()
