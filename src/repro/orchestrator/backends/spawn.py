"""The spawn backend: one OS process per job, maximum isolation.

At most ``workers`` processes alive at once, each executing exactly one
job and exiting.  Every job pays interpreter boot + package import +
compilation, which is why the pool backend is the default — but a fresh
process per job is the strongest possible isolation (no state of any kind
survives between jobs), so this backend remains the fallback for
untrusted or leak-prone workloads.

The scheduler owns the lifecycle: it enforces the per-job wall-clock
timeout by terminating the worker, and a worker that dies (crash, OOM
kill) yields an ``error`` outcome instead of taking the whole matrix
down.
"""

from __future__ import annotations

import time
from collections import deque

from repro.orchestrator.backends.base import (
    ExecutionBackend,
    SchedulerCore,
    execute_to_wire,
    heartbeat_wire,
)


def _worker_main(job_data: dict, results_queue) -> None:
    """Child-process entry point (module-level: spawn picklable).

    Heartbeats (when the job carries a ``_telemetry`` envelope) share the
    results queue; the scheduler tells them apart by their ``kind`` tag.
    """
    def sink(snapshot) -> None:
        results_queue.put(heartbeat_wire(snapshot))

    results_queue.put(execute_to_wire(job_data, heartbeat_sink=sink))


class SpawnBackend(ExecutionBackend):
    name = "spawn"

    def _run(self, jobs, progress) -> list:
        core = SchedulerCore(jobs, progress, self.sweep_interval,
                             on_heartbeat=self.heartbeat)
        pending = deque(jobs)
        running: dict = {}  # job_id -> (process, monotonic start)

        def on_wire(wire):
            self._absorb_cache_stats(wire)
            self._absorb_telemetry(wire.get("telemetry"))

        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    job = pending.popleft()
                    proc = core.ctx.Process(
                        target=_worker_main,
                        args=(self.job_payload(job), core.results_queue),
                        daemon=True)
                    proc.start()
                    running[job.job_id] = (proc, time.monotonic())

                # blocks until a result lands (or the sweep interval
                # passes), so an idle scheduler sleeps instead of spinning
                core.drain(block_for=self.sweep_interval, handler=on_wire)

                for job_id in list(running):
                    proc, started = running[job_id]
                    # per-job timestamp: the worker-exit branch below can
                    # block in drain(), which would stale a loop-wide now
                    now = time.monotonic()
                    if job_id in core.settled:
                        proc.join()
                        del running[job_id]
                    elif (self.job_timeout is not None
                            and now - started > self.job_timeout
                            and proc.is_alive()):
                        proc.terminate()
                        proc.join()
                        del running[job_id]
                        self.stats["workers_killed"] += 1
                        core.settle_timeout(job_id, self.job_timeout,
                                            started)
                    elif not proc.is_alive():
                        core.settle_dead_worker(job_id, proc.exitcode,
                                                started, handler=on_wire)
                        proc.join()
                        del running[job_id]
        finally:
            for proc, _ in running.values():  # interrupted: reap children
                proc.terminate()
                proc.join()
            core.close()

        return core.outcomes_in_job_order()
