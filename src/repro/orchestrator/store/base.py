"""Shared machinery for the result-store backends.

Everything both backends must agree on lives here, because agreement *is*
the product: the canonical record form (:func:`build_record` +
:func:`repro.engine.checkpoint.canonical_json`), the freshness rules
(:func:`record_is_fresh`), the findings projection derived from a record
(:func:`finding_rows_from_record`), the crash-safe atomic file writer
(:func:`atomic_write_text`: write → flush → fsync → rename, so a powerloss
can never leave a truncated-but-renamed record), the stale ``*.tmp`` sweep,
and the checkpoint file helpers workers use directly (they hold a path,
not a store).

:class:`StoreBackend` is the interface contract: a backend persists
canonical records keyed by ``job_id``, answers resume queries
(:meth:`~StoreBackend.load_fresh` / :meth:`~StoreBackend.fresh_ids`),
exposes the findings projection (:meth:`~StoreBackend.query_findings`),
and owns the mid-campaign checkpoint lifecycle.  Whatever the storage
engine, :meth:`~StoreBackend.canonical_records` must return byte-identical
text for the same outcomes — the golden-fixture tests hold both backends
to that.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

from repro.core.campaign import CampaignResult
from repro.engine.checkpoint import CampaignCheckpoint, canonical_json
from repro.orchestrator.jobs import CampaignJob, JobOutcome
from repro.telemetry import metrics as _metrics
from repro.telemetry.spans import span as _span

#: wall time spent serializing + atomically writing campaign checkpoints
_S_CHECKPOINT_WRITE = _span("checkpoint.write")

#: Schema history —
#: 1: job identity + result.
#: 2: records additionally embed the contract source, contract name, the
#:    fully-resolved config, and the oracle restriction, making each record
#:    self-contained evidence: ``repro replay record.json`` re-executes
#:    every finding's witness without any external context.  v1 records
#:    simply re-run (they are caches, not data).
SCHEMA_VERSION = 2

#: suffix distinguishing checkpoint files from result records
CHECKPOINT_SUFFIX = ".checkpoint.json"

#: suffix distinguishing live telemetry files from result records
TELEMETRY_SUFFIX = ".telemetry.json"

#: the matrix-level live progress file ``repro top`` follows
LIVE_TELEMETRY_NAME = f"live{TELEMETRY_SUFFIX}"

#: suffix of in-flight atomic-write temporaries (swept when stale)
TMP_SUFFIX = ".tmp"

#: a ``*.tmp`` older than this is an orphan from a crashed writer; a
#: younger one may be a concurrent writer's in-flight rename and is left
#: alone (the sweep runs on store open, not on a schedule)
STALE_TMP_AGE = 60.0

# -- telemetry ----------------------------------------------------------------
# plain-int process totals mirrored into the registry by a snapshot-time
# collector (the zero-overhead pattern of core/statecache.py): the store
# hot path pays integer adds, never a registry probe.
_T_RECORDS_SAVED = _metrics.counter("store.records_saved")
_T_RECORDS_LOADED = _metrics.counter("store.records_loaded")
_T_ROWS_WRITTEN = _metrics.counter("store.rows_written")
_T_BATCH_FLUSHES = _metrics.counter("store.batch_flushes")
_T_QUERIES = _metrics.counter("store.queries")
_T_QUERY_US = _metrics.counter("store.query_us")

_records_saved_total = 0
_records_loaded_total = 0
_rows_written_total = 0
_batch_flushes_total = 0
_queries_total = 0
_query_us_total = 0


def _collect_store_counters() -> None:
    _T_RECORDS_SAVED.set_total(_records_saved_total)
    _T_RECORDS_LOADED.set_total(_records_loaded_total)
    _T_ROWS_WRITTEN.set_total(_rows_written_total)
    _T_BATCH_FLUSHES.set_total(_batch_flushes_total)
    _T_QUERIES.set_total(_queries_total)
    _T_QUERY_US.set_total(_query_us_total)


_metrics.register_collector(_collect_store_counters)


# -- crash-safe file writes ---------------------------------------------------

def atomic_write_text(path, text: str, fsync: bool = True) -> Path:
    """Atomically replace ``path`` with ``text``.

    The temporary is ``<name>.tmp`` *appended* to the full file name —
    never ``with_suffix``, which would silently rewrite a compound suffix
    like ``.checkpoint.json`` and let two different targets collide on one
    temp path.  With ``fsync`` (the default for durable artifacts) the
    data is flushed to disk *before* the rename, so a powerloss leaves
    either the old complete file or the new complete file, never a
    truncated hybrid; the directory entry is fsynced best-effort after.
    Observational files (live telemetry) pass ``fsync=False``: atomicity
    without the per-write disk stall.
    """
    path = Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    with open(tmp, "w") as handle:
        handle.write(text)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        try:  # the rename itself must survive powerloss too
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return path
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(dir_fd)
    return path


def sweep_stale_temps(root, min_age: float = STALE_TMP_AGE) -> int:
    """Remove orphaned ``*.tmp`` files under ``root`` (non-recursive).

    A crash between ``write`` and ``replace`` leaks the temporary forever
    — nothing else ever references it.  Swept on store open; files
    younger than ``min_age`` seconds are kept because they may belong to
    a concurrent writer mid-rename.
    """
    removed = 0
    cutoff = time.time() - min_age
    for tmp in Path(root).glob(f"*{TMP_SUFFIX}"):
        try:
            if tmp.stat().st_mtime <= cutoff:
                tmp.unlink()
                removed += 1
        except OSError:  # raced with the owner's rename/cleanup
            continue
    return removed


# -- the canonical record form ------------------------------------------------

def build_record(outcome: JobOutcome) -> dict:
    """The persistent record for an ``ok`` outcome.

    Both backends serialize exactly this dict through
    :func:`canonical_json`, which is what makes them interchangeable: the
    SQLite backend stores the very text the JSON backend would have
    written, and ``export`` round-trips it byte-identically.
    """
    job = outcome.job
    result_data = outcome.result.to_dict()
    result_data["wall_time"] = 0.0
    record = {
        "schema": SCHEMA_VERSION,
        "job_id": job.job_id,
        "fingerprint": job.fingerprint(),
        "name": job.name,
        "preset": job.preset,
        "trial": job.trial,
        "rng_seed": job.derived_seed(),
        "status": outcome.status,
        # self-contained replay context: source + resolved config +
        # oracle restriction (see repro.core.replay.replay_record)
        "source": job.source,
        "contract": job.contract,
        "config": dataclasses.asdict(job.build_config()),
        "supported_bug_classes": (
            None if job.supported_bug_classes is None
            else list(job.supported_bug_classes)),
        "result": result_data,
    }
    if outcome.telemetry is not None:
        # observability sidecar: the job's telemetry registry delta.
        # Deliberately outside "result" and outside the fingerprint —
        # records with and without it are equally valid caches, and
        # the campaign's canonical artifact stays byte-identical
        # whether telemetry ran or not.
        record["telemetry"] = outcome.telemetry
    return record


def record_is_fresh(record, job: CampaignJob) -> bool:
    """Whether a parsed record is a reusable cache for ``job``."""
    return (isinstance(record, dict)
            and record.get("schema") == SCHEMA_VERSION
            and record.get("fingerprint") == job.fingerprint()
            and record.get("status") == "ok")


def outcome_from_record(job: CampaignJob, record: dict) -> JobOutcome | None:
    """Rebuild a cached outcome from a fresh record (None when mangled)."""
    try:
        result = CampaignResult.from_dict(record["result"])
    except (KeyError, ValueError, TypeError):
        return None
    return JobOutcome(job=job, status="ok", result=result,
                      telemetry=record.get("telemetry"))


def finding_fingerprint(bug_class: str, contract: str, pc) -> str:
    """Cross-run identity of one defect — the stable hash of
    :attr:`repro.oracles.base.Finding.key` (class, contract, pc), so the
    same defect found by different trials/presets/runs aggregates under
    one fingerprint in ``repro report``."""
    token = f"{bug_class}|{contract}|{pc}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


def finding_rows_from_record(record: dict) -> list:
    """The findings projection of one record: flat, indexable dicts.

    One row per finding, carrying the matrix coordinates (job, preset,
    trial) and triage fields, plus the cross-run defect fingerprint.
    Derived purely from the record, so the projection can always be
    rebuilt and never adds information to the canonical artifact.
    """
    rows = []
    result = record.get("result") or {}
    for finding in result.get("findings", ()):
        rows.append({
            "job_id": record.get("job_id", ""),
            "name": record.get("name", ""),
            "preset": record.get("preset", ""),
            "trial": int(record.get("trial", 0)),
            "bug_class": finding["bug_class"],
            "contract": finding["contract"],
            "pc": int(finding["pc"]),
            "line": int(finding["line"]),
            "severity": finding.get("severity", "medium"),
            "confidence": float(finding.get("confidence", 0.5)),
            "description": finding.get("description", ""),
            "fingerprint": finding_fingerprint(
                finding["bug_class"], finding["contract"], finding["pc"]),
        })
    return rows


# -- checkpoint files (module-level: workers hold a path, not a store) --------

def write_checkpoint_file(path, checkpoint: CampaignCheckpoint,
                          fingerprint: str) -> None:
    """Atomically persist one campaign checkpoint with its owner's
    fingerprint."""
    with _S_CHECKPOINT_WRITE:
        record = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "checkpoint": checkpoint.to_dict(),
        }
        atomic_write_text(path, canonical_json(record))


def checkpoint_from_record_text(text: str,
                                fingerprint: str) -> CampaignCheckpoint | None:
    """Parse a checkpoint record; None when mangled or stale (fingerprint
    mismatch — the job's source/config/seed changed since it was taken)."""
    try:
        record = json.loads(text)
    except ValueError:
        return None
    if (not isinstance(record, dict)
            or record.get("schema") != SCHEMA_VERSION
            or record.get("fingerprint") != fingerprint):
        return None
    try:
        return CampaignCheckpoint.from_dict(record["checkpoint"])
    except (KeyError, ValueError, TypeError, IndexError):
        return None


def read_checkpoint_file(path, fingerprint: str) -> CampaignCheckpoint | None:
    """Load a checkpoint file; None when absent, mangled, or stale."""
    try:
        text = Path(path).read_text()
    except OSError:
        return None
    return checkpoint_from_record_text(text, fingerprint)


def clear_checkpoint_file(path) -> None:
    Path(path).unlink(missing_ok=True)


class CheckpointSession:
    """The checkpoint lifecycle of one campaign run against one file:
    read-by-fingerprint, sink wiring, consume-on-completion.

    Shared by ``repro fuzz`` and the backend workers so the two paths
    cannot drift.  The file is *owned* — and therefore consumed by
    :meth:`complete` — only once this run resumed from a matching
    checkpoint or actually wrote one; a mismatched checkpoint that was
    merely probed belongs to some other campaign and is left alone.
    """

    def __init__(self, path, fingerprint: str,
                 every: int | None = None) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.every = every
        self._owned = False

    def load(self) -> CampaignCheckpoint | None:
        """The checkpoint to resume from, if a matching one is here."""
        checkpoint = read_checkpoint_file(self.path, self.fingerprint)
        if checkpoint is not None:
            self._owned = True
        return checkpoint

    def run_kwargs(self) -> dict:
        """Keyword arguments for :meth:`Fuzzer.run`: the periodic sink
        when checkpointing is on, nothing otherwise."""
        if not self.every:
            return {}

        def sink(checkpoint) -> None:
            write_checkpoint_file(self.path, checkpoint, self.fingerprint)
            self._owned = True

        return {"checkpoint_every": int(self.every),
                "checkpoint_sink": sink}

    def complete(self) -> None:
        """Consume the checkpoint after a completed campaign."""
        if self._owned:
            clear_checkpoint_file(self.path)


class StoreBackend:
    """The result-store interface both backends implement.

    Subclasses must provide :meth:`load`, :meth:`save`,
    :meth:`completed_ids`, :meth:`canonical_records`, and
    :meth:`delete_record`; everything else has a correct (if unindexed)
    default built on those.  ``flush``/``close`` are no-ops for backends
    that write through immediately.
    """

    #: backend key as selected by ``--store`` / ``REPRO_STORE``
    name = "abstract"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.temps_swept = sweep_stale_temps(self.root)
        # per-store observability (mirrored process-wide via the module
        # totals + snapshot collector above)
        self.records_saved = 0
        self.records_loaded = 0
        self.rows_written = 0
        self.batch_flushes = 0
        self.queries = 0
        self.query_time_s = 0.0

    # -- paths ----------------------------------------------------------------

    def path_for(self, job: CampaignJob) -> Path:
        """The per-file layout path for ``job``'s record — where the JSON
        backend keeps it, and where ``export`` materializes it."""
        return self.root / f"{job.job_id}.json"

    def live_telemetry_path(self) -> Path:
        """Where the orchestrator publishes live matrix progress."""
        return self.root / LIVE_TELEMETRY_NAME

    # -- records --------------------------------------------------------------

    def load(self, job: CampaignJob) -> JobOutcome | None:
        """The cached outcome for ``job``, or None when absent or stale."""
        raise NotImplementedError

    def save(self, outcome: JobOutcome):
        """Persist an ``ok`` outcome; no-op (None) for errors/timeouts."""
        raise NotImplementedError

    def completed_ids(self) -> set:
        """Job ids holding an ``ok`` record (fingerprint-unchecked)."""
        raise NotImplementedError

    def canonical_records(self) -> dict:
        """``job_id`` → exact canonical record text, for every record.

        This is the byte-identity surface: both backends must return the
        same text for the same outcomes, whatever their storage engine.
        """
        raise NotImplementedError

    def record_for(self, job_id: str) -> dict | None:
        """The parsed record for ``job_id`` (None when absent/mangled)."""
        text = self.canonical_records().get(job_id)
        if text is None:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def delete_record(self, job_id: str) -> bool:
        """Drop one record (and its projection rows); True if it existed."""
        raise NotImplementedError

    def export(self, dest=None) -> list:
        """Materialize every record into the per-file layout under
        ``dest`` (default: this store's root) and return the paths.

        Because records are stored as exact canonical text, an export
        from any backend is byte-identical to what the JSON backend
        would have written in the first place — this is the round-trip
        the golden-fixture tests diff.
        """
        dest = self.root if dest is None else Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        return [atomic_write_text(dest / f"{job_id}.json", text)
                for job_id, text in sorted(self.canonical_records().items())]

    def load_fresh(self, jobs) -> dict:
        """``job_id`` → cached outcome for every job with a fresh record.

        The resume path.  The default loads job-by-job; the SQLite
        backend overrides it with one indexed query.
        """
        out = {}
        for job in jobs:
            outcome = self.load(job)
            if outcome is not None:
                out[job.job_id] = outcome
        return out

    def fresh_ids(self, jobs) -> set:
        """Job ids whose persisted record is a reusable cache (matching
        fingerprint, ``ok`` status) — the resume *scan*, without
        materializing outcomes."""
        return set(self.load_fresh(jobs))

    def query_findings(self, contract=None, bug_class=None, severity=None,
                       fingerprint=None, job_id=None, preset=None) -> list:
        """Finding rows (see :func:`finding_rows_from_record`) filtered by
        any combination of coordinates, in deterministic order.

        The default scans and parses every record — correct everywhere,
        O(records); the SQLite backend answers from its indexed
        projection instead.
        """
        start = time.perf_counter()
        rows = []
        for _jid, text in sorted(self.canonical_records().items()):
            try:
                record = json.loads(text)
            except ValueError:
                continue
            rows.extend(finding_rows_from_record(record))
        rows = [row for row in rows
                if _row_matches(row, contract, bug_class, severity,
                                fingerprint, job_id, preset)]
        rows.sort(key=_row_order)
        self._count_query(time.perf_counter() - start)
        return rows

    def flush(self) -> None:
        """Make every buffered write durable (no-op for write-through)."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mid-campaign checkpoints ---------------------------------------------
    # Live checkpoints are plain files on every backend: they are written
    # *by the workers themselves* (single writer per job, holding only a
    # path), so they never contend with the scheduler's record writes.

    def checkpoint_path_for(self, job: CampaignJob) -> Path:
        return self.root / f"{job.job_id}{CHECKPOINT_SUFFIX}"

    def save_checkpoint(self, job: CampaignJob,
                        checkpoint: CampaignCheckpoint) -> Path:
        path = self.checkpoint_path_for(job)
        write_checkpoint_file(path, checkpoint, job.fingerprint())
        return path

    def load_checkpoint(self, job: CampaignJob) -> CampaignCheckpoint | None:
        return read_checkpoint_file(self.checkpoint_path_for(job),
                                    job.fingerprint())

    def clear_checkpoint(self, job: CampaignJob) -> None:
        clear_checkpoint_file(self.checkpoint_path_for(job))

    def checkpoint_ids(self) -> set:
        """Job ids with a pending mid-campaign checkpoint."""
        return {path.name[:-len(CHECKPOINT_SUFFIX)]
                for path in self.root.glob(f"*{CHECKPOINT_SUFFIX}")}

    # -- observability --------------------------------------------------------

    def stats_dict(self) -> dict:
        """This store's counters, for ``MatrixRun.stats`` / ``repro top``."""
        return {
            "backend": self.name,
            "records_saved": self.records_saved,
            "records_loaded": self.records_loaded,
            "rows_written": self.rows_written,
            "batch_flushes": self.batch_flushes,
            "queries": self.queries,
            "query_ms": round(self.query_time_s * 1000.0, 3),
            "temps_swept": self.temps_swept,
        }

    def _count_saved(self, rows: int = 1) -> None:
        global _records_saved_total, _rows_written_total
        self.records_saved += 1
        self.rows_written += rows
        _records_saved_total += 1
        _rows_written_total += rows

    def _count_loaded(self, n: int = 1) -> None:
        global _records_loaded_total
        self.records_loaded += n
        _records_loaded_total += n

    def _count_flush(self, rows: int = 0) -> None:
        global _batch_flushes_total, _rows_written_total
        self.batch_flushes += 1
        self.rows_written += rows
        _batch_flushes_total += 1
        _rows_written_total += rows

    def _count_query(self, seconds: float) -> None:
        global _queries_total, _query_us_total
        self.queries += 1
        self.query_time_s += seconds
        _queries_total += 1
        _query_us_total += int(seconds * 1e6)


def _row_matches(row, contract, bug_class, severity, fingerprint,
                 job_id, preset) -> bool:
    if contract is not None and row["contract"] != contract:
        return False
    if bug_class is not None:
        wanted = ({bug_class} if isinstance(bug_class, str)
                  else set(bug_class))
        if row["bug_class"] not in wanted:
            return False
    if severity is not None and row["severity"] != severity:
        return False
    if fingerprint is not None and row["fingerprint"] != fingerprint:
        return False
    if job_id is not None and row["job_id"] != job_id:
        return False
    if preset is not None and row["preset"] != preset:
        return False
    return True


def _row_order(row) -> tuple:
    return (row["job_id"], row["bug_class"], row["contract"], row["pc"])
