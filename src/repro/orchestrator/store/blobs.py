"""Content-addressed blob storage for checkpoint/corpus payloads.

Blobs live on disk under ``<root>/<sha256[:2]>/<sha256>`` — named by the
sha256 of their bytes, so identical payloads are stored once no matter how
many jobs reference them (checkpoints of trials over the same contract
share most of their corpus).  The blob *files* are immutable and
self-verifying; reference counting lives with whoever owns the references
(the SQLite backend keeps a ``blobs`` refcount table and calls
:meth:`delete` when a sha drops to zero).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.orchestrator.store.base import atomic_write_text


class BlobStore:
    """A directory of immutable sha256-addressed text blobs."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, sha: str) -> Path:
        return self.root / sha[:2] / sha

    @staticmethod
    def address(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def put(self, text: str) -> str:
        """Store ``text``, returning its address (idempotent: an existing
        blob with the same content is reused untouched)."""
        sha = self.address(text)
        path = self.path_for(sha)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text)
        return sha

    def get(self, sha: str) -> str | None:
        try:
            return self.path_for(sha).read_text()
        except OSError:
            return None

    def has(self, sha: str) -> bool:
        return self.path_for(sha).exists()

    def delete(self, sha: str) -> None:
        path = self.path_for(sha)
        path.unlink(missing_ok=True)
        try:  # drop the fan-out dir once its last blob is gone
            path.parent.rmdir()
        except OSError:
            pass

    def link(self, sha: str, dest) -> None:
        """Materialize the blob at ``dest`` without copying: hardlink it
        (falling back to an atomic copy when the filesystem refuses)."""
        dest = Path(dest)
        src = self.path_for(sha)
        tmp = dest.with_name(dest.name + ".tmp")
        tmp.unlink(missing_ok=True)
        try:
            os.link(src, tmp)
        except OSError:
            atomic_write_text(dest, src.read_text())
            return
        os.replace(tmp, dest)

    def shas(self) -> set:
        """Every address currently on disk."""
        return {path.name for path in self.root.glob("??/*")}
