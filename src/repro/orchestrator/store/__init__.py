"""Persistent, resumable stores for campaign results and checkpoints.

Two interchangeable backends behind one interface
(:class:`~repro.orchestrator.store.base.StoreBackend`):

``json``
    one canonical-JSON file per job — the determinism reference and the
    export format (:mod:`~repro.orchestrator.store.jsonfile`).
``sqlite``
    one WAL-mode ``results.db`` with batched writes, an indexed findings
    projection, indexed resume, and content-addressed checkpoint blobs
    (:mod:`~repro.orchestrator.store.sqlite`) — for matrix scale.

Both persist the **same canonical record text** (wire schema 2), so a
store can be exported/read back across backends byte-identically.

:func:`ResultStore` is the constructor everything uses.  Backend choice:
an explicit ``backend=`` argument wins; otherwise an existing store under
``root`` keeps its own format (a ``results.db`` means sqlite, record
files mean json — so resuming never silently forks a directory into two
half-stores); otherwise the ``REPRO_STORE`` environment variable;
otherwise ``json``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.checkpoint import canonical_json
from repro.orchestrator.store.base import (
    CHECKPOINT_SUFFIX,
    LIVE_TELEMETRY_NAME,
    SCHEMA_VERSION,
    TELEMETRY_SUFFIX,
    CheckpointSession,
    StoreBackend,
    atomic_write_text,
    build_record,
    clear_checkpoint_file,
    finding_fingerprint,
    finding_rows_from_record,
    read_checkpoint_file,
    sweep_stale_temps,
    write_checkpoint_file,
)
from repro.orchestrator.store.blobs import BlobStore
from repro.orchestrator.store.jsonfile import JsonResultStore
from repro.orchestrator.store.sqlite import DB_NAME, SqliteResultStore

__all__ = ["ResultStore", "CheckpointSession", "canonical_json",
           "write_checkpoint_file", "read_checkpoint_file",
           "clear_checkpoint_file", "CHECKPOINT_SUFFIX",
           "TELEMETRY_SUFFIX", "LIVE_TELEMETRY_NAME",
           "StoreBackend", "JsonResultStore", "SqliteResultStore",
           "BlobStore", "STORE_BACKENDS", "resolve_store_backend",
           "atomic_write_text", "sweep_stale_temps", "build_record",
           "finding_fingerprint", "finding_rows_from_record",
           "SCHEMA_VERSION", "DEFAULT_STORE"]

#: backend key → class, as selected by ``--store`` / ``REPRO_STORE``
STORE_BACKENDS = {
    "json": JsonResultStore,
    "sqlite": SqliteResultStore,
}

DEFAULT_STORE = "json"


def resolve_store_backend(root, backend: str | None = None) -> str:
    """The backend key to use for the store at ``root``.

    Explicit choice > existing store's own format > ``REPRO_STORE`` >
    ``json``.  Formats never mix in one directory: opening an existing
    store always honors what is already there.
    """
    if backend is None:
        backend = _detected_backend(Path(root)) \
            or os.environ.get("REPRO_STORE") or DEFAULT_STORE
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r} "
            f"(choose from {', '.join(sorted(STORE_BACKENDS))})")
    return backend


def _detected_backend(root: Path) -> str | None:
    if (root / DB_NAME).exists():
        return "sqlite"
    for path in root.glob("*.json"):
        if (not path.name.endswith(CHECKPOINT_SUFFIX)
                and not path.name.endswith(TELEMETRY_SUFFIX)):
            return "json"
    return None


def ResultStore(root, backend: str | None = None, **kwargs) -> StoreBackend:
    """Open (or create) the result store at ``root``.

    A factory rather than a class since the store package split, but the
    call shape is unchanged — ``ResultStore(results_dir)`` everywhere.
    ``kwargs`` pass through to the backend (e.g. the sqlite writer's
    ``batch_size``/``flush_interval``).
    """
    return STORE_BACKENDS[resolve_store_backend(root, backend)](root, **kwargs)
