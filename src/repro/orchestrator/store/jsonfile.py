"""The canonical-JSON-per-file backend — the determinism reference.

One result file per job under the results directory, named by ``job_id``.
Files are written in canonical form — sorted keys, fixed separators,
trailing newline, and ``wall_time`` normalized to 0.0 — so two runs of the
same matrix with the same seeds produce *byte-identical* artifacts no
matter the worker count or scheduling order.  Wall-clock timing is
environment noise; the scheduler reports it live but it never enters the
store.

Each record carries the job's content :meth:`fingerprint
<repro.orchestrator.jobs.CampaignJob.fingerprint>`; a cached result is
only reused when the fingerprint still matches, so editing a contract or
a config re-runs exactly the affected cells.  Only ``ok`` outcomes are
persisted — errors and timeouts are retried on the next run.

This layout *is* the export format: :meth:`StoreBackend.export` of any
backend materializes exactly these files, and the golden-fixture tests
hold the SQLite backend byte-identical to it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.checkpoint import canonical_json
from repro.orchestrator.jobs import CampaignJob, JobOutcome
from repro.orchestrator.store.base import (
    CHECKPOINT_SUFFIX,
    TELEMETRY_SUFFIX,
    StoreBackend,
    atomic_write_text,
    build_record,
    outcome_from_record,
    record_is_fresh,
)


class JsonResultStore(StoreBackend):
    """Directory of per-job campaign result records."""

    name = "json"

    def _record_paths(self):
        return sorted(path for path in self.root.glob("*.json")
                      if not path.name.endswith(CHECKPOINT_SUFFIX)
                      and not path.name.endswith(TELEMETRY_SUFFIX))

    def load(self, job: CampaignJob) -> JobOutcome | None:
        """The cached outcome for ``job``, or None when absent or stale."""
        try:
            record = json.loads(self.path_for(job).read_text())
        except (OSError, ValueError):
            return None
        if not record_is_fresh(record, job):
            return None
        outcome = outcome_from_record(job, record)
        if outcome is not None:
            self._count_loaded()
        return outcome

    def save(self, outcome: JobOutcome) -> Path | None:
        """Persist an ``ok`` outcome; no-op for errors and timeouts."""
        if not outcome.ok:
            return None
        path = atomic_write_text(self.path_for(outcome.job),
                                 canonical_json(build_record(outcome)))
        self._count_saved()
        return path

    def completed_ids(self) -> set:
        return {path.stem for path in self._record_paths()}

    def canonical_records(self) -> dict:
        out = {}
        for path in self._record_paths():
            try:
                out[path.stem] = path.read_text()
            except OSError:  # raced with a concurrent delete
                continue
        return out

    def record_for(self, job_id: str) -> dict | None:
        # direct read: no need to load every record to parse one
        try:
            record = json.loads((self.root / f"{job_id}.json").read_text())
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def delete_record(self, job_id: str) -> bool:
        path = self.root / f"{job_id}.json"
        try:
            path.unlink()
        except OSError:
            return False
        return True
