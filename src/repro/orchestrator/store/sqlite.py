"""WAL-mode SQLite result store: one ``results.db`` instead of O(cells)
record files.

Why this exists: at matrix scale (thousands of contracts × presets ×
trials) the per-file layout makes resume an O(dir) glob plus a full
``json.loads`` of *every* record, and every worker outcome a synchronous
file write on the scheduler thread.  Here resume is one indexed query
over primary keys with no JSON parsing at all, record writes are batched
through a buffered writer (flushed on a size/interval threshold — the
scheduler is the single writer, and WAL readers never block on it), and
findings are projected into an indexed table that ``repro report``
queries without touching the records.

Determinism is preserved by construction, not by care: the database
stores the **exact canonical text** :func:`~repro.orchestrator.store.base.
build_record` + ``canonical_json`` produce — the same bytes the JSON
backend writes — and :meth:`~repro.orchestrator.store.base.StoreBackend.
export` materializes them back into the per-file layout.  The golden-
fixture tests diff that surface byte-for-byte against the JSON backend.

Checkpoint payloads are content-addressed: the canonical checkpoint text
goes into a sha256 :class:`~repro.orchestrator.store.blobs.BlobStore`
(trials over the same contract share most of their corpus, so identical
payloads dedupe to one blob), refcounted in the ``blobs`` table and
garbage-collected at refcount zero.  The worker-visible checkpoint *file*
(``<job_id>.checkpoint.json``) is a hardlink to the blob, so the worker
transport — workers hold a path, not a store — is unchanged.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.engine.checkpoint import CampaignCheckpoint, canonical_json
from repro.orchestrator.jobs import CampaignJob, JobOutcome
from repro.orchestrator.store.base import (
    _S_CHECKPOINT_WRITE,
    CHECKPOINT_SUFFIX,
    SCHEMA_VERSION,
    StoreBackend,
    build_record,
    checkpoint_from_record_text,
    finding_rows_from_record,
    outcome_from_record,
    read_checkpoint_file,
)
from repro.orchestrator.store.blobs import BlobStore

#: the one database file a sqlite store keeps under its root
DB_NAME = "results.db"

#: buffered-writer thresholds: a flush is forced once this many records
#: are pending, or once the oldest pending record is this old
BATCH_SIZE = 64
FLUSH_INTERVAL = 0.5

#: SQLite's IN-clause parameter ceiling is 999 on old builds; chunk under it
_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    job_id      TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    status      TEXT NOT NULL,
    canonical   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_status ON records(status);
CREATE TABLE IF NOT EXISTS findings (
    job_id      TEXT NOT NULL,
    name        TEXT NOT NULL,
    preset      TEXT NOT NULL,
    trial       INTEGER NOT NULL,
    bug_class   TEXT NOT NULL,
    contract    TEXT NOT NULL,
    pc          INTEGER NOT NULL,
    line        INTEGER NOT NULL,
    severity    TEXT NOT NULL,
    confidence  REAL NOT NULL,
    description TEXT NOT NULL,
    fingerprint TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_findings_job ON findings(job_id);
CREATE INDEX IF NOT EXISTS idx_findings_contract ON findings(contract);
CREATE INDEX IF NOT EXISTS idx_findings_class ON findings(bug_class);
CREATE INDEX IF NOT EXISTS idx_findings_severity ON findings(severity);
CREATE INDEX IF NOT EXISTS idx_findings_fingerprint ON findings(fingerprint);
CREATE TABLE IF NOT EXISTS checkpoints (
    job_id      TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    sha         TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS blobs (
    sha  TEXT PRIMARY KEY,
    refs INTEGER NOT NULL
);
"""

_FINDING_COLUMNS = ("job_id", "name", "preset", "trial", "bug_class",
                    "contract", "pc", "line", "severity", "confidence",
                    "description", "fingerprint")


class SqliteResultStore(StoreBackend):
    """Single-file result store with batched writes and indexed queries."""

    name = "sqlite"

    def __init__(self, root, batch_size: int = BATCH_SIZE,
                 flush_interval: float = FLUSH_INTERVAL) -> None:
        super().__init__(root)
        self.db_path = self.root / DB_NAME
        self.blobs = BlobStore(self.root / "blobs")
        self.batch_size = int(batch_size)
        self.flush_interval = float(flush_interval)
        # one connection, guarded by a lock: the scheduler is the single
        # writer within a process, but `repro top` snapshots can read from
        # another thread, and cross-process writers (the stress test) are
        # serialized by SQLite itself via the busy timeout below
        self._conn = sqlite3.connect(str(self.db_path), timeout=10.0,
                                     check_same_thread=False)
        self._lock = threading.RLock()
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES (?, ?)",
                ("record_schema", str(SCHEMA_VERSION)))
        #: pending (job_id, fingerprint, status, canonical, finding_rows)
        self._pending = []
        self._last_flush = time.monotonic()

    # -- records --------------------------------------------------------------

    def save(self, outcome: JobOutcome) -> str | None:
        """Buffer an ``ok`` outcome (returns its job id; None for
        errors/timeouts); flushed on the size/interval threshold, on any
        read, and on close."""
        if not outcome.ok:
            return None
        record = build_record(outcome)
        text = canonical_json(record)
        rows = finding_rows_from_record(record)
        with self._lock:
            self._pending.append((outcome.job.job_id,
                                  record["fingerprint"], record["status"],
                                  text, rows))
            due = (len(self._pending) >= self.batch_size
                   or time.monotonic() - self._last_flush
                   >= self.flush_interval)
        self._count_saved(rows=0)  # rows are counted when they land
        if due:
            self.flush()
        return outcome.job.job_id

    def flush(self) -> None:
        """Commit every buffered record in one transaction.

        Saving a record also *consumes* the job's mid-campaign checkpoint
        (row, blob ref, and worker-visible file): a completed job's
        checkpoint is spent by definition.
        """
        with self._lock:
            batch, self._pending = self._pending, []
            self._last_flush = time.monotonic()
            if not batch:
                return
            rows_written = 0
            with self._conn:
                for job_id, fingerprint, status, text, rows in batch:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO records"
                        " (job_id, fingerprint, status, canonical)"
                        " VALUES (?, ?, ?, ?)",
                        (job_id, fingerprint, status, text))
                    self._conn.execute(
                        "DELETE FROM findings WHERE job_id = ?", (job_id,))
                    self._conn.executemany(
                        "INSERT INTO findings"
                        f" ({', '.join(_FINDING_COLUMNS)})"
                        f" VALUES ({', '.join('?' * len(_FINDING_COLUMNS))})",
                        [tuple(row[col] for col in _FINDING_COLUMNS)
                         for row in rows])
                    rows_written += 1 + len(rows)
                    self._drop_checkpoint_row(job_id)
            for job_id, *_ in batch:
                (self.root / f"{job_id}{CHECKPOINT_SUFFIX}") \
                    .unlink(missing_ok=True)
        self._count_flush(rows_written)

    def load(self, job: CampaignJob) -> JobOutcome | None:
        found = self.load_fresh([job])
        return found.get(job.job_id)

    def load_fresh(self, jobs) -> dict:
        """Cached outcomes for every fresh job — chunked indexed selects,
        parsing only the records that will actually be reused."""
        self.flush()
        start = time.perf_counter()
        wanted = {job.job_id: job for job in jobs}
        out = {}
        ids = sorted(wanted)
        with self._lock:
            for lo in range(0, len(ids), _CHUNK):
                chunk = ids[lo:lo + _CHUNK]
                cursor = self._conn.execute(
                    "SELECT job_id, fingerprint, status, canonical"
                    f" FROM records WHERE job_id IN"
                    f" ({', '.join('?' * len(chunk))})", chunk)
                for job_id, fingerprint, status, text in cursor:
                    job = wanted[job_id]
                    if fingerprint != job.fingerprint() or status != "ok":
                        continue
                    try:
                        record = json.loads(text)
                    except ValueError:
                        continue
                    outcome = outcome_from_record(job, record)
                    if outcome is not None:
                        out[job_id] = outcome
        self._count_query(time.perf_counter() - start)
        self._count_loaded(len(out))
        return out

    def fresh_ids(self, jobs) -> set:
        """The resume scan: fingerprint/status comparison straight off the
        primary-key index, no JSON parsed, no payload columns read."""
        self.flush()
        start = time.perf_counter()
        wanted = {job.job_id: job.fingerprint() for job in jobs}
        fresh = set()
        ids = sorted(wanted)
        with self._lock:
            (total,) = self._conn.execute(
                "SELECT COUNT(*) FROM records").fetchone()
            if len(ids) * 4 >= total:
                # the matrix covers most of the table (the common resume
                # shape): one sequential read beats per-chunk IN lookups
                cursor = self._conn.execute(
                    "SELECT job_id, fingerprint FROM records"
                    " WHERE status = 'ok'")
                fresh.update(job_id for job_id, fingerprint in cursor
                             if wanted.get(job_id) == fingerprint)
            else:
                for lo in range(0, len(ids), _CHUNK):
                    chunk = ids[lo:lo + _CHUNK]
                    cursor = self._conn.execute(
                        "SELECT job_id, fingerprint FROM records"
                        f" WHERE status = 'ok' AND job_id IN"
                        f" ({', '.join('?' * len(chunk))})", chunk)
                    fresh.update(job_id for job_id, fingerprint in cursor
                                 if wanted[job_id] == fingerprint)
        self._count_query(time.perf_counter() - start)
        return fresh

    def completed_ids(self) -> set:
        self.flush()
        start = time.perf_counter()
        with self._lock:
            ids = {row[0] for row in self._conn.execute(
                "SELECT job_id FROM records WHERE status = 'ok'")}
        self._count_query(time.perf_counter() - start)
        return ids

    def canonical_records(self) -> dict:
        self.flush()
        with self._lock:
            return dict(self._conn.execute(
                "SELECT job_id, canonical FROM records ORDER BY job_id"))

    def record_for(self, job_id: str) -> dict | None:
        self.flush()
        with self._lock:
            row = self._conn.execute(
                "SELECT canonical FROM records WHERE job_id = ?",
                (job_id,)).fetchone()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def delete_record(self, job_id: str) -> bool:
        self.flush()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM records WHERE job_id = ?", (job_id,))
            self._conn.execute(
                "DELETE FROM findings WHERE job_id = ?", (job_id,))
        return cursor.rowcount > 0

    # -- findings projection --------------------------------------------------

    def query_findings(self, contract=None, bug_class=None, severity=None,
                       fingerprint=None, job_id=None, preset=None) -> list:
        """Answer from the indexed projection — never parses a record."""
        self.flush()
        start = time.perf_counter()
        clauses, params = [], []
        for column, value in (("contract", contract), ("severity", severity),
                              ("fingerprint", fingerprint),
                              ("job_id", job_id), ("preset", preset)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if bug_class is not None:
            wanted = [bug_class] if isinstance(bug_class, str) \
                else sorted(bug_class)
            if not wanted:  # empty restriction selects nothing
                clauses.append("1 = 0")
            else:
                clauses.append(
                    f"bug_class IN ({', '.join('?' * len(wanted))})")
                params.extend(wanted)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = [dict(zip(_FINDING_COLUMNS, row))
                    for row in self._conn.execute(
                        f"SELECT {', '.join(_FINDING_COLUMNS)}"
                        f" FROM findings{where}"
                        " ORDER BY job_id, bug_class, contract, pc",
                        params)]
        self._count_query(time.perf_counter() - start)
        return rows

    # -- mid-campaign checkpoints ---------------------------------------------
    # The worker-visible file stays authoritative for *liveness* (workers
    # rewrite it directly, bypassing the store); the database row + blob
    # make scheduler-side checkpoints durable, deduplicated, and GC-able.

    def save_checkpoint(self, job: CampaignJob,
                        checkpoint: CampaignCheckpoint) -> Path:
        with _S_CHECKPOINT_WRITE:
            text = canonical_json({
                "schema": SCHEMA_VERSION,
                "fingerprint": job.fingerprint(),
                "checkpoint": checkpoint.to_dict(),
            })
            sha = self.blobs.put(text)
            with self._lock, self._conn:
                row = self._conn.execute(
                    "SELECT sha FROM checkpoints WHERE job_id = ?",
                    (job.job_id,)).fetchone()
                if row is None or row[0] != sha:
                    if row is not None:
                        self._decref(row[0])
                    self._conn.execute(
                        "INSERT INTO blobs(sha, refs) VALUES (?, 1)"
                        " ON CONFLICT(sha) DO UPDATE SET refs = refs + 1",
                        (sha,))
                    self._conn.execute(
                        "INSERT OR REPLACE INTO checkpoints"
                        " (job_id, fingerprint, sha) VALUES (?, ?, ?)",
                        (job.job_id, job.fingerprint(), sha))
            path = self.checkpoint_path_for(job)
            self.blobs.link(sha, path)
            return path

    def load_checkpoint(self, job: CampaignJob) -> CampaignCheckpoint | None:
        # the file is freshest (workers rewrite it mid-campaign); fall
        # back to the durable row + blob when it is gone
        checkpoint = read_checkpoint_file(self.checkpoint_path_for(job),
                                          job.fingerprint())
        if checkpoint is not None:
            return checkpoint
        with self._lock:
            row = self._conn.execute(
                "SELECT sha FROM checkpoints"
                " WHERE job_id = ? AND fingerprint = ?",
                (job.job_id, job.fingerprint())).fetchone()
        if row is None:
            return None
        text = self.blobs.get(row[0])
        if text is None:
            return None
        return checkpoint_from_record_text(text, job.fingerprint())

    def clear_checkpoint(self, job: CampaignJob) -> None:
        self.checkpoint_path_for(job).unlink(missing_ok=True)
        with self._lock, self._conn:
            self._drop_checkpoint_row(job.job_id)

    def checkpoint_ids(self) -> set:
        self.flush()
        with self._lock:
            ids = {row[0] for row in
                   self._conn.execute("SELECT job_id FROM checkpoints")}
        return ids | super().checkpoint_ids()

    def _drop_checkpoint_row(self, job_id: str) -> None:
        """Delete a checkpoint row and release its blob reference.
        Caller holds the lock and an open transaction."""
        row = self._conn.execute(
            "SELECT sha FROM checkpoints WHERE job_id = ?",
            (job_id,)).fetchone()
        if row is None:
            return
        self._conn.execute("DELETE FROM checkpoints WHERE job_id = ?",
                           (job_id,))
        self._decref(row[0])

    def _decref(self, sha: str) -> None:
        self._conn.execute(
            "UPDATE blobs SET refs = refs - 1 WHERE sha = ?", (sha,))
        row = self._conn.execute(
            "SELECT refs FROM blobs WHERE sha = ?", (sha,)).fetchone()
        if row is not None and row[0] <= 0:
            self._conn.execute("DELETE FROM blobs WHERE sha = ?", (sha,))
            self.blobs.delete(sha)

    def gc_blobs(self) -> int:
        """Sweep unreferenced blob files (repairs interrupted decrefs too:
        a blob whose row vanished in a rollback is simply re-swept here).
        Returns the number of files removed."""
        self.flush()
        with self._lock:
            with self._conn:
                self._conn.execute("DELETE FROM blobs WHERE refs <= 0")
                referenced = {row[0] for row in
                              self._conn.execute("SELECT sha FROM blobs")}
            orphans = sorted(self.blobs.shas() - referenced)
            for sha in orphans:
                self.blobs.delete(sha)
        return len(orphans)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self.flush()
        with self._lock:
            self._conn.close()
