"""Aggregating campaign-matrix outcomes into paper-style statistics.

Trials of the same (contract, preset) cell merge into a
:class:`TrialSummary` (mean/best coverage, per-class detection rates,
averaged coverage-vs-steps curve); summaries roll up into the tables the
existing :mod:`repro.reporting` renderers draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.campaign import CampaignResult
from repro.oracles.base import FindingCollector


def average_curves(curves, points: int = 25) -> list:
    """Resample (step, coverage) curves onto a shared step axis and average
    them — the merge the coverage figures (Fig. 5) plot."""
    curves = [curve for curve in curves]
    max_step = max((curve[-1][0] for curve in curves if curve), default=1)
    xs = [int(max_step * i / points) for i in range(1, points + 1)]
    averaged = []
    for x in xs:
        ys = []
        for curve in curves:
            y = 0.0
            for step, cov in curve:
                if step <= x:
                    y = cov
                else:
                    break
            ys.append(y)
        averaged.append((x, sum(ys) / len(ys) if ys else 0.0))
    return averaged


@dataclass
class TrialSummary:
    """Statistics for one (contract, preset) cell across its trials."""

    fuzzer: str
    contract: str
    preset: str
    trials: int
    mean_coverage: float
    best_coverage: float
    mean_steps: float
    #: BugClass → fraction of trials that detected it
    detection_rates: dict = field(default_factory=dict)
    #: merged (step, coverage) curve across trials
    curve: list = field(default_factory=list)

    @property
    def bug_classes(self) -> set:
        return set(self.detection_rates)


def group_outcomes(outcomes) -> dict:
    """(preset, contract name) → list of ok CampaignResults, job order."""
    groups: dict = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        key = (outcome.job.preset, outcome.job.name)
        groups.setdefault(key, []).append(outcome.result)
    return groups


def summarize(outcomes) -> list:
    """One :class:`TrialSummary` per (preset, contract) with ok trials."""
    summaries = []
    for (preset, contract), results in group_outcomes(outcomes).items():
        rates: dict = {}
        for result in results:
            for bug_class in result.bug_classes:
                rates[bug_class] = rates.get(bug_class, 0) + 1
        n = len(results)
        summaries.append(TrialSummary(
            fuzzer=results[0].fuzzer,
            contract=contract,
            preset=preset,
            trials=n,
            mean_coverage=sum(r.coverage for r in results) / n,
            best_coverage=max(r.coverage for r in results),
            mean_steps=sum(r.total_steps for r in results) / n,
            detection_rates={bc: count / n
                             for bc, count in sorted(
                                 rates.items(),
                                 key=lambda kv: kv[0].value)},
            curve=average_curves([r.curve for r in results]),
        ))
    return summaries


def merge_trials(results) -> CampaignResult:
    """Collapse one cell's trials into a single CampaignResult: mean
    coverage, union of findings (deduplicated), averaged curve.  This is
    the shape :func:`repro.reporting.aggregate_fuzzer_detection` consumes
    when a matrix ran multiple trials per contract."""
    results = list(results)
    if not results:
        raise ValueError("merge_trials needs at least one result")
    collector = FindingCollector()
    for result in results:
        collector.extend(result.findings)
    n = len(results)
    return CampaignResult(
        fuzzer=results[0].fuzzer,
        contract=results[0].contract,
        coverage=sum(r.coverage for r in results) / n,
        iterations=sum(r.iterations for r in results),
        total_steps=sum(r.total_steps for r in results),
        wall_time=sum(r.wall_time for r in results),
        findings=collector.all(),
        curve=average_curves([r.curve for r in results]),
        seeds_in_queue=max(r.seeds_in_queue for r in results),
        transactions=sum(r.transactions for r in results),
        example_sequence=list(results[-1].example_sequence),
    )


def merged_results(outcomes) -> dict:
    """preset → {contract name → merged CampaignResult}."""
    merged: dict = {}
    for (preset, contract), results in group_outcomes(outcomes).items():
        merged.setdefault(preset, {})[contract] = merge_trials(results)
    return merged


def matrix_table(summaries) -> tuple:
    """(headers, rows) for :func:`repro.reporting.format_table`."""
    headers = ["fuzzer", "contract", "trials", "mean cov", "best cov",
               "mean steps", "bugs found"]
    rows = []
    for s in sorted(summaries, key=lambda s: (s.fuzzer, s.contract)):
        classes = ",".join(
            f"{bc.value}" + ("" if rate >= 1.0 else f"({rate:.0%})")
            for bc, rate in s.detection_rates.items()) or "-"
        rows.append([s.fuzzer, s.contract, s.trials,
                     f"{s.mean_coverage:.1%}", f"{s.best_coverage:.1%}",
                     f"{s.mean_steps:,.0f}", classes])
    return headers, rows


def fuzzer_coverage_bars(summaries) -> list:
    """(fuzzer display name, mean coverage over contracts) entries for
    :func:`repro.reporting.format_percentage_bars`."""
    by_fuzzer: dict = {}
    for s in summaries:
        by_fuzzer.setdefault(s.fuzzer, []).append(s.mean_coverage)
    return [(name, sum(covs) / len(covs))
            for name, covs in by_fuzzer.items()]
