"""Persistent, resumable JSON store for campaign results.

One file per job under the results directory, named by ``job_id``.  Files
are written in canonical form — sorted keys, fixed separators, trailing
newline, and ``wall_time`` normalized to 0.0 — so two runs of the same
matrix with the same seeds produce *byte-identical* artifacts no matter
the worker count or scheduling order.  Wall-clock timing is environment
noise; the scheduler reports it live but it never enters the store.

Each record carries the job's content :meth:`fingerprint
<repro.orchestrator.jobs.CampaignJob.fingerprint>`; a cached result is
only reused when the fingerprint still matches, so editing a contract or
a config re-runs exactly the affected cells.  Only ``ok`` outcomes are
persisted — errors and timeouts are retried on the next run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.campaign import CampaignResult
from repro.orchestrator.jobs import CampaignJob, JobOutcome

SCHEMA_VERSION = 1


def canonical_json(record: dict) -> str:
    return json.dumps(record, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


class ResultStore:
    """Directory of per-job campaign result records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job: CampaignJob) -> Path:
        return self.root / f"{job.job_id}.json"

    def load(self, job: CampaignJob) -> JobOutcome | None:
        """The cached outcome for ``job``, or None when absent or stale."""
        path = self.path_for(job)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("fingerprint") != job.fingerprint()
                or record.get("status") != "ok"):
            return None
        try:
            result = CampaignResult.from_dict(record["result"])
        except (KeyError, ValueError, TypeError):
            return None
        return JobOutcome(job=job, status="ok", result=result)

    def save(self, outcome: JobOutcome) -> Path | None:
        """Persist an ``ok`` outcome; no-op for errors and timeouts."""
        if not outcome.ok:
            return None
        job = outcome.job
        result_data = outcome.result.to_dict()
        result_data["wall_time"] = 0.0
        record = {
            "schema": SCHEMA_VERSION,
            "job_id": job.job_id,
            "fingerprint": job.fingerprint(),
            "name": job.name,
            "preset": job.preset,
            "trial": job.trial,
            "rng_seed": job.derived_seed(),
            "status": outcome.status,
            "result": result_data,
        }
        path = self.path_for(job)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(record))
        tmp.replace(path)
        return path

    def completed_ids(self) -> set:
        return {path.stem for path in self.root.glob("*.json")}
