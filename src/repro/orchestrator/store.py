"""Persistent, resumable JSON store for campaign results and checkpoints.

One result file per job under the results directory, named by ``job_id``.
Files are written in canonical form — sorted keys, fixed separators,
trailing newline, and ``wall_time`` normalized to 0.0 — so two runs of the
same matrix with the same seeds produce *byte-identical* artifacts no
matter the worker count or scheduling order.  Wall-clock timing is
environment noise; the scheduler reports it live but it never enters the
store.

Each record carries the job's content :meth:`fingerprint
<repro.orchestrator.jobs.CampaignJob.fingerprint>`; a cached result is
only reused when the fingerprint still matches, so editing a contract or
a config re-runs exactly the affected cells.  Only ``ok`` outcomes are
persisted — errors and timeouts are retried on the next run.

The store also holds **mid-campaign checkpoints**
(``<job_id>.checkpoint.json``): with ``run_matrix(checkpoint_every=N)``
workers periodically persist their
:class:`~repro.engine.checkpoint.CampaignCheckpoint`, so an interrupted
matrix resumes *mid-campaign* — not merely at job granularity — and the
resumed cells still settle byte-identical results (the engine's
determinism guarantee).  A checkpoint is consumed (deleted) when its job
completes, and ignored when its fingerprint no longer matches the job.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.campaign import CampaignResult
from repro.engine.checkpoint import CampaignCheckpoint, canonical_json
from repro.orchestrator.jobs import CampaignJob, JobOutcome
from repro.telemetry.spans import span as _span

#: wall time spent serializing + atomically writing campaign checkpoints
_S_CHECKPOINT_WRITE = _span("checkpoint.write")

__all__ = ["ResultStore", "CheckpointSession", "canonical_json",
           "write_checkpoint_file", "read_checkpoint_file",
           "clear_checkpoint_file", "CHECKPOINT_SUFFIX",
           "TELEMETRY_SUFFIX", "LIVE_TELEMETRY_NAME"]

#: Schema history —
#: 1: job identity + result.
#: 2: records additionally embed the contract source, contract name, the
#:    fully-resolved config, and the oracle restriction, making each record
#:    self-contained evidence: ``repro replay record.json`` re-executes
#:    every finding's witness without any external context.  v1 records
#:    simply re-run (they are caches, not data).
SCHEMA_VERSION = 2

#: suffix distinguishing checkpoint files from result records
CHECKPOINT_SUFFIX = ".checkpoint.json"

#: suffix distinguishing live telemetry files from result records
TELEMETRY_SUFFIX = ".telemetry.json"

#: the matrix-level live progress file ``repro top`` follows
LIVE_TELEMETRY_NAME = f"live{TELEMETRY_SUFFIX}"


def write_checkpoint_file(path, checkpoint: CampaignCheckpoint,
                          fingerprint: str) -> None:
    """Atomically persist one campaign checkpoint with its owner's
    fingerprint (module-level: workers hold a path, not a store)."""
    path = Path(path)
    with _S_CHECKPOINT_WRITE:
        record = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "checkpoint": checkpoint.to_dict(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(canonical_json(record))
        tmp.replace(path)


def read_checkpoint_file(path, fingerprint: str) -> CampaignCheckpoint | None:
    """Load a checkpoint; None when absent, mangled, or stale (fingerprint
    mismatch — the job's source/config/seed changed since it was taken)."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if (not isinstance(record, dict)
            or record.get("schema") != SCHEMA_VERSION
            or record.get("fingerprint") != fingerprint):
        return None
    try:
        return CampaignCheckpoint.from_dict(record["checkpoint"])
    except (KeyError, ValueError, TypeError, IndexError):
        return None


def clear_checkpoint_file(path) -> None:
    Path(path).unlink(missing_ok=True)


class CheckpointSession:
    """The checkpoint lifecycle of one campaign run against one file:
    read-by-fingerprint, sink wiring, consume-on-completion.

    Shared by ``repro fuzz`` and the backend workers so the two paths
    cannot drift.  The file is *owned* — and therefore consumed by
    :meth:`complete` — only once this run resumed from a matching
    checkpoint or actually wrote one; a mismatched checkpoint that was
    merely probed belongs to some other campaign and is left alone.
    """

    def __init__(self, path, fingerprint: str,
                 every: int | None = None) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.every = every
        self._owned = False

    def load(self) -> CampaignCheckpoint | None:
        """The checkpoint to resume from, if a matching one is here."""
        checkpoint = read_checkpoint_file(self.path, self.fingerprint)
        if checkpoint is not None:
            self._owned = True
        return checkpoint

    def run_kwargs(self) -> dict:
        """Keyword arguments for :meth:`Fuzzer.run`: the periodic sink
        when checkpointing is on, nothing otherwise."""
        if not self.every:
            return {}

        def sink(checkpoint) -> None:
            write_checkpoint_file(self.path, checkpoint, self.fingerprint)
            self._owned = True

        return {"checkpoint_every": int(self.every),
                "checkpoint_sink": sink}

    def complete(self) -> None:
        """Consume the checkpoint after a completed campaign."""
        if self._owned:
            clear_checkpoint_file(self.path)


class ResultStore:
    """Directory of per-job campaign result records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job: CampaignJob) -> Path:
        return self.root / f"{job.job_id}.json"

    def load(self, job: CampaignJob) -> JobOutcome | None:
        """The cached outcome for ``job``, or None when absent or stale."""
        path = self.path_for(job)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("fingerprint") != job.fingerprint()
                or record.get("status") != "ok"):
            return None
        try:
            result = CampaignResult.from_dict(record["result"])
        except (KeyError, ValueError, TypeError):
            return None
        return JobOutcome(job=job, status="ok", result=result,
                          telemetry=record.get("telemetry"))

    def save(self, outcome: JobOutcome) -> Path | None:
        """Persist an ``ok`` outcome; no-op for errors and timeouts."""
        if not outcome.ok:
            return None
        job = outcome.job
        result_data = outcome.result.to_dict()
        result_data["wall_time"] = 0.0
        record = {
            "schema": SCHEMA_VERSION,
            "job_id": job.job_id,
            "fingerprint": job.fingerprint(),
            "name": job.name,
            "preset": job.preset,
            "trial": job.trial,
            "rng_seed": job.derived_seed(),
            "status": outcome.status,
            # self-contained replay context: source + resolved config +
            # oracle restriction (see repro.core.replay.replay_record)
            "source": job.source,
            "contract": job.contract,
            "config": dataclasses.asdict(job.build_config()),
            "supported_bug_classes": (
                None if job.supported_bug_classes is None
                else list(job.supported_bug_classes)),
            "result": result_data,
        }
        if outcome.telemetry is not None:
            # observability sidecar: the job's telemetry registry delta.
            # Deliberately outside "result" and outside the fingerprint —
            # records with and without it are equally valid caches, and
            # the campaign's canonical artifact stays byte-identical
            # whether telemetry ran or not.
            record["telemetry"] = outcome.telemetry
        path = self.path_for(job)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(record))
        tmp.replace(path)
        return path

    def completed_ids(self) -> set:
        return {path.stem for path in self.root.glob("*.json")
                if not path.name.endswith(CHECKPOINT_SUFFIX)
                and not path.name.endswith(TELEMETRY_SUFFIX)}

    def live_telemetry_path(self) -> Path:
        """Where the orchestrator publishes live matrix progress."""
        return self.root / LIVE_TELEMETRY_NAME

    # -- mid-campaign checkpoints ----------------------------------------------

    def checkpoint_path_for(self, job: CampaignJob) -> Path:
        return self.root / f"{job.job_id}{CHECKPOINT_SUFFIX}"

    def save_checkpoint(self, job: CampaignJob,
                        checkpoint: CampaignCheckpoint) -> Path:
        path = self.checkpoint_path_for(job)
        write_checkpoint_file(path, checkpoint, job.fingerprint())
        return path

    def load_checkpoint(self, job: CampaignJob) -> CampaignCheckpoint | None:
        return read_checkpoint_file(self.checkpoint_path_for(job),
                                    job.fingerprint())

    def clear_checkpoint(self, job: CampaignJob) -> None:
        clear_checkpoint_file(self.checkpoint_path_for(job))

    def checkpoint_ids(self) -> set:
        """Job ids with a pending mid-campaign checkpoint."""
        return {path.name[:-len(CHECKPOINT_SUFFIX)]
                for path in self.root.glob(f"*{CHECKPOINT_SUFFIX}")}
