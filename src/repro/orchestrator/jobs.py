"""Campaign job model: the unit of work the orchestrator schedules.

A :class:`CampaignJob` is one (contract, fuzzer preset, trial) cell of a
campaign matrix.  Jobs are plain data — contract *source* rather than a
compiled artifact — so they pickle cheaply across ``spawn`` process
boundaries and serialize into the persistent result store.

Per-trial RNG seeds are derived deterministically from
``(base_seed, contract name, preset, trial)`` via SHA-256, so the same
matrix always fuzzes with the same seeds regardless of worker count,
scheduling order, or ``PYTHONHASHSEED``.  An explicit ``rng_seed`` override
bypasses derivation (used by the paper benchmarks, which pin one seed
across the whole cohort).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field

from repro.core.campaign import CampaignResult
from repro.core.config import FuzzerConfig, preset_config
from repro.oracles.base import BugClass

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text) or "unnamed"


@dataclass
class CampaignJob:
    """One schedulable campaign: contract × preset × trial."""

    #: display name; also keys the result store (sanitized)
    name: str
    #: MiniSol source the worker compiles
    source: str
    #: key into :data:`repro.core.config.PRESET_CONFIGS`
    preset: str
    #: contract to compile within ``source`` (None = first contract)
    contract: str | None = None
    trial: int = 0
    base_seed: int = 1
    #: FuzzerConfig field overrides (must be JSON-serializable)
    overrides: dict = field(default_factory=dict)
    #: restricted oracle set as BugClass values (None = all nine)
    supported_bug_classes: list | None = None
    #: memoized :meth:`fingerprint` — jobs are immutable once built, and
    #: a resume scan hashes every job several times (fresh-id check,
    #: cached-result load, checkpoint session) without this
    _fingerprint: str | None = field(default=None, init=False,
                                     repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.supported_bug_classes is not None:
            self.supported_bug_classes = sorted(self.supported_bug_classes)

    @property
    def job_id(self) -> str:
        """Stable, filesystem-safe identity within one matrix."""
        return (f"{_slug(self.name)}__{_slug(self.preset)}"
                f"__t{self.trial:03d}")

    def derived_seed(self) -> int:
        """Deterministic per-trial RNG seed (see module docstring)."""
        if "rng_seed" in self.overrides:
            return int(self.overrides["rng_seed"])
        token = f"{self.base_seed}|{self.name}|{self.preset}|{self.trial}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def build_config(self) -> FuzzerConfig:
        overrides = dict(self.overrides)
        overrides["rng_seed"] = self.derived_seed()
        return preset_config(self.preset, **overrides)

    def supported_set(self) -> set | None:
        if self.supported_bug_classes is None:
            return None
        return {BugClass(v) for v in self.supported_bug_classes}

    def fingerprint(self) -> str:
        """Content hash of everything that determines the job's result.

        Stored alongside persisted results so a rerun only reuses a cached
        result when the source, preset, seed, and overrides all still
        match — stale results re-run instead of silently surviving."""
        if self._fingerprint is None:
            payload = json.dumps(self.to_dict(), sort_keys=True)
            self._fingerprint = hashlib.sha256(
                payload.encode("utf-8")).hexdigest()[:16]
        return self._fingerprint

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "source": self.source,
            "preset": self.preset,
            "contract": self.contract,
            "trial": self.trial,
            "base_seed": self.base_seed,
            "overrides": dict(self.overrides),
            "supported_bug_classes": (
                None if self.supported_bug_classes is None
                else list(self.supported_bug_classes)),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignJob":
        return cls(
            name=data["name"],
            source=data["source"],
            preset=data["preset"],
            contract=data.get("contract"),
            trial=int(data.get("trial", 0)),
            base_seed=int(data.get("base_seed", 1)),
            overrides=dict(data.get("overrides") or {}),
            supported_bug_classes=data.get("supported_bug_classes"),
        )


@dataclass
class JobOutcome:
    """What happened to one job: an ok result, an error, or a timeout."""

    job: CampaignJob
    status: str  # 'ok' | 'error' | 'timeout'
    result: object = None  # CampaignResult when status == 'ok'
    error: str = ""
    #: wall-clock seconds observed by the scheduler (never persisted:
    #: timing is environment noise, not part of the canonical artifact)
    elapsed: float = 0.0
    #: per-job telemetry registry delta (a :func:`repro.telemetry.snapshot`
    #: dict) when the run collected telemetry; never part of the result
    #: payload or any fingerprint
    telemetry: dict | None = None
    #: the job's last worker heartbeat (a ProgressSnapshot wire dict) —
    #: attached by the scheduler when the worker died or overran, so a
    #: post-mortem shows where the campaign was (stage, iteration, seed)
    heartbeat: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # -- wire format (worker process -> scheduler results queue) -----------------

    def to_wire(self) -> dict:
        """Plain-dict form a worker sends back over the results queue.

        Only the fields the scheduler cannot reconstruct travel: the job
        itself is identified by ``job_id`` (the scheduler already holds
        the full :class:`CampaignJob`), so sources never cross the
        boundary twice."""
        return {
            "job_id": self.job.job_id,
            "status": self.status,
            "result": self.result.to_dict() if self.ok else None,
            "error": self.error,
            "elapsed": self.elapsed,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_wire(cls, job: CampaignJob, wire: dict) -> "JobOutcome":
        """Rebuild an outcome from a wire record (inverse of
        :meth:`to_wire`; raises on a mangled record)."""
        return cls(
            job=job,
            status=wire["status"],
            result=(CampaignResult.from_dict(wire["result"])
                    if wire["status"] == "ok" else None),
            error=wire["error"],
            elapsed=wire["elapsed"],
            telemetry=wire.get("telemetry"),
        )


def build_matrix(contracts, presets, trials: int = 1, base_seed: int = 1,
                 overrides: dict | None = None,
                 supported: dict | None = None) -> list:
    """Expand contracts × presets × trials into a job list.

    ``contracts`` holds objects with ``.name``/``.source`` (corpus entries)
    or ``(name, source)`` pairs.  ``supported`` optionally maps preset key →
    iterable of :class:`BugClass` restricting that preset's oracles.
    """
    jobs = []
    for entry in contracts:
        if isinstance(entry, tuple):
            name, source = entry
            contract = None
        else:
            name, source = entry.name, entry.source
            contract = entry.name
        for preset in presets:
            classes = None
            if supported is not None and supported.get(preset) is not None:
                classes = sorted(bc.value for bc in supported[preset])
            for trial in range(trials):
                jobs.append(CampaignJob(
                    name=name, source=source, preset=preset,
                    contract=contract, trial=trial, base_seed=base_seed,
                    overrides=dict(overrides or {}),
                    supported_bug_classes=classes))
    seen: dict = {}
    for job in jobs:
        if job.job_id in seen:
            raise ValueError(
                f"duplicate job id {job.job_id!r}: contract names must be "
                f"unique within a matrix")
        seen[job.job_id] = job
    return jobs
