"""Parallel campaign orchestration with a persistent result store.

Turns the one-shot :class:`repro.core.Fuzzer` into a scalable matrix
runner: (contract × fuzzer preset × trial) jobs with deterministic
per-trial seeds, pluggable execution backends (inline / spawn-per-job /
persistent worker pool with per-worker compile caches) with per-job
timeouts and crash isolation, canonical-JSON result persistence with
fingerprint-checked resume, and trial aggregation feeding the paper-style
reporting tables.  ``repro campaign`` on the command line and the
coverage/bug-detection benchmarks both run on this subsystem.
"""

from repro.orchestrator.aggregate import (
    TrialSummary,
    average_curves,
    fuzzer_coverage_bars,
    matrix_table,
    merge_trials,
    summarize,
)
from repro.orchestrator.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    backend_for,
    create_backend,
    execute_job,
    resolve_workers,
    run_jobs,
)
from repro.orchestrator.jobs import CampaignJob, JobOutcome, build_matrix
from repro.orchestrator.runner import MatrixRun, run_matrix
from repro.orchestrator.store import ResultStore

__all__ = [
    "BACKENDS",
    "CampaignJob",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "JobOutcome",
    "MatrixRun",
    "ResultStore",
    "TrialSummary",
    "average_curves",
    "backend_for",
    "build_matrix",
    "create_backend",
    "execute_job",
    "fuzzer_coverage_bars",
    "matrix_table",
    "merge_trials",
    "resolve_workers",
    "run_jobs",
    "run_matrix",
    "summarize",
]
