"""The orchestrator entry point: run a campaign matrix end to end.

``run_matrix`` expands contracts × presets × trials into jobs, skips the
cells a :class:`~repro.orchestrator.store.ResultStore` already holds
(matching fingerprints only), fans the rest out over the worker pool, and
persists fresh results — so an interrupted matrix resumes where it left
off and a finished one is a pure cache hit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.orchestrator import aggregate
from repro.orchestrator.backends import create_backend
from repro.orchestrator.jobs import build_matrix
from repro.orchestrator.store import ResultStore


@dataclass
class MatrixRun:
    """Everything one matrix run produced, in job order."""

    outcomes: list
    cached: int = 0
    executed: int = 0
    elapsed: float = 0.0
    results_dir: str | None = None
    #: execution backend name the fresh cells ran on
    backend: str | None = None
    #: backend run statistics (worker count, compile-cache hits/misses,
    #: workers recycled/killed); zeros when every cell was cached
    stats: dict = field(default_factory=dict)

    @property
    def errors(self) -> list:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def timeouts(self) -> list:
        return [o for o in self.outcomes if o.status == "timeout"]

    def ok_results(self) -> list:
        """(job, CampaignResult) pairs for every successful cell."""
        return [(o.job, o.result) for o in self.outcomes if o.ok]

    def results_for(self, preset: str) -> dict:
        """contract name → list of trial CampaignResults for one preset."""
        return {contract: results
                for (p, contract), results
                in aggregate.group_outcomes(self.outcomes).items()
                if p == preset}

    def summaries(self) -> list:
        return aggregate.summarize(self.outcomes)

    def merged_results(self) -> dict:
        return aggregate.merged_results(self.outcomes)


def run_matrix(contracts, presets, trials: int = 1, base_seed: int = 1,
               overrides: dict | None = None, supported: dict | None = None,
               workers: int | None = None, results_dir=None,
               job_timeout: float | None = None,
               progress=None, backend: str | None = None,
               recycle_after: int | None = None,
               checkpoint_every: int | None = None,
               time_budget: float | None = None,
               tx_budget: int | None = None,
               oracles=None) -> MatrixRun:
    """Run (or resume) a campaign matrix; see module docstring.

    ``results_dir=None`` keeps everything in memory (no persistence,
    nothing skipped).  ``workers=None`` uses ``os.cpu_count()``.
    ``backend`` picks the execution backend (``inline``, ``spawn``, or
    ``pool``; ``None`` auto-selects — inline for the single-worker
    no-timeout debugging mode, otherwise the default pool).  Results are
    byte-identical across backends and worker counts.  ``recycle_after``
    retires each pool worker after that many jobs to bound memory growth.

    ``time_budget``/``tx_budget`` are per-campaign budget specs folded
    into every job's config (combined with the iteration budget by the
    engine's single :class:`~repro.engine.budget.Budget` authority).
    ``checkpoint_every=N`` (requires ``results_dir``) makes workers
    persist a mid-campaign checkpoint every N executions; an interrupted
    matrix then resumes *mid-campaign* from those checkpoints, with
    byte-identical final results.

    ``oracles`` restricts every campaign to the given bug classes
    (iterable of :class:`~repro.oracles.base.BugClass` members or string
    codes); it folds into each job's config as ``bug_classes``, so the
    restriction participates in result fingerprints and checkpoints.  Use
    ``supported`` instead to model *per-preset* tool capability sets.
    """
    start = time.perf_counter()
    if oracles is not None:
        from repro.core.config import normalize_bug_classes
        overrides = dict(overrides or {})
        if "bug_classes" in overrides:
            raise ValueError("oracles given both directly and as a "
                             "bug_classes override; pass it one way")
        overrides["bug_classes"] = list(normalize_bug_classes(oracles))
    if checkpoint_every is not None and results_dir is None:
        raise ValueError("checkpoint_every requires results_dir "
                         "(checkpoints persist next to the results)")
    if time_budget is not None or tx_budget is not None:
        overrides = dict(overrides or {})
        for key, value in (("time_budget", time_budget),
                           ("tx_budget", tx_budget)):
            if value is None:
                continue
            if key in overrides:
                raise ValueError(f"{key} given both directly and in "
                                 f"overrides; pass it one way")
            overrides[key] = float(value) if key == "time_budget" \
                else int(value)
    jobs = build_matrix(contracts, presets, trials=trials,
                        base_seed=base_seed, overrides=overrides,
                        supported=supported)

    store = ResultStore(results_dir) if results_dir is not None else None
    cached: dict = {}
    pending = []
    for job in jobs:
        outcome = store.load(job) if store is not None else None
        if outcome is not None:
            cached[job.job_id] = outcome
            # a completed cell's leftover checkpoint (crash between result
            # save and checkpoint cleanup) is stale — drop it
            store.clear_checkpoint(job)
        else:
            pending.append(job)

    engine = create_backend(backend, workers=workers,
                            job_timeout=job_timeout,
                            recycle_after=recycle_after,
                            checkpoint_every=checkpoint_every,
                            checkpoint_dir=(None if store is None
                                            else store.root))
    fresh = {}
    if pending:
        def on_settle(outcome):
            if store is not None:
                store.save(outcome)
            if progress is not None:
                progress(outcome)

        for outcome in engine.run(pending, progress=on_settle):
            fresh[outcome.job.job_id] = outcome

    outcomes = [cached[job.job_id] if job.job_id in cached
                else fresh[job.job_id] for job in jobs]
    return MatrixRun(
        outcomes=outcomes,
        cached=len(cached),
        executed=len(fresh),
        elapsed=time.perf_counter() - start,
        results_dir=None if results_dir is None else str(results_dir),
        backend=engine.name,
        stats=dict(engine.stats),
    )
