"""The orchestrator entry point: run a campaign matrix end to end.

``run_matrix`` expands contracts × presets × trials into jobs, skips the
cells a :class:`~repro.orchestrator.store.ResultStore` already holds
(matching fingerprints only), fans the rest out over the worker pool, and
persists fresh results — so an interrupted matrix resumes where it left
off and a finished one is a pure cache hit.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.engine.checkpoint import canonical_json
from repro.orchestrator import aggregate
from repro.orchestrator.backends import create_backend
from repro.orchestrator.jobs import build_matrix
from repro.orchestrator.store import ResultStore, atomic_write_text


@dataclass
class RunStats:
    """Typed run-level statistics for one matrix run.

    Replaces the former untyped ``MatrixRun.stats`` dict; keeps
    dict-style ``get``/``[]``/``in`` access so existing consumers (bench
    recorders, tests) read it unchanged.  ``to_wire()`` is the canonical
    serialization the BENCH_orchestrator.json writers embed — it includes
    the derived rates (execs/sec, txs/sec, cache hit rate) alongside the
    raw counters.
    """

    #: execution backend name the fresh cells ran on
    backend: str | None = None
    workers: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    workers_recycled: int = 0
    workers_killed: int = 0
    #: campaign iterations / transactions across the *fresh* (executed)
    #: cells — cached cells did no work this run
    executions: int = 0
    transactions: int = 0
    #: wall-clock seconds of the whole matrix run
    elapsed: float = 0.0
    #: merged telemetry registry snapshot across every fresh job (None
    #: when the run did not collect telemetry)
    telemetry: dict | None = None
    #: result-store counters (backend, records saved/loaded, rows written,
    #: batch flushes, query time) from ``StoreBackend.stats_dict``; None
    #: when the run kept everything in memory
    store: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        total = self.compile_cache_hits + self.compile_cache_misses
        return self.compile_cache_hits / total if total else 0.0

    @property
    def execs_per_sec(self) -> float:
        return self.executions / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def txs_per_sec(self) -> float:
        return self.transactions / self.elapsed if self.elapsed > 0 else 0.0

    def to_wire(self) -> dict:
        data = asdict(self)
        data["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        data["execs_per_sec"] = round(self.execs_per_sec, 2)
        data["txs_per_sec"] = round(self.txs_per_sec, 2)
        return data

    @classmethod
    def from_backend(cls, engine, executions: int = 0,
                     transactions: int = 0,
                     elapsed: float = 0.0) -> "RunStats":
        known = set(cls.__dataclass_fields__)
        fields = {k: v for k, v in engine.stats.items() if k in known}
        return cls(executions=executions, transactions=transactions,
                   elapsed=elapsed,
                   telemetry=getattr(engine, "telemetry_totals", None),
                   **fields)

    # -- dict-style compatibility ------------------------------------------------

    def get(self, key: str, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __getitem__(self, key: str):
        if key in self.__dataclass_fields__ or key in (
                "cache_hit_rate", "execs_per_sec", "txs_per_sec"):
            return getattr(self, key)
        raise KeyError(key)

    def __contains__(self, key: str) -> bool:
        return (key in self.__dataclass_fields__
                or key in ("cache_hit_rate", "execs_per_sec",
                           "txs_per_sec"))


@dataclass
class MatrixRun:
    """Everything one matrix run produced, in job order."""

    outcomes: list
    cached: int = 0
    executed: int = 0
    elapsed: float = 0.0
    results_dir: str | None = None
    #: execution backend name the fresh cells ran on
    backend: str | None = None
    #: typed run statistics (worker count, compile-cache hits/misses,
    #: throughput, merged telemetry); zeros when every cell was cached
    stats: RunStats = field(default_factory=RunStats)

    @property
    def errors(self) -> list:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def timeouts(self) -> list:
        return [o for o in self.outcomes if o.status == "timeout"]

    def ok_results(self) -> list:
        """(job, CampaignResult) pairs for every successful cell."""
        return [(o.job, o.result) for o in self.outcomes if o.ok]

    def results_for(self, preset: str) -> dict:
        """contract name → list of trial CampaignResults for one preset."""
        return {contract: results
                for (p, contract), results
                in aggregate.group_outcomes(self.outcomes).items()
                if p == preset}

    def summaries(self) -> list:
        return aggregate.summarize(self.outcomes)

    def merged_results(self) -> dict:
        return aggregate.merged_results(self.outcomes)


class _LiveProgressWriter:
    """Publishes the matrix's live progress file for ``repro top``.

    Writes are atomic (tmp + replace, so a reader never sees a torn
    record) and throttled; heartbeats and settlements update scheduler
    state that is observational only — a write failure is swallowed
    because observability must never take the matrix down.
    """

    MIN_INTERVAL = 0.5

    def __init__(self, path, total: int, cached: int = 0) -> None:
        self.path = path
        self.total = total
        self.cached = cached
        self.settled = cached
        self.jobs: dict = {}      # job_id -> latest heartbeat snapshot
        self.statuses: dict = {}  # job_id -> settled status
        self._started = time.monotonic()
        self._last_write = 0.0
        self._write(force=True)

    def on_heartbeat(self, wire: dict) -> None:
        job_id = wire.get("job_id")
        if job_id:
            self.jobs[job_id] = wire.get("snapshot") or {}
        self._write()

    def on_settle(self, outcome) -> None:
        self.settled += 1
        self.statuses[outcome.job.job_id] = outcome.status
        self.jobs.pop(outcome.job.job_id, None)  # no longer in flight
        self._write(force=True)

    def finalize(self, stats: "RunStats") -> None:
        self._write(force=True, stats=stats)

    def _write(self, force: bool = False, stats=None) -> None:
        now = time.monotonic()
        if not force and now - self._last_write < self.MIN_INTERVAL:
            return
        self._last_write = now
        record = {
            "kind": "matrix_progress",
            "total": self.total,
            "settled": self.settled,
            "cached": self.cached,
            "elapsed_s": round(now - self._started, 3),
            "done": stats is not None,
            "in_flight": self.jobs,
            "statuses": self.statuses,
        }
        if stats is not None:
            record["stats"] = stats.to_wire()
        try:
            # atomic but unsynced: a torn read is impossible, and a lost
            # progress frame costs nothing (fsync here would put a disk
            # stall on every heartbeat)
            atomic_write_text(self.path, canonical_json(record),
                              fsync=False)
        except OSError:
            pass


def run_matrix(contracts, presets, trials: int = 1, base_seed: int = 1,
               overrides: dict | None = None, supported: dict | None = None,
               workers: int | None = None, results_dir=None,
               job_timeout: float | None = None,
               progress=None, backend: str | None = None,
               recycle_after: int | None = None,
               checkpoint_every: int | None = None,
               time_budget: float | None = None,
               tx_budget: int | None = None,
               oracles=None,
               state_cache: bool | None = None,
               state_cache_capacity: int | None = None,
               surface_pruning: bool | None = None,
               block_fusion: bool | None = None,
               telemetry: bool = False,
               heartbeat_every: float | None = None,
               on_heartbeat=None,
               store: str | None = None) -> MatrixRun:
    """Run (or resume) a campaign matrix; see module docstring.

    ``results_dir=None`` keeps everything in memory (no persistence,
    nothing skipped).  ``workers=None`` uses ``os.cpu_count()``.
    ``backend`` picks the execution backend (``inline``, ``spawn``, or
    ``pool``; ``None`` auto-selects — inline for the single-worker
    no-timeout debugging mode, otherwise the default pool).  Results are
    byte-identical across backends and worker counts.  ``recycle_after``
    retires each pool worker after that many jobs to bound memory growth.

    ``time_budget``/``tx_budget`` are per-campaign budget specs folded
    into every job's config (combined with the iteration budget by the
    engine's single :class:`~repro.engine.budget.Budget` authority).
    ``checkpoint_every=N`` (requires ``results_dir``) makes workers
    persist a mid-campaign checkpoint every N executions; an interrupted
    matrix then resumes *mid-campaign* from those checkpoints, with
    byte-identical final results.

    ``oracles`` restricts every campaign to the given bug classes
    (iterable of :class:`~repro.oracles.base.BugClass` members or string
    codes); it folds into each job's config as ``bug_classes``, so the
    restriction participates in result fingerprints and checkpoints.  Use
    ``supported`` instead to model *per-preset* tool capability sets.

    ``state_cache``/``state_cache_capacity`` pin the prefix-snapshot
    state cache (``use_state_cache``/``state_cache_capacity`` config
    overrides) for every campaign in the matrix; ``None`` leaves the
    config default (cache on).  The cache is a pure performance layer —
    results are byte-identical either way.  ``surface_pruning`` likewise
    pins ``use_surface_pruning`` (oracle pruning from the vulnerability
    surface's opcode-absence proofs) with the same byte-identity
    guarantee, and ``block_fusion`` pins ``use_block_fusion`` (the
    superinstruction execution tier of :mod:`repro.evm.fusion`).

    ``telemetry=True`` collects per-job metrics/span deltas (merged into
    ``MatrixRun.stats.telemetry``, embedded in result records) and turns
    on worker heartbeats: with a ``results_dir`` the scheduler publishes
    a throttled live progress file (``live.telemetry.json``) that
    ``repro top`` follows, and ``on_heartbeat(wire)`` (optional) sees
    every heartbeat as it arrives.  Telemetry is provably inert — results
    are byte-identical with it on or off.

    ``store`` picks the result-store backend (``json`` or ``sqlite``) for
    ``results_dir``; ``None`` honors an existing store's format, then the
    ``REPRO_STORE`` environment variable, then defaults to ``json``.  The
    canonical artifact is byte-identical across backends (the sqlite
    store keeps exact canonical record text and exports to the per-file
    layout).
    """
    start = time.perf_counter()
    if oracles is not None:
        from repro.core.config import normalize_bug_classes
        overrides = dict(overrides or {})
        if "bug_classes" in overrides:
            raise ValueError("oracles given both directly and as a "
                             "bug_classes override; pass it one way")
        overrides["bug_classes"] = list(normalize_bug_classes(oracles))
    if (state_cache is not None or state_cache_capacity is not None
            or surface_pruning is not None or block_fusion is not None):
        overrides = dict(overrides or {})
        for key, value in (("use_state_cache", state_cache),
                           ("state_cache_capacity", state_cache_capacity),
                           ("use_surface_pruning", surface_pruning),
                           ("use_block_fusion", block_fusion)):
            if value is None:
                continue
            if key in overrides:
                raise ValueError(f"{key} given both directly and in "
                                 f"overrides; pass it one way")
            overrides[key] = value
    if checkpoint_every is not None and results_dir is None:
        raise ValueError("checkpoint_every requires results_dir "
                         "(checkpoints persist next to the results)")
    if time_budget is not None or tx_budget is not None:
        overrides = dict(overrides or {})
        for key, value in (("time_budget", time_budget),
                           ("tx_budget", tx_budget)):
            if value is None:
                continue
            if key in overrides:
                raise ValueError(f"{key} given both directly and in "
                                 f"overrides; pass it one way")
            overrides[key] = float(value) if key == "time_budget" \
                else int(value)
    jobs = build_matrix(contracts, presets, trials=trials,
                        base_seed=base_seed, overrides=overrides,
                        supported=supported)

    store = ResultStore(results_dir, backend=store) \
        if results_dir is not None else None
    cached = store.load_fresh(jobs) if store is not None else {}
    pending = []
    for job in jobs:
        if job.job_id in cached:
            # a completed cell's leftover checkpoint (crash between result
            # save and checkpoint cleanup) is stale — drop it
            store.clear_checkpoint(job)
        else:
            pending.append(job)

    live = (_LiveProgressWriter(store.live_telemetry_path(), len(jobs),
                                cached=len(cached))
            if telemetry and store is not None else None)

    def heartbeat(wire) -> None:
        if live is not None:
            live.on_heartbeat(wire)
        if on_heartbeat is not None:
            on_heartbeat(wire)

    engine = create_backend(backend, workers=workers,
                            job_timeout=job_timeout,
                            recycle_after=recycle_after,
                            checkpoint_every=checkpoint_every,
                            checkpoint_dir=(None if store is None
                                            else store.root),
                            telemetry=telemetry,
                            heartbeat_every=heartbeat_every,
                            heartbeat=(heartbeat if telemetry else None))
    fresh = {}
    if pending:
        def on_settle(outcome):
            if store is not None:
                store.save(outcome)
            if live is not None:
                live.on_settle(outcome)
            if progress is not None:
                progress(outcome)

        for outcome in engine.run(pending, progress=on_settle):
            fresh[outcome.job.job_id] = outcome

    if store is not None:
        store.flush()  # buffered backends: every record durable before return
    outcomes = [cached[job.job_id] if job.job_id in cached
                else fresh[job.job_id] for job in jobs]
    elapsed = time.perf_counter() - start
    fresh_ok = [o for o in fresh.values() if o.ok]
    stats = RunStats.from_backend(
        engine,
        executions=sum(o.result.iterations for o in fresh_ok),
        transactions=sum(o.result.transactions for o in fresh_ok),
        elapsed=elapsed)
    if store is not None:
        stats.store = store.stats_dict()
    if live is not None:
        live.finalize(stats)
    return MatrixRun(
        outcomes=outcomes,
        cached=len(cached),
        executed=len(fresh),
        elapsed=elapsed,
        results_dir=None if results_dir is None else str(results_dir),
        backend=engine.name,
        stats=stats,
    )
