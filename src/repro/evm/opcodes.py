"""EVM opcode definitions.

Numbering follows the Ethereum yellow paper so that bytecode produced by the
MiniSol compiler disassembles like real EVM output.  Only the subset needed by
the compiler, the fuzzer, and the bug oracles is defined; executing an
undefined byte raises :class:`repro.evm.errors.InvalidOpcode`, which is itself
meaningful to the unhandled-exception oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Op(IntEnum):
    """EVM opcodes (yellow-paper numbering)."""

    STOP = 0x00
    ADD = 0x01
    MUL = 0x02
    SUB = 0x03
    DIV = 0x04
    SDIV = 0x05
    MOD = 0x06
    SMOD = 0x07
    ADDMOD = 0x08
    MULMOD = 0x09
    EXP = 0x0A
    SIGNEXTEND = 0x0B

    LT = 0x10
    GT = 0x11
    SLT = 0x12
    SGT = 0x13
    EQ = 0x14
    ISZERO = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    NOT = 0x19
    BYTE = 0x1A
    SHL = 0x1B
    SHR = 0x1C

    SHA3 = 0x20

    ADDRESS = 0x30
    BALANCE = 0x31
    ORIGIN = 0x32
    CALLER = 0x33
    CALLVALUE = 0x34
    CALLDATALOAD = 0x35
    CALLDATASIZE = 0x36
    CODESIZE = 0x38
    GASPRICE = 0x3A

    BLOCKHASH = 0x40
    COINBASE = 0x41
    TIMESTAMP = 0x42
    NUMBER = 0x43
    DIFFICULTY = 0x44
    GASLIMIT = 0x45

    POP = 0x50
    MLOAD = 0x51
    MSTORE = 0x52
    MSTORE8 = 0x53
    SLOAD = 0x54
    SSTORE = 0x55
    JUMP = 0x56
    JUMPI = 0x57
    PC = 0x58
    MSIZE = 0x59
    GAS = 0x5A
    JUMPDEST = 0x5B

    PUSH1 = 0x60
    PUSH2 = 0x61
    PUSH3 = 0x62
    PUSH4 = 0x63
    PUSH5 = 0x64
    PUSH6 = 0x65
    PUSH7 = 0x66
    PUSH8 = 0x67
    PUSH16 = 0x6F
    PUSH20 = 0x73
    PUSH32 = 0x7F

    DUP1 = 0x80
    DUP2 = 0x81
    DUP3 = 0x82
    DUP4 = 0x83
    DUP5 = 0x84
    DUP6 = 0x85
    DUP7 = 0x86
    DUP8 = 0x87

    SWAP1 = 0x90
    SWAP2 = 0x91
    SWAP3 = 0x92
    SWAP4 = 0x93
    SWAP5 = 0x94
    SWAP6 = 0x95
    SWAP7 = 0x96
    SWAP8 = 0x97

    LOG0 = 0xA0
    LOG1 = 0xA1

    CREATE = 0xF0
    CALL = 0xF1
    RETURN = 0xF3
    DELEGATECALL = 0xF4
    REVERT = 0xFD
    INVALID = 0xFE
    SELFDESTRUCT = 0xFF


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    name: str
    pops: int
    pushes: int
    gas: int


#: Base gas schedule (a simplified but yellow-paper-shaped cost model).
_G_BASE = 2
_G_VERYLOW = 3
_G_LOW = 5
_G_MID = 8
_G_HIGH = 10
_G_SLOAD = 200
_G_SSTORE = 5000
_G_SHA3 = 30
_G_CALL = 700
_G_CREATE = 32000
_G_SELFDESTRUCT = 5000
_G_JUMPDEST = 1

OPCODE_INFO: dict[int, OpInfo] = {
    Op.STOP: OpInfo("STOP", 0, 0, 0),
    Op.ADD: OpInfo("ADD", 2, 1, _G_VERYLOW),
    Op.MUL: OpInfo("MUL", 2, 1, _G_LOW),
    Op.SUB: OpInfo("SUB", 2, 1, _G_VERYLOW),
    Op.DIV: OpInfo("DIV", 2, 1, _G_LOW),
    Op.SDIV: OpInfo("SDIV", 2, 1, _G_LOW),
    Op.MOD: OpInfo("MOD", 2, 1, _G_LOW),
    Op.SMOD: OpInfo("SMOD", 2, 1, _G_LOW),
    Op.ADDMOD: OpInfo("ADDMOD", 3, 1, _G_MID),
    Op.MULMOD: OpInfo("MULMOD", 3, 1, _G_MID),
    Op.EXP: OpInfo("EXP", 2, 1, _G_HIGH),
    Op.SIGNEXTEND: OpInfo("SIGNEXTEND", 2, 1, _G_LOW),
    Op.LT: OpInfo("LT", 2, 1, _G_VERYLOW),
    Op.GT: OpInfo("GT", 2, 1, _G_VERYLOW),
    Op.SLT: OpInfo("SLT", 2, 1, _G_VERYLOW),
    Op.SGT: OpInfo("SGT", 2, 1, _G_VERYLOW),
    Op.EQ: OpInfo("EQ", 2, 1, _G_VERYLOW),
    Op.ISZERO: OpInfo("ISZERO", 1, 1, _G_VERYLOW),
    Op.AND: OpInfo("AND", 2, 1, _G_VERYLOW),
    Op.OR: OpInfo("OR", 2, 1, _G_VERYLOW),
    Op.XOR: OpInfo("XOR", 2, 1, _G_VERYLOW),
    Op.NOT: OpInfo("NOT", 1, 1, _G_VERYLOW),
    Op.BYTE: OpInfo("BYTE", 2, 1, _G_VERYLOW),
    Op.SHL: OpInfo("SHL", 2, 1, _G_VERYLOW),
    Op.SHR: OpInfo("SHR", 2, 1, _G_VERYLOW),
    Op.SHA3: OpInfo("SHA3", 2, 1, _G_SHA3),
    Op.ADDRESS: OpInfo("ADDRESS", 0, 1, _G_BASE),
    Op.BALANCE: OpInfo("BALANCE", 1, 1, 400),
    Op.ORIGIN: OpInfo("ORIGIN", 0, 1, _G_BASE),
    Op.CALLER: OpInfo("CALLER", 0, 1, _G_BASE),
    Op.CALLVALUE: OpInfo("CALLVALUE", 0, 1, _G_BASE),
    Op.CALLDATALOAD: OpInfo("CALLDATALOAD", 1, 1, _G_VERYLOW),
    Op.CALLDATASIZE: OpInfo("CALLDATASIZE", 0, 1, _G_BASE),
    Op.CODESIZE: OpInfo("CODESIZE", 0, 1, _G_BASE),
    Op.GASPRICE: OpInfo("GASPRICE", 0, 1, _G_BASE),
    Op.BLOCKHASH: OpInfo("BLOCKHASH", 1, 1, 20),
    Op.COINBASE: OpInfo("COINBASE", 0, 1, _G_BASE),
    Op.TIMESTAMP: OpInfo("TIMESTAMP", 0, 1, _G_BASE),
    Op.NUMBER: OpInfo("NUMBER", 0, 1, _G_BASE),
    Op.DIFFICULTY: OpInfo("DIFFICULTY", 0, 1, _G_BASE),
    Op.GASLIMIT: OpInfo("GASLIMIT", 0, 1, _G_BASE),
    Op.POP: OpInfo("POP", 1, 0, _G_BASE),
    Op.MLOAD: OpInfo("MLOAD", 1, 1, _G_VERYLOW),
    Op.MSTORE: OpInfo("MSTORE", 2, 0, _G_VERYLOW),
    Op.MSTORE8: OpInfo("MSTORE8", 2, 0, _G_VERYLOW),
    Op.SLOAD: OpInfo("SLOAD", 1, 1, _G_SLOAD),
    Op.SSTORE: OpInfo("SSTORE", 2, 0, _G_SSTORE),
    Op.JUMP: OpInfo("JUMP", 1, 0, _G_MID),
    Op.JUMPI: OpInfo("JUMPI", 2, 0, _G_HIGH),
    Op.PC: OpInfo("PC", 0, 1, _G_BASE),
    Op.MSIZE: OpInfo("MSIZE", 0, 1, _G_BASE),
    Op.GAS: OpInfo("GAS", 0, 1, _G_BASE),
    Op.JUMPDEST: OpInfo("JUMPDEST", 0, 0, _G_JUMPDEST),
    Op.LOG0: OpInfo("LOG0", 2, 0, 375),
    Op.LOG1: OpInfo("LOG1", 3, 0, 750),
    Op.CREATE: OpInfo("CREATE", 3, 1, _G_CREATE),
    Op.CALL: OpInfo("CALL", 7, 1, _G_CALL),
    Op.RETURN: OpInfo("RETURN", 2, 0, 0),
    Op.DELEGATECALL: OpInfo("DELEGATECALL", 6, 1, _G_CALL),
    Op.REVERT: OpInfo("REVERT", 2, 0, 0),
    Op.INVALID: OpInfo("INVALID", 0, 0, 0),
    Op.SELFDESTRUCT: OpInfo("SELFDESTRUCT", 1, 0, _G_SELFDESTRUCT),
}

# PUSH/DUP/SWAP families: fill in every width so the disassembler can decode
# arbitrary compiler output even for widths without a named enum member.
for _width in range(1, 33):
    OPCODE_INFO.setdefault(0x60 + _width - 1, OpInfo(f"PUSH{_width}", 0, 1, _G_VERYLOW))
for _n in range(1, 17):
    OPCODE_INFO.setdefault(0x80 + _n - 1, OpInfo(f"DUP{_n}", _n, _n + 1, _G_VERYLOW))
    OPCODE_INFO.setdefault(0x90 + _n - 1, OpInfo(f"SWAP{_n}", _n + 1, _n + 1, _G_VERYLOW))

#: Comparison opcodes whose result feeds branch-distance computation.
COMPARISON_OPS = frozenset({Op.LT, Op.GT, Op.SLT, Op.SGT, Op.EQ})

#: Instructions the dynamic-energy analysis treats as "vulnerable" (§IV-C).
VULNERABLE_OPS = frozenset(
    {Op.CALL, Op.DELEGATECALL, Op.TIMESTAMP, Op.NUMBER, Op.BALANCE,
     Op.ORIGIN, Op.SELFDESTRUCT, Op.ADD, Op.MUL, Op.SUB}
)


def is_push(opcode: int) -> bool:
    """Return True for any PUSH1..PUSH32 byte."""
    return 0x60 <= opcode <= 0x7F


def push_width(opcode: int) -> int:
    """Number of immediate bytes following a PUSH opcode."""
    if not is_push(opcode):
        raise ValueError(f"opcode {opcode:#x} is not a PUSH")
    return opcode - 0x60 + 1


def is_dup(opcode: int) -> bool:
    """Return True for any DUP1..DUP16 byte."""
    return 0x80 <= opcode <= 0x8F


def is_swap(opcode: int) -> bool:
    """Return True for any SWAP1..SWAP16 byte."""
    return 0x90 <= opcode <= 0x9F


def mnemonic(opcode: int) -> str:
    """Human-readable name for an opcode byte (``UNKNOWN_xx`` if undefined)."""
    info = OPCODE_INFO.get(opcode)
    if info is None:
        return f"UNKNOWN_{opcode:02x}"
    return info.name
