"""Shared per-code analysis: jumpdest sets + a predecoded instruction stream.

The fuzzing loop builds a fresh :class:`~repro.evm.machine.Machine` for
every transaction (`chain.Chain.apply`), so any per-instance cache of code
analysis is cold on every transaction of every iteration.  This module
hoists that work to a *process-level* LRU cache keyed on ``sha256(code)``:
one contract's bytecode is scanned exactly once per worker process, no
matter how many Machines, transactions, or campaign iterations execute it.

``analyze_code`` returns a :class:`CodeAnalysis` with

* ``jumpdests`` — the valid JUMP/JUMPI targets (immediate bytes skipped);
* ``decoded``  — a per-pc dispatch table: ``decoded[pc]`` is ``None`` for
  undefined bytes (and unreachable immediate positions), else a tuple
  ``(kind, gas, a, b)`` the interpreter loop consumes without any further
  dict probes, ``is_push``/``push_width`` calls, enum constructions, or
  byte slicing:

  ====================  =========================  ======================
  kind                  a                          b
  ====================  =========================  ======================
  ``KIND_PUSH``         immediate value (padded)   next pc
  ``KIND_DUP``          n (1-based)                next pc
  ``KIND_SWAP``         n (1-based)                next pc
  ``KIND_JUMPDEST``     --                         next pc
  ``KIND_JUMP``         --                         --
  ``KIND_JUMPI``        --                         next pc (fallthrough)
  ``KIND_STOP``         --                         --
  ``KIND_SIMPLE``       handler function           next pc
  ====================  =========================  ======================

PUSH immediates that run past end-of-code decode as right-zero-padded
values (EVM spec), matching :mod:`repro.analysis.disassembler`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.evm import opcodes
from repro.evm.handlers import SIMPLE_HANDLERS, make_unhandled
from repro.evm.opcodes import Op
from repro.telemetry import metrics as _metrics

#: telemetry mirrors of the hit/miss counters.  analyze_code runs once
#: per *frame* — far too hot for even a no-op instrument call — so the
#: mirrors are filled by a snapshot-time collector from the module's own
#: ``_hits``/``_misses`` ints instead of being incremented per call.
_T_HITS = _metrics.counter("evm.analysis_cache.hits")
_T_MISSES = _metrics.counter("evm.analysis_cache.misses")


def _collect_cache_counters() -> None:
    _T_HITS.set_total(_hits)
    _T_MISSES.set_total(_misses)


_metrics.register_collector(_collect_cache_counters)

#: dispatch-entry kinds, ordered roughly by dynamic frequency.  CALL-family
#: opcodes get their own kind because they recurse into nested frames: the
#: interpreter syncs its local step counter with the machine around them
#: (every other kind runs counter-free).
(KIND_PUSH, KIND_SIMPLE, KIND_DUP, KIND_SWAP,
 KIND_JUMPI, KIND_JUMP, KIND_JUMPDEST, KIND_STOP, KIND_CALL) = range(9)

#: process-level cache bound: far above the distinct codes of any one
#: campaign (contract under test + agents), sized for long-lived workers
#: that fuzz many contracts back to back
CACHE_CAPACITY = 256


class CodeAnalysis:
    """Immutable per-bytecode analysis shared by every Machine."""

    __slots__ = ("jumpdests", "decoded", "code_len")

    def __init__(self, jumpdests: frozenset, decoded: list,
                 code_len: int) -> None:
        self.jumpdests = jumpdests
        self.decoded = decoded
        self.code_len = code_len


_cache: OrderedDict[bytes, CodeAnalysis] = OrderedDict()
#: identity fast path over the sha256 cache: code bytes live in stable
#: objects (``Account.code`` / ``artifact.runtime_code``), so ``id(code)``
#: is a safe memo key *while the entry holds a strong reference to the
#: bytes* (which pins the id).  Skips one sha256 per frame.  A bare
#: ``id(code)`` key is only sound because :class:`CodeAnalysis` is
#: mask-independent; any layer that specializes per event mask must key
#: its memo on ``(id(code), mask)`` — see the fused-program memo in
#: :mod:`repro.evm.fusion`, where two configs sharing one worker process
#: would otherwise cross-contaminate.
_id_memo: dict[int, tuple] = {}
_ID_MEMO_CAPACITY = 64
_hits = 0
_misses = 0


def _analyze(code: bytes) -> CodeAnalysis:
    n = len(code)
    decoded: list = [None] * n
    dests = set()
    info_get = opcodes.OPCODE_INFO.get
    i = 0
    while i < n:
        op = code[i]
        info = info_get(op)
        if info is None:
            # undefined byte: left as None, raises InvalidOpcode if executed
            i += 1
            continue
        gas = info.gas
        if 0x60 <= op <= 0x7F:  # PUSH1..PUSH32
            width = op - 0x5F
            imm = code[i + 1: i + 1 + width]
            if len(imm) < width:
                # EVM spec: immediates past end-of-code read as zero —
                # the value is right-padded, not shrunk
                imm = imm.ljust(width, b"\x00")
            decoded[i] = (KIND_PUSH, gas, int.from_bytes(imm, "big"),
                          i + 1 + width)
            i += 1 + width
            continue
        if 0x80 <= op <= 0x8F:  # DUP1..DUP16
            decoded[i] = (KIND_DUP, gas, op - 0x80 + 1, i + 1)
        elif 0x90 <= op <= 0x9F:  # SWAP1..SWAP16
            decoded[i] = (KIND_SWAP, gas, op - 0x90 + 1, i + 1)
        elif op == Op.JUMPDEST:
            dests.add(i)
            decoded[i] = (KIND_JUMPDEST, gas, 0, i + 1)
        elif op == Op.JUMPI:
            decoded[i] = (KIND_JUMPI, gas, 0, i + 1)
        elif op == Op.JUMP:
            decoded[i] = (KIND_JUMP, gas, 0, 0)
        elif op == Op.STOP:
            decoded[i] = (KIND_STOP, gas, 0, 0)
        elif op == Op.CALL or op == Op.DELEGATECALL:
            decoded[i] = (KIND_CALL, gas, SIMPLE_HANDLERS[op], i + 1)
        else:
            handler = SIMPLE_HANDLERS.get(op)
            if handler is None:
                handler = make_unhandled(op)
            decoded[i] = (KIND_SIMPLE, gas, handler, i + 1)
        i += 1
    return CodeAnalysis(frozenset(dests), decoded, n)


def analyze_code(code: bytes) -> CodeAnalysis:
    """The (cached) analysis for ``code``."""
    global _hits, _misses
    memo = _id_memo.get(id(code))
    if memo is not None and memo[0] is code:
        _hits += 1
        return memo[1]
    key = hashlib.sha256(code).digest()
    entry = _cache.get(key)
    if entry is not None:
        _hits += 1
        _cache.move_to_end(key)
    else:
        _misses += 1
        entry = _analyze(code)
        _cache[key] = entry
        while len(_cache) > CACHE_CAPACITY:
            _cache.popitem(last=False)
    if len(_id_memo) >= _ID_MEMO_CAPACITY:
        _id_memo.clear()
    _id_memo[id(code)] = (code, entry)
    return entry


def cache_stats() -> dict:
    """Hit/miss counters and current size (tests and benches)."""
    return {"hits": _hits, "misses": _misses, "entries": len(_cache)}


#: heartbeat-facing name (see :func:`repro.telemetry.progress.snapshot_of`)
analysis_cache_stats = cache_stats


def clear_cache() -> None:
    """Drop every cached analysis and reset the counters."""
    global _hits, _misses
    _cache.clear()
    _id_memo.clear()
    _hits = 0
    _misses = 0
