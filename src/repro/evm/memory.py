"""Byte-addressed EVM memory with word-granular shadow tracking."""

from __future__ import annotations

from repro.evm.trace import EMPTY_SHADOW, Shadow


class Memory:
    """Expandable byte memory.

    Shadows are tracked per 32-byte-aligned word, which matches how the
    MiniSol compiler uses memory (word-sized locals and SHA3 scratch space).
    Unaligned accesses conservatively union the shadows of the words touched.
    """

    __slots__ = ("data", "_shadows", "_paid")

    def __init__(self) -> None:
        self.data = bytearray()
        self._shadows: dict[int, Shadow] = {}
        # Word-aligned high-water mark of already-expanded extent.  Most
        # accesses hit memory that a previous MSTORE/MLOAD already grew, so
        # the hot path is one integer compare instead of len() plus the
        # round-up arithmetic.  There is no memory-expansion gas model here
        # (gas is flat per opcode); this caches only the extent bookkeeping.
        self._paid = 0

    def __len__(self) -> int:
        return len(self.data)

    def _expand(self, offset: int, size: int) -> None:
        end = offset + size
        if end <= self._paid:
            return
        # Expand in 32-byte increments like the real EVM.
        new_len = ((end + 31) // 32) * 32
        self.data.extend(b"\x00" * (new_len - len(self.data)))
        self._paid = new_len

    def store_word(self, offset: int, value: int, shadow: Shadow = EMPTY_SHADOW) -> None:
        """MSTORE: write a 32-byte big-endian word."""
        self._expand(offset, 32)
        self.data[offset:offset + 32] = value.to_bytes(32, "big")
        if shadow.taints or shadow.dist_true is not None:
            self._shadows[offset] = shadow
        else:
            self._shadows.pop(offset, None)

    def store_byte(self, offset: int, value: int) -> None:
        """MSTORE8: write the low byte of ``value``."""
        self._expand(offset, 1)
        self.data[offset] = value & 0xFF

    def load_word(self, offset: int) -> tuple[int, Shadow]:
        """MLOAD: read a 32-byte word and its shadow."""
        self._expand(offset, 32)
        value = int.from_bytes(self.data[offset:offset + 32], "big")
        shadow = self._shadows.get(offset)
        if shadow is None:
            # Unaligned read: union shadows of any overlapping stored words.
            taints: frozenset = frozenset()
            for word_off, s in self._shadows.items():
                if word_off < offset + 32 and offset < word_off + 32:
                    taints |= s.taints
            shadow = Shadow(taints) if taints else EMPTY_SHADOW
        return value, shadow

    def read(self, offset: int, size: int) -> bytes:
        """Raw byte-range read (used by SHA3 / RETURN / call argument packing)."""
        if size == 0:
            return b""
        self._expand(offset, size)
        return bytes(self.data[offset:offset + size])

    def write(self, offset: int, payload: bytes) -> None:
        """Raw byte-range write (used to place call return data)."""
        if not payload:
            return
        self._expand(offset, len(payload))
        self.data[offset:offset + len(payload)] = payload

    def range_taints(self, offset: int, size: int) -> frozenset:
        """Union of taints stored in ``[offset, offset+size)``."""
        taints: frozenset = frozenset()
        for word_off, s in self._shadows.items():
            if word_off < offset + size and offset < word_off + 32:
                taints |= s.taints
        return taints
