"""Execution tracing, taint tags, and branch-distance shadows.

The machine maintains a *shadow* for every stack value: a set of taint tags
plus, for boolean-ish values produced by comparisons, the branch distances
that the sFuzz-style feedback needs (§IV-B of the paper).  Oracles operate on
the stream of semantic :class:`TraceEvent` records collected here rather than
on a raw instruction log, which keeps a fuzzing campaign affordable in pure
Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


U256_MAX = (1 << 256) - 1


class Taint(str, Enum):
    """Taint tags attached to stack values."""

    BLOCK = "block"          # TIMESTAMP / NUMBER / BLOCKHASH / COINBASE / DIFFICULTY
    BALANCE = "balance"      # BALANCE opcode result
    ORIGIN = "origin"        # ORIGIN opcode result
    CALLDATA = "calldata"    # CALLDATALOAD result (attacker-controlled input)
    CALLVALUE = "callvalue"  # CALLVALUE result
    CALLER = "caller"        # CALLER result (used by modifier-guard detection)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def call_result_tag(call_index: int) -> str:
    """Taint tag carried by the success flag of the ``call_index``-th call."""
    return f"cr:{call_index}"


def is_call_result_tag(tag: str) -> bool:
    """True if ``tag`` marks a call-success flag (see :func:`call_result_tag`)."""
    return isinstance(tag, str) and tag.startswith("cr:")


@dataclass(frozen=True, slots=True)
class Shadow:
    """Taint + branch-distance metadata for one stack value.

    ``dist_true``/``dist_false`` are the sFuzz branch distances: how far the
    producing comparison was from evaluating true (resp. false).  ``None``
    means the value was not produced by a comparison chain.
    """

    taints: frozenset = frozenset()
    dist_true: int | None = None
    dist_false: int | None = None

    def with_taints(self, extra: frozenset) -> "Shadow":
        """A copy of this shadow with ``extra`` taints unioned in."""
        if not extra:
            return self
        return Shadow(self.taints | extra, self.dist_true, self.dist_false)

    def negated(self) -> "Shadow":
        """Shadow of ISZERO(value): distances swap, taints persist."""
        return Shadow(self.taints, self.dist_false, self.dist_true)


EMPTY_SHADOW = Shadow()


def merge_taints(*shadows: Shadow | None) -> frozenset:
    """Union of taints across shadows, treating ``None`` as untainted."""
    out: frozenset = frozenset()
    for s in shadows:
        if s is not None and s.taints:
            out |= s.taints
    return out


def comparison_shadow(op_name: str, x: int, y: int, taints: frozenset) -> Shadow:
    """Branch-distance shadow for a comparison ``x <op> y`` (x was stack top).

    Distances follow the standard branch-distance definitions used by sFuzz:
    zero when the desired outcome already holds, otherwise a positive measure
    of how far the operands are from flipping the predicate.
    """

    def signed(v: int) -> int:
        return v - (1 << 256) if v >= (1 << 255) else v

    if op_name == "LT":
        d_true = 0 if x < y else x - y + 1
        d_false = 0 if x >= y else y - x
    elif op_name == "GT":
        d_true = 0 if x > y else y - x + 1
        d_false = 0 if x <= y else x - y
    elif op_name == "SLT":
        sx, sy = signed(x), signed(y)
        d_true = 0 if sx < sy else sx - sy + 1
        d_false = 0 if sx >= sy else sy - sx
    elif op_name == "SGT":
        sx, sy = signed(x), signed(y)
        d_true = 0 if sx > sy else sy - sx + 1
        d_false = 0 if sx <= sy else sx - sy
    elif op_name == "EQ":
        diff = abs(x - y)
        d_true = diff
        d_false = 0 if diff else 1
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"not a comparison: {op_name}")
    return Shadow(taints, d_true, d_false)


def combine_and(a: Shadow, b: Shadow) -> Shadow:
    """Shadow of a boolean AND of two comparison results."""
    taints = a.taints | b.taints
    if a.dist_true is None or b.dist_true is None:
        return Shadow(taints)
    return Shadow(taints, a.dist_true + b.dist_true, min(a.dist_false, b.dist_false))


def combine_or(a: Shadow, b: Shadow) -> Shadow:
    """Shadow of a boolean OR of two comparison results."""
    taints = a.taints | b.taints
    if a.dist_true is None or b.dist_true is None:
        return Shadow(taints)
    return Shadow(taints, min(a.dist_true, b.dist_true), a.dist_false + b.dist_false)


# ---------------------------------------------------------------------------
# Semantic trace events
# ---------------------------------------------------------------------------

#: Event-kind flags: one bit per :class:`TraceEvent` family.  The machine's
#: ``event_mask`` (union of what the engine's feedback loop needs and what
#: the subscribed oracles declare) decides which kinds are *materialized at
#: all* — an unsubscribed kind costs one boolean check per opcode instead of
#: a dataclass allocation plus a list append.
(EV_BRANCH, EV_COMPARE, EV_CALL, EV_OVERFLOW, EV_STORAGE,
 EV_SELFDESTRUCT, EV_BLOCK, EV_ETHER) = (1 << i for i in range(8))

EV_ALL = (EV_BRANCH | EV_COMPARE | EV_CALL | EV_OVERFLOW | EV_STORAGE
          | EV_SELFDESTRUCT | EV_BLOCK | EV_ETHER)

#: flag → human name (docs, bench labels, debugging)
EVENT_KIND_NAMES = {
    EV_BRANCH: "branch",
    EV_COMPARE: "compare",
    EV_CALL: "call",
    EV_OVERFLOW: "overflow",
    EV_STORAGE: "storage",
    EV_SELFDESTRUCT: "selfdestruct",
    EV_BLOCK: "block",
    EV_ETHER: "ether",
}

#: the kinds whose events describe *state effects* and are rolled back when
#: the subcall that produced them reverts (see ExecutionTrace.subcall_mark)
EV_STATE_EFFECTS = EV_OVERFLOW | EV_STORAGE | EV_SELFDESTRUCT | EV_ETHER


@dataclass(slots=True)
class TraceEvent:
    """Base record: where in which contract, at what call depth."""

    pc: int
    address: int
    depth: int


@dataclass(slots=True)
class BranchEvent(TraceEvent):
    """One executed JUMPI."""

    condition: int = 0
    taken: bool = False
    dest: int = 0
    taints: frozenset = frozenset()
    dist_true: int | None = None
    dist_false: int | None = None

    @property
    def distance_to_flip(self) -> int | None:
        """Branch distance to the direction *not* taken this time."""
        return self.dist_false if self.taken else self.dist_true


@dataclass(slots=True)
class CompareEvent(TraceEvent):
    """One executed comparison instruction (LT/GT/SLT/SGT/EQ)."""

    op_name: str = ""
    lhs: int = 0
    rhs: int = 0
    taints: frozenset = frozenset()


@dataclass(slots=True)
class CallEvent(TraceEvent):
    """One CALL / DELEGATECALL, including gas and value observed."""

    kind: str = "call"  # "call" | "delegatecall"
    target: int = 0
    value: int = 0
    gas: int = 0
    success: bool = True
    reentrant: bool = False
    target_taints: frozenset = frozenset()
    value_taints: frozenset = frozenset()
    callee_error: str | None = None
    index: int = 0  # position in trace.calls, for result-taint matching
    checked: bool = False  # success flag later reached a JUMPI
    guarded: bool = False  # a msg.sender comparison preceded this call


@dataclass(slots=True)
class OverflowEvent(TraceEvent):
    """An ADD/MUL/SUB whose mathematical result was truncated mod 2**256."""

    op_name: str = ""
    lhs: int = 0
    rhs: int = 0
    result: int = 0


@dataclass(slots=True)
class StorageEvent(TraceEvent):
    """An SLOAD (kind='read') or SSTORE (kind='write')."""

    kind: str = "read"
    slot: int = 0
    value: int = 0
    after_external_call: bool = False


@dataclass(slots=True)
class SelfDestructEvent(TraceEvent):
    """A SELFDESTRUCT, with the transaction context that reached it."""

    beneficiary: int = 0
    caller: int = 0
    origin: int = 0
    guarded_by_caller_check: bool = False


@dataclass(slots=True)
class BlockStateEvent(TraceEvent):
    """A block-state read (TIMESTAMP / NUMBER / ...)."""

    op_name: str = ""


@dataclass(slots=True)
class EtherEvent(TraceEvent):
    """Ether credited to an account by a message call's value transfer.

    ``address`` is the *recipient*.  The trace aggregates these into its
    ``ether_received`` dict; the streaming bus delivers them individually
    so subscribed oracles (ether freezing) see transfers as they happen —
    and can roll them back with the subcall that produced them.
    """

    amount: int = 0


@dataclass(slots=True)
class ExecutionTrace:
    """Everything recorded during one transaction's execution."""

    branches: list[BranchEvent] = field(default_factory=list)
    compares: list[CompareEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    overflows: list[OverflowEvent] = field(default_factory=list)
    storage_ops: list[StorageEvent] = field(default_factory=list)
    selfdestructs: list[SelfDestructEvent] = field(default_factory=list)
    block_reads: list[BlockStateEvent] = field(default_factory=list)
    #: (address, jumpi_pc, taken) triples — the branch-coverage units.
    branch_edges: set = field(default_factory=set)
    #: addresses that received ether during this transaction.
    ether_received: dict = field(default_factory=dict)
    #: instruction count, used as the "time" axis of coverage curves.
    steps: int = 0
    reverted: bool = False
    error: str | None = None

    def subcall_mark(self) -> tuple:
        """Mark the state-effect event streams before entering a subcall.

        Only *state-effect* events are marked (storage ops, overflows,
        selfdestructs, ether received): if the subcall reverts, those
        describe state that was rolled back and must not reach the oracles.
        Control-flow events (branches, compares, calls, block reads) stay —
        they are coverage/feedback signals and really did execute, and
        ``calls`` must never shrink because call-result taint tags index
        into it.
        """
        return (len(self.storage_ops), len(self.overflows),
                len(self.selfdestructs), dict(self.ether_received))

    def rollback_subcall(self, mark: tuple) -> None:
        """Drop state-effect events recorded since ``mark`` (reverted frame)."""
        n_storage, n_overflows, n_selfdestructs, ether = mark
        del self.storage_ops[n_storage:]
        del self.overflows[n_overflows:]
        del self.selfdestructs[n_selfdestructs:]
        self.ether_received.clear()
        self.ether_received.update(ether)

    def merge(self, other: "ExecutionTrace") -> None:
        """Append another trace's events into this one (sequence-level view)."""
        self.branches.extend(other.branches)
        self.compares.extend(other.compares)
        self.calls.extend(other.calls)
        self.overflows.extend(other.overflows)
        self.storage_ops.extend(other.storage_ops)
        self.selfdestructs.extend(other.selfdestructs)
        self.block_reads.extend(other.block_reads)
        self.branch_edges |= other.branch_edges
        for addr, amount in other.ether_received.items():
            self.ether_received[addr] = self.ether_received.get(addr, 0) + amount
        self.steps += other.steps


def events_from_trace(trace: ExecutionTrace, mask: int):
    """Replay a recorded trace as a flat event stream filtered by ``mask``.

    The batch adapter behind :meth:`repro.oracles.base.Oracle.on_receipt`:
    oracles written against the streaming API can still consume a complete
    receipt trace.  Events come out kind-major in the same per-kind order
    the machine recorded them (reverted-subcall state effects were already
    pruned from the trace, so no rollback is needed here).
    """
    if mask & EV_BRANCH:
        yield from trace.branches
    if mask & EV_COMPARE:
        yield from trace.compares
    if mask & EV_CALL:
        yield from trace.calls
    if mask & EV_OVERFLOW:
        yield from trace.overflows
    if mask & EV_STORAGE:
        yield from trace.storage_ops
    if mask & EV_SELFDESTRUCT:
        yield from trace.selfdestructs
    if mask & EV_BLOCK:
        yield from trace.block_reads
    if mask & EV_ETHER:
        for address, amount in trace.ether_received.items():
            yield EtherEvent(pc=0, address=address, depth=0, amount=amount)
