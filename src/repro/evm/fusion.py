"""Block-fused execution: basic blocks compiled to superinstruction closures.

The table loop in :mod:`repro.evm.machine` still pays a Python-level loop
iteration, step-budget check, gas decrement, and kind dispatch for *every*
opcode.  This module amortizes that overhead across straight-line regions:
at analysis time it walks the :func:`repro.analysis.cfg.build_cfg` blocks of
a bytecode and compiles each basic block into **one** specialized Python
closure:

* per-block gas is precomputed and charged as a single constant
  subtraction (every opcode cost is static except the CALL family, which
  never reaches this tier);
* the step budget is charged once per block, against the block's
  instruction count;
* stack depth is pre-validated once from the block's minimum-depth /
  maximum-growth effect, so no per-instruction underflow/overflow checks
  remain;
* PUSH immediates are baked into the generated source as literals, and
  adjacent PUSH/op pairs are constant-folded with exactly the value
  semantics of :func:`repro.analysis.absint.fold_binary` and exactly the
  shadow semantics of :mod:`repro.evm.handlers`;
* PUSH+JUMP / PUSH+JUMPI resolve to direct next-block links (threaded
  code), and statically known tail transfers **chain** the successor's
  guarded body inline into the same closure (up to
  :data:`FUSION_CHAIN_LIMIT` extra blocks per entry point): hot
  straight-line regions and acyclic diamonds run without re-entering any
  dispatch switch or trampoline — only loop back edges cross it;
* the hottest opcodes (context reads, MSTORE/MLOAD/CALLDATALOAD,
  comparisons, wrapping arithmetic, AND/OR/ISZERO, DUP/SWAP,
  SLOAD/SSTORE) are **open-coded inline** — their handler bodies emitted
  statement for statement into the closure, with compile-time constants
  baked in (see :func:`_emit_inline`) — instead of dispatched.

Closures are specialized per ``(sha256(code), event_mask)``.  Opcodes whose
trace events are *subscribed* in the mask are never folded away (their
event must be emitted); event recording itself is resolved **statically**
against the mask — the machine derives its ``rec_*`` flags from the same
``event_mask`` it compiles programs for, so subscribed events are emitted
unconditionally and unsubscribed ones produce no generated code at all.
Ops without an inline expansion dispatch through the **same per-opcode
handler functions** as the table loop, so trace and rollback semantics
are untouched by construction.  Three tiers:

* **fused** — the generated closure described above (the common case);
* **interp** — blocks containing a gas-observing opcode (GAS / CALL /
  DELEGATECALL): those handlers read the running gas counter, so the block
  executes with exact per-instruction gas/step accounting over a
  precomputed entry list (the PR 3 table semantics, minus the per-pc
  probes);
* **bailout** — blocks containing an undefined byte or an
  always-raising opcode (CREATE, unhandled): the closure immediately
  returns the :data:`FUSION_BAILOUT` sentinel and the machine finishes the
  frame on the plain table loop, reproducing the exact error.

A fused closure may also *decline* at runtime (insufficient gas for the
whole block, step budget nearly exhausted, stack precheck failure, dynamic
jump into code the CFG did not carve).  Declining happens **before any
instruction of the guarded region executes**: guards are merged per
*guard group* (a chain of segments statically guaranteed to execute
together shares one guard and one gas/steps pre-charge at its entry,
while conditionally reached arm chains carry their own), so the
table-loop replay is byte-identical — bailing out is always
semantics-preserving, never an error path.

Block closure protocol::

    block(machine, frame, depth, gas, steps)
        -> (next_block, gas, steps, payload)

``next_block`` is the next closure to run (``payload`` unused), ``None``
for a successful halt (``payload`` is the returndata), or
:data:`FUSION_BAILOUT` (``payload`` is the pc to resume the table loop
from).  Exceptional halts raise :class:`~repro.evm.errors` types exactly
like the table loop; closures sync ``machine._steps`` (and
``machine._sync_gas`` ahead of REVERT) before any raising operation so the
step count and revert gas refund stay exact.

Programs are cached in a process-level LRU beside
:mod:`repro.evm.analysis`'s ``CodeAnalysis`` cache — but keyed on the
event mask as well as the code digest, and the ``id(code)`` fast path
memo keys on ``(id(code), event_mask)``: a pool worker serving campaigns
with different oracle subscriptions must never reuse a closure compiled
for a different mask.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict

from repro.analysis.absint import fold_binary
from repro.analysis.cfg import build_cfg
from repro.evm.analysis import (
    KIND_CALL,
    KIND_DUP,
    KIND_JUMP,
    KIND_JUMPDEST,
    KIND_JUMPI,
    KIND_PUSH,
    KIND_SIMPLE,
    KIND_STOP,
    KIND_SWAP,
    analyze_code,
)
from repro.evm.errors import (
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    StackOverflow,
    StackUnderflow,
)
from repro.evm.handlers import (
    CALLDATA_SHADOW,
    CALLER_SHADOW,
    CALLVALUE_SHADOW,
    ORIGIN_SHADOW,
    SIMPLE_HANDLERS,
)
from repro.evm.opcodes import OPCODE_INFO, Op
from repro.evm.stack import STACK_LIMIT
from repro.evm.trace import (
    EMPTY_SHADOW,
    EV_BRANCH,
    EV_COMPARE,
    EV_OVERFLOW,
    EV_STORAGE,
    BranchEvent,
    CompareEvent,
    OverflowEvent,
    Shadow,
    StorageEvent,
    Taint,
    U256_MAX,
    combine_and,
    combine_or,
    comparison_shadow,
    is_call_result_tag,
    merge_taints,
)
from repro.telemetry import metrics as _metrics

WORD = 1 << 256

#: ``REPRO_BLOCK_FUSION=0`` disables the tier process-wide (library default
#: when a Machine is built without an explicit ``block_fusion`` argument).
#: Read once at import: spawn workers re-import this module, so the
#: override propagates to every execution backend.
_DEFAULT_ENABLED = os.environ.get("REPRO_BLOCK_FUSION", "1") != "0"


def default_enabled() -> bool:
    """Library-level default for ``Machine(block_fusion=None)``."""
    return _DEFAULT_ENABLED


class _BailoutSentinel:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<fusion bailout>"


#: returned as ``next_block`` when a closure declines to run: the machine
#: must resume the table loop at the pc carried in the payload slot
FUSION_BAILOUT = _BailoutSentinel()

#: opcodes that end a basic block (mirror of the CFG's terminator set)
_TERMINATOR_OPS = frozenset({
    Op.JUMP, Op.JUMPI, Op.STOP, Op.RETURN, Op.REVERT, Op.INVALID,
    Op.SELFDESTRUCT,
})

#: the only handlers that read their ``gas`` argument — blocks containing
#: one execute on the interp tier with exact per-instruction gas
_GAS_OBSERVING = frozenset({Op.GAS, Op.CALL, Op.DELEGATECALL})

#: comparison opcodes → handler name string (folding mirrors
#: ``handlers._make_comparison`` exactly, including the branch-distance
#: shadow; never folded while EV_COMPARE is subscribed)
_CMP_NAME = {Op.LT: "LT", Op.GT: "GT", Op.SLT: "SLT", Op.SGT: "SGT",
             Op.EQ: "EQ"}

#: wrapping arithmetic: foldable, but not while EV_OVERFLOW is subscribed
#: and the constant result actually truncates (the event must be emitted)
_WRAP_FOLD = frozenset({Op.ADD, Op.SUB, Op.MUL})

#: event-free binaries folded through absint's fold_binary
_PURE_FOLD = frozenset({Op.DIV, Op.MOD, Op.EXP, Op.XOR, Op.SHL, Op.SHR})

TIER_FUSED = "fused"
TIER_INTERP = "interp"
TIER_BAILOUT = "bailout"

# -- telemetry ----------------------------------------------------------------
#
# Same discipline as evm.analysis / evm.machine: the compile path and the
# bailout path bump plain module ints (or, for fused steps, a list cell
# baked into the generated code), and a snapshot-time collector mirrors
# the totals into the registry's counters.

_T_PROGRAMS = _metrics.counter("fusion.programs_compiled")
_T_FUSED = _metrics.counter("fusion.blocks.fused")
_T_INTERP = _metrics.counter("fusion.blocks.interp")
_T_BAILOUT = _metrics.counter("fusion.blocks.bailout")
_T_FOLDED = _metrics.counter("fusion.folded_ops")
_T_INLINED = _metrics.counter("fusion.inlined_ops")
_T_THREADED = _metrics.counter("fusion.threaded_jumps")
_T_CHAINED = _metrics.counter("fusion.chained_blocks")
_T_FUSED_STEPS = _metrics.counter("fusion.fused_steps")
_T_RT_BAILOUTS = _metrics.counter("fusion.runtime_bailouts")
_T_HITS = _metrics.counter("fusion.cache.hits")
_T_MISSES = _metrics.counter("fusion.cache.misses")
_T_REASONS = {
    "gas_observing": _metrics.counter("fusion.fallback.gas_observing"),
    "raising": _metrics.counter("fusion.fallback.raising"),
    "undefined": _metrics.counter("fusion.fallback.undefined"),
}

_programs = 0
_blocks_fused = 0
_blocks_interp = 0
_blocks_bailout = 0
_folded_ops = 0
_inlined_ops = 0
_threaded_jumps = 0
_chained_blocks = 0
_runtime_bailouts = 0
_fallback_reasons: dict[str, int] = {}
#: fused runtime step count — a list cell so generated code can bump it
#: with one indexed add, no global statement
_FUSED_STEPS = [0]


def _collect_fusion_counters() -> None:
    _T_PROGRAMS.set_total(_programs)
    _T_FUSED.set_total(_blocks_fused)
    _T_INTERP.set_total(_blocks_interp)
    _T_BAILOUT.set_total(_blocks_bailout)
    _T_FOLDED.set_total(_folded_ops)
    _T_INLINED.set_total(_inlined_ops)
    _T_THREADED.set_total(_threaded_jumps)
    _T_CHAINED.set_total(_chained_blocks)
    _T_FUSED_STEPS.set_total(_FUSED_STEPS[0])
    _T_RT_BAILOUTS.set_total(_runtime_bailouts)
    _T_HITS.set_total(_hits)
    _T_MISSES.set_total(_misses)
    for reason, counter in _T_REASONS.items():
        counter.set_total(_fallback_reasons.get(reason, 0))


_metrics.register_collector(_collect_fusion_counters)


def note_runtime_bailout() -> None:
    """Called by the machine when a closure declines at runtime."""
    global _runtime_bailouts
    _runtime_bailouts += 1


class FusedProgram:
    """The compiled block map for one ``(code, event_mask)`` pair."""

    __slots__ = ("entry", "blocks", "tiers", "stats", "source")

    def __init__(self, entry, blocks: dict, tiers: dict, stats: dict,
                 source: str) -> None:
        self.entry = entry          # closure for pc 0, or None (empty code)
        self.blocks = blocks        # start pc -> closure
        self.tiers = tiers          # start pc -> TIER_* string
        self.stats = stats          # compile-time counts (tests, --profile)
        self.source = source        # generated fused-block source (tests)


# -- classification -----------------------------------------------------------


def _classify(block) -> tuple[str, str | None]:
    """Tier for ``block`` plus the fallback reason (None when fused)."""
    reason = None
    for ins in block.instructions:
        op = ins.opcode
        if 0x60 <= op <= 0x9F:  # PUSH/DUP/SWAP
            continue
        if OPCODE_INFO.get(op) is None:
            return TIER_BAILOUT, "undefined"
        if op in _GAS_OBSERVING:
            reason = "gas_observing"
            continue
        if op == Op.CREATE:
            return TIER_BAILOUT, "raising"
        if op in (Op.JUMPDEST, Op.JUMP, Op.JUMPI, Op.STOP):
            continue
        if SIMPLE_HANDLERS.get(op) is None:
            # defined-but-unimplemented: raises InvalidOpcode when reached
            return TIER_BAILOUT, "raising"
    if reason is not None:
        return TIER_INTERP, reason
    return TIER_FUSED, None


def _stack_bounds(instructions) -> tuple[int, int, int]:
    """(min_entry_depth, max_growth, net_effect): the block underflows
    unless the entry stack holds at least ``min_entry_depth`` values,
    overflows unless ``entry_depth + max_growth <= STACK_LIMIT``, and
    exits with ``entry_depth + net_effect`` values.

    Arities come from OPCODE_INFO, whose pops/pushes match the stack's
    own error conditions exactly (DUPn needs n, SWAPn needs n+1, ...).
    The net effect lets guard groups compose bounds across chained
    segments: segment k's requirements are shifted by the accumulated
    net effect of the segments before it.
    """
    h = 0
    low = 0
    high = 0
    for ins in instructions:
        info = OPCODE_INFO[ins.opcode]
        p = info.pops
        q = info.pushes
        if h - p < low:
            low = h - p
        h += q - p
        if q and h > high:
            high = h
    return -low, high, h


# -- constant folding ---------------------------------------------------------


def _taint_shadow(taints: frozenset) -> Shadow:
    """Taint-only shadow, interned for the untainted case (handlers idiom)."""
    return Shadow(taints) if taints else EMPTY_SHADOW


class _Pend:
    """A value logically on top of the runtime stack but not (yet)
    materialized as list traffic: a compile-time constant, a named
    runtime temp bound by an earlier inline op, or a pure expression
    over immutable frame state (context reads).

    ``vexpr``/``sexpr`` are the source expressions that produce the
    value and its shadow; ``vconst``/``sconst`` are their compile-time
    values when known (``None`` otherwise).  ``dup_ok`` marks entries
    that may be duplicated without re-evaluation concerns (constants,
    single-assignment temps, and pure reads of immutable state).
    Entries are immutable, so DUP may alias them."""

    __slots__ = ("vexpr", "sexpr", "vconst", "sconst", "dup_ok")

    def __init__(self, vexpr, sexpr, vconst=None, sconst=None,
                 dup_ok=True):
        self.vexpr = vexpr
        self.sexpr = sexpr
        self.vconst = vconst
        self.sconst = sconst
        self.dup_ok = dup_ok


def _try_fold(op: int, pending: list, mask: int, sname) -> bool:
    """Fold ``op`` over pending compile-time constants, mirroring the
    runtime handler exactly (value *and* shadow).  Returns False when the
    op is not foldable here — the caller tries an inline expansion and
    finally falls back to a handler call.

    Folding needs every operand's value and shadow known at compile time
    (``vconst``/``sconst`` set), and is refused whenever the table loop
    would have emitted a trace event for the operation under ``mask``: a
    folded op executes zero runtime code, so it must be provably
    event-free.  Foldable constants are always untainted (PUSH
    immediates and folds thereof), so ``frame.caller_checked`` can never
    be affected by a folded compare.
    """

    def const(value, shadow) -> _Pend:
        return _Pend(str(value), sname(shadow), value, shadow)

    if op == Op.ISZERO:
        if not pending or pending[-1].vconst is None \
                or pending[-1].sconst is None:
            return False
        x, sx = pending[-1].vconst, pending[-1].sconst
        if sx.dist_true is None:
            sx = comparison_shadow("EQ", x, 0, sx.taints)
        pending[-1] = const(0 if x else 1, sx.negated())
        return True
    if op == Op.NOT:
        if not pending or pending[-1].vconst is None \
                or pending[-1].sconst is None:
            return False
        x, sx = pending[-1].vconst, pending[-1].sconst
        pending[-1] = const(U256_MAX ^ x, _taint_shadow(sx.taints))
        return True
    if len(pending) < 2:
        return False
    if (pending[-1].vconst is None or pending[-1].sconst is None
            or pending[-2].vconst is None or pending[-2].sconst is None):
        return False
    x, sx = pending[-1].vconst, pending[-1].sconst
    y, sy = pending[-2].vconst, pending[-2].sconst
    if op in _WRAP_FOLD:
        if op == Op.ADD:
            raw = x + y
        elif op == Op.SUB:
            raw = x - y
        else:
            raw = x * y
        result = raw % WORD
        if raw != result and mask & EV_OVERFLOW:
            return False  # the truncation event must be recorded at runtime
        del pending[-2:]
        pending.append(const(result, _taint_shadow(merge_taints(sx, sy))))
        return True
    name = _CMP_NAME.get(op)
    if name is not None:
        if mask & EV_COMPARE:
            return False  # the CompareEvent must be recorded at runtime
        shadow = comparison_shadow(name, x, y, merge_taints(sx, sy))
        del pending[-2:]
        pending.append(const(1 if shadow.dist_true == 0 else 0, shadow))
        return True
    if op == Op.AND or op == Op.OR:
        if sx.dist_true is not None and sy.dist_true is not None:
            shadow = (combine_and(sx, sy) if op == Op.AND
                      else combine_or(sx, sy))
        else:
            shadow = _taint_shadow(merge_taints(sx, sy))
        del pending[-2:]
        pending.append(const(x & y if op == Op.AND else x | y, shadow))
        return True
    if op in _PURE_FOLD:
        folded = fold_binary(op, ("const", x), ("const", y))
        if folded[0] != "const":
            return False
        del pending[-2:]
        pending.append(const(folded[1],
                             _taint_shadow(merge_taints(sx, sy))))
        return True
    return False


# -- inline superinstructions -------------------------------------------------

#: context reads held as pending pure expressions: (value expression,
#: shadow name, shadow object).  All read immutable per-frame message
#: state, so they may stay pending across any later op and may be
#: re-evaluated on DUP; the shadow object is compile-time known, which
#: feeds static taint decisions downstream (e.g. a CALLER comparison
#: marks ``caller_checked`` unconditionally)
_CONTEXT_INLINE = {
    Op.CALLER: ("frame.msg.caller", "CALLER_SH", CALLER_SHADOW),
    Op.CALLVALUE: ("frame.msg.value", "CALLVALUE_SH", CALLVALUE_SHADOW),
    Op.ORIGIN: ("frame.msg.origin", "ORIGIN_SH", ORIGIN_SHADOW),
    Op.ADDRESS: ("frame.msg.address", "ES", EMPTY_SHADOW),
    Op.CALLDATASIZE: ("len(frame.msg.data)", "ES", EMPTY_SHADOW),
}

_WRAP_EXPR = {Op.ADD: "{x} + {y}", Op.SUB: "{x} - {y}", Op.MUL: "{x} * {y}"}


def _emit_inline(op, pc, pending, out, sname, bname, flush, mask,
                 tmp) -> bool:
    """Open-code ``op`` directly into the block body, mirroring its
    handler statement for statement.  Returns False when the op has no
    inline expansion (the caller falls back to a handler call).

    The payoff over dispatching to the handler: no call frame, no
    redundant underflow check (the block prologue pre-validated depth),
    and pending compile-time constants become baked literals instead of
    materialized stack traffic.  Inline results are *not* pushed onto
    the value/shadow lists either: each lands in a fresh
    single-assignment local (``q{n}``/``qs{n}`` from the ``tmp``
    counter) and re-enters ``pending`` symbolically, so a value consumed
    by the next inline op (compare feeding JUMPI, arithmetic chains)
    flows through a Python local with zero list traffic.  Only event-
    exact expansions live here — every trace event a handler would emit
    is emitted identically, so this tier stays byte-compatible with the
    table loop.

    Event emission is resolved *statically* against ``mask``: programs
    are specialized per event mask, and the machine derives its
    ``rec_*`` flags from the same ``event_mask`` it compiles programs
    for, so ``m.rec_compare`` (etc.) is a compile-time constant here —
    subscribed events emit unconditionally, unsubscribed ones emit no
    code at all.
    """

    def pop_entry(name, shadow_name) -> _Pend:
        """Top-of-stack operand: the pending entry, or a runtime pop
        bound to ``name``/``shadow_name``."""
        if pending:
            return pending.pop()
        out.append(f"    {name} = values.pop()")
        out.append(f"    {shadow_name} = shadows.pop()")
        return _Pend(name, shadow_name)

    def newtemp() -> tuple:
        """Fresh single-assignment local names for an inline result."""
        n = tmp[0]
        tmp[0] += 1
        return f"q{n}", f"qs{n}"

    def taints_expr(px, py) -> tuple:
        """Expression for the merged operand taints, simplified when a
        side's shadow is compile-time known; returns (expr, const) with
        ``const`` the frozenset when both sides are known."""
        if px.sconst is not None and py.sconst is not None:
            tt = px.sconst.taints | py.sconst.taints
            if not tt:
                return "ES.taints", tt
            return f"{sname(Shadow(tt))}.taints", tt
        if px.sconst is not None and not px.sconst.taints:
            return f"{py.sexpr}.taints", None
        if py.sconst is not None and not py.sconst.taints:
            return f"{px.sexpr}.taints", None
        return f"{px.sexpr}.taints | {py.sexpr}.taints", None

    ctx = _CONTEXT_INLINE.get(op)
    if ctx is not None:
        value, shadow_name, shadow = ctx
        pending.append(_Pend(value, shadow_name, sconst=shadow))
        return True

    if op == Op.MSTORE:
        po = pop_entry("o", "_so")  # offset shadow is discarded
        pv = pop_entry("v", "s")
        if po.vconst is not None:
            # constant offset: the expansion check compares against a
            # literal end and the word write is a direct slice assign —
            # Memory.store_word's statements with the call peeled away
            off = po.vconst
            end = off + 32
            out.append(f"    if {end} > mem._paid:")
            out.append(f"        mem._expand({off}, 32)")
            if pv.vconst is not None:
                out.append(f"    mem.data[{off}:{end}] = "
                           f"{bname(pv.vconst)}")
            else:
                out.append(f"    mem.data[{off}:{end}] = "
                           f'{pv.vexpr}.to_bytes(32, "big")')
            if pv.sconst is not None:
                if pv.sconst.taints or pv.sconst.dist_true is not None:
                    out.append(f"    mem._shadows[{off}] = {pv.sexpr}")
                else:
                    out.append(f"    mem._shadows.pop({off}, None)")
            else:
                out.append(f"    if {pv.sexpr}.taints "
                           f"or {pv.sexpr}.dist_true is not None:")
                out.append(f"        mem._shadows[{off}] = {pv.sexpr}")
                out.append("    else:")
                out.append(f"        mem._shadows.pop({off}, None)")
        else:
            out.append(f"    mem.store_word({po.vexpr}, {pv.vexpr}, "
                       f"{pv.sexpr})")
        return True

    if op == Op.MLOAD:
        po = pop_entry("o", "_s")
        q, qs = newtemp()
        # bound eagerly: memory may be written before the value is used
        out.append(f"    {q}, {qs} = mem.load_word({po.vexpr})")
        pending.append(_Pend(q, qs))
        return True

    if op == Op.CALLDATALOAD:
        po = pop_entry("o", "_s")
        q, _qs = newtemp()
        if po.vconst is not None:
            out.append(f"    w = frame.msg.data"
                       f"[{po.vconst}:{po.vconst + 32}]")
        else:
            out.append(f"    w = frame.msg.data"
                       f"[{po.vexpr}:{po.vexpr} + 32]")
        out.append(f'    {q} = int.from_bytes(w, "big")'
                   " << ((32 - len(w)) << 3)")
        pending.append(_Pend(q, "CDS", sconst=CALLDATA_SHADOW))
        return True

    name = _CMP_NAME.get(op)
    if name is not None:
        px = pop_entry("x", "sx")
        py = pop_entry("y", "sy")
        x, y = px.vexpr, py.vexpr
        q, qs = newtemp()
        texpr, tconst = taints_expr(px, py)
        out.append(f"    t = {texpr}")
        # LT/GT/EQ: branch distances open-coded (comparison_shadow's
        # exact formulas, one predicate evaluation instead of a call).
        # SLT/SGT need the signed conversion — keep the library helper.
        if name == "LT":
            out.append(f"    if {x} < {y}:")
            out.append(f"        dt = 0; df = {y} - {x}; {q} = 1")
            out.append("    else:")
            out.append(f"        dt = {x} - {y} + 1; df = 0; {q} = 0")
            out.append(f"    {qs} = SH(t, dt, df)")
        elif name == "GT":
            out.append(f"    if {x} > {y}:")
            out.append(f"        dt = 0; df = {x} - {y}; {q} = 1")
            out.append("    else:")
            out.append(f"        dt = {y} - {x} + 1; df = 0; {q} = 0")
            out.append(f"    {qs} = SH(t, dt, df)")
        elif name == "EQ":
            # d_false is 0-if-diff-else-1: exactly the pushed result
            out.append(f"    d = {x} - {y} if {x} >= {y} else {y} - {x}")
            out.append(f"    {q} = 0 if d else 1")
            out.append(f"    {qs} = SH(t, d, {q})")
        else:
            out.append(f'    {qs} = CSH("{name}", {x}, {y}, t)')
            out.append(f"    {q} = 1 if {qs}.dist_true == 0 else 0")
        if mask & EV_COMPARE:
            out.append(f"    ev = CE(pc={pc}, address=frame.msg.address, "
                       f'depth=depth, op_name="{name}", lhs={x}, rhs={y}, '
                       f"taints=t)")
            out.append("    m.trace.compares.append(ev)")
            out.append("    for deliver in m.sub_compare:")
            out.append("        deliver(ev, m.oracle_ctx)")
        if tconst is None:
            out.append("    if t and TC in t:")
            out.append("        frame.caller_checked = True")
        elif Taint.CALLER in tconst:
            out.append("    frame.caller_checked = True")
        pending.append(_Pend(q, qs))
        return True

    expr = _WRAP_EXPR.get(op)
    if expr is not None:
        px = pop_entry("x", "sx")
        py = pop_entry("y", "sy")
        q, qs = newtemp()
        e = expr.format(x=px.vexpr, y=py.vexpr)
        if mask & EV_OVERFLOW:
            out.append(f"    raw = {e}")
            out.append(f"    {q} = raw & UM")
            out.append(f"    if raw != {q}:")
            out.append(f"        ev = OE(pc={pc}, address=frame.msg.address, "
                       f'depth=depth, op_name="{Op(op).name}", '
                       f"lhs={px.vexpr}, rhs={py.vexpr}, result={q})")
            out.append("        m.trace.overflows.append(ev)")
            out.append("        for deliver in m.sub_overflow:")
            out.append("            deliver(ev, m.oracle_ctx)")
        else:
            out.append(f"    {q} = ({e}) & UM")
        texpr, tconst = taints_expr(px, py)
        if tconst is not None:
            shadow = _taint_shadow(tconst)
            pending.append(_Pend(q, sname(shadow), sconst=shadow))
        else:
            out.append(f"    t = {texpr}")
            out.append(f"    {qs} = SH(t) if t else ES")
            pending.append(_Pend(q, qs))
        return True

    if op == Op.ISZERO:
        # a fully-constant operand always folds, so the operand here is
        # runtime-valued (its shadow may still be compile-time known)
        px = pop_entry("x", "sx")
        x = px.vexpr
        q, qs = newtemp()
        if px.sconst is not None and px.sconst.dist_true is None:
            out.append(f'    {qs} = CSH("EQ", {x}, 0, '
                       f"{px.sexpr}.taints).negated()")
        else:
            out.append(f"    {qs} = {px.sexpr}")
            out.append(f"    if {qs}.dist_true is None:")
            out.append(f'        {qs} = CSH("EQ", {x}, 0, {qs}.taints)')
            out.append(f"    {qs} = {qs}.negated()")
        out.append(f"    {q} = 0 if {x} else 1")
        pending.append(_Pend(q, qs))
        return True

    if op == Op.AND or op == Op.OR:
        px = pop_entry("x", "sx")
        py = pop_entry("y", "sy")
        q, qs = newtemp()
        sym = "&" if op == Op.AND else "|"
        combine = "CA" if op == Op.AND else "CO"
        out.append(f"    {q} = {px.vexpr} {sym} {py.vexpr}")
        no_dist = ((px.sconst is not None
                    and px.sconst.dist_true is None)
                   or (py.sconst is not None
                       and py.sconst.dist_true is None))
        if no_dist:
            # a side provably carries no branch distance: the combine
            # path is statically dead, only the taint merge remains
            texpr, tconst = taints_expr(px, py)
            if tconst is not None:
                shadow = _taint_shadow(tconst)
                pending.append(_Pend(q, sname(shadow), sconst=shadow))
                return True
            out.append(f"    t = {texpr}")
            out.append(f"    {qs} = SH(t) if t else ES")
        else:
            out.append(f"    if {px.sexpr}.dist_true is not None "
                       f"and {py.sexpr}.dist_true is not None:")
            out.append(f"        {qs} = {combine}({px.sexpr}, {py.sexpr})")
            out.append("    else:")
            out.append(f"        t = {px.sexpr}.taints | {py.sexpr}.taints")
            out.append(f"        {qs} = SH(t) if t else ES")
        pending.append(_Pend(q, qs))
        return True

    if op == Op.SLOAD:
        pslot = pop_entry("slot", "_s")  # slot shadow discarded
        q, qs = newtemp()
        # bound eagerly: storage may be written before the value is used
        out.append(f"    {q}, {qs} = m.world.get_storage("
                   f"frame.msg.address, {pslot.vexpr})")
        if mask & EV_STORAGE:
            out.append(f"    ev = SE(pc={pc}, address=frame.msg.address, "
                       f'depth=depth, kind="read", slot={pslot.vexpr}, '
                       f"value={q})")
            out.append("    m.trace.storage_ops.append(ev)")
            out.append("    for deliver in m.sub_storage:")
            out.append("        deliver(ev, m.oracle_ctx)")
        pending.append(_Pend(q, qs))
        return True

    if op == Op.SSTORE:
        pslot = pop_entry("slot", "_s")  # slot shadow discarded
        pv = pop_entry("v", "s")
        if pv.sconst is not None:
            # _op_sstore's taint-only stripping rule, evaluated at
            # compile time against the known value shadow
            vsh = pv.sconst
            if not vsh.taints:
                stored = "ES"
            elif vsh.dist_true is None and vsh.dist_false is None:
                stored = pv.sexpr
            else:
                stored = sname(Shadow(vsh.taints))
        else:
            se = pv.sexpr
            out.append(f"    if not {se}.taints:")
            out.append("        stored = ES")
            out.append(f"    elif {se}.dist_true is None "
                       f"and {se}.dist_false is None:")
            out.append(f"        stored = {se}")
            out.append("    else:")
            out.append(f"        stored = SH({se}.taints)")
            stored = "stored"
        out.append("    m.world.set_storage("
                   f"frame.msg.address, {pslot.vexpr}, {pv.vexpr}, "
                   f"{stored})")
        if mask & EV_STORAGE:
            out.append(f"    ev = SE(pc={pc}, address=frame.msg.address, "
                       f'depth=depth, kind="write", slot={pslot.vexpr}, '
                       f"value={pv.vexpr}, "
                       "after_external_call=frame.made_external_call)")
            out.append("    m.trace.storage_ops.append(ev)")
            out.append("    for deliver in m.sub_storage:")
            out.append("        deliver(ev, m.oracle_ctx)")
        return True

    return False


# -- fused-block code generation ----------------------------------------------


#: extra basic blocks greedily merged into one closure behind a
#: statically known transfer of control (threaded jump, JUMPI arm,
#: fallthrough): bounds generated-code growth (arm chaining duplicates
#: join blocks) while letting straight-line regions that the CFG carved
#: at JUMPDESTs run without any block transition
FUSION_CHAIN_LIMIT = 32


def _emit_fused_block(block, analysis, cfg, mask, ns, hname, sname, bname,
                      lines, stats, tiers) -> None:
    """Append the generated source for one fused *superblock* to ``lines``.

    The closure entered at ``block.start`` greedily **chains** statically
    reachable fused successors into the same function body: wherever the
    terminator resolves to a compile-time target in tail position (a
    threaded JUMP, a constant-folded JUMPI arm, a JUMPI fallthrough, or a
    plain fallthrough at a JUMPDEST boundary), the successor's body is
    spliced inline instead of returning its closure through the
    trampoline — no closure call, no result-tuple allocation.

    Decline guards are emitted per **guard group**, not per segment: a
    chain of segments connected by transfers that are *statically
    guaranteed to execute together* (fallthrough, threaded JUMP, folded
    JUMPI) shares one merged guard at the group's entry — gas, step
    count, and composed stack bounds summed across the whole chain — and
    one merged ``gas``/``steps`` pre-charge.  Declining returns ``FB``
    at the group's first pc before any of its instructions run, so the
    table-loop replay is byte-identical (it simply re-executes nothing).
    A *runtime* JUMPI's chained arms are only conditionally reached, so
    each arm chain starts a fresh group with its own guard and its own
    pre-charge mid-closure — resume pc and accounting there reflect
    exactly the groups that actually ran.  Back edges never chain (the
    target is already part of the chain), so loops still cross the
    trampoline once per iteration.
    """
    start = block.start
    code_len = analysis.code_len
    jumpdests = analysis.jumpdests

    out: list[str] = []
    #: blocks on the current emission path — chaining into an ancestor
    #: would generate unbounded code (a loop), so back edges always go
    #: through the trampoline; reconverging on a join block from a
    #: *different* arm is fine (the body is duplicated, budget permitting)
    path: list[int] = []
    budget = [FUSION_CHAIN_LIMIT]
    #: guard groups: each holds the summed gas/steps and composed stack
    #: bounds of the segments it covers; a ``\\x00{gid}`` placeholder
    #: line marks where its merged guard is patched in afterwards
    groups: list[dict] = []
    #: stack of groups open along the current emission path — tail
    #: continuations join ``cur[-1]``, conditional arms push a new one
    cur: list[dict] = []

    def goto(target: int, indent: str = "    ") -> list[str]:
        """Transfer-of-control lines for a statically known target pc."""
        if target >= code_len:
            return [f'{indent}return None, gas, steps, b""']
        if target in cfg.blocks:
            return [f"{indent}return B{target}, gas, steps, None"]
        return [f"{indent}return FB, gas, steps, {target}"]

    def chain_or_goto(target: int, indent: str = "    ",
                      cont: bool = False) -> None:
        """Static transfer: splice the target block inline when it is
        fused-tier, not an ancestor on this emission path, and the
        growth budget allows; else fall back to a trampoline return.

        ``cont=True`` marks a transfer that is statically guaranteed to
        execute whenever the current segment does (fallthrough, threaded
        JUMP, folded JUMPI): the spliced segment joins the current guard
        group.  Conditionally reached transfers (runtime JUMPI arms)
        leave ``cont=False`` and start a group of their own."""
        if (budget[0] > 0 and target not in path
                and tiers.get(target) == TIER_FUSED):
            budget[0] -= 1
            stats["chained"] += 1
            mark = len(out)
            emit_segment(cfg.blocks[target], cont=cont)
            if indent != "    ":
                pad = indent[4:]
                out[mark:] = [pad + line for line in out[mark:]]
        else:
            out.extend(goto(target, indent))

    def emit_branch_record(pc, cond, taken, dest, shadow,
                           static_shadow=None) -> None:
        """Open-coded ``Machine._record_branch`` (statement for
        statement, including the call-result checked-flag scan — elided
        when a compile-time condition shadow is provably untainted).

        Gated statically: the machine sets ``rec_branch`` from the same
        ``event_mask`` the program is specialized for, so when the mask
        lacks ``EV_BRANCH`` no recording code is emitted at all."""
        if not mask & EV_BRANCH:
            return
        out.append("    tr = m.trace")
        out.append(f"    ev = BE(pc={pc}, address=frame.msg.address, "
                   f"depth=depth, condition={cond}, taken={taken}, "
                   f"dest={dest}, taints={shadow}.taints, "
                   f"dist_true={shadow}.dist_true, "
                   f"dist_false={shadow}.dist_false)")
        out.append("    tr.branches.append(ev)")
        out.append("    tr.branch_edges.add("
                   f"(frame.msg.address, {pc}, {taken}))")
        if static_shadow is None or any(
                is_call_result_tag(t) for t in static_shadow.taints):
            out.append(f"    for tag in {shadow}.taints:")
            out.append("        if ICR(tag):")
            out.append('            idx = int(tag.split(":", 1)[1])')
            out.append("            if idx < len(tr.calls):")
            out.append("                tr.calls[idx].checked = True")
        out.append("    for deliver in m.sub_branch:")
        out.append("        deliver(ev, m.oracle_ctx)")

    def emit_segment(blk, cont: bool = False) -> None:
        if not cont:
            g = {"start": blk.start, "gas": 0, "steps": 0,
                 "md": 0, "mg": 0, "off": 0}
            out.append(f"    \x00{len(groups)}")
            groups.append(g)
            cur.append(g)
        g = cur[-1]
        ins_list = blk.instructions
        md, mg, net = _stack_bounds(ins_list)
        # compose with the group's accumulated net effect: what this
        # segment needs at *its* entry, shifted back to the group's entry
        if md - g["off"] > g["md"]:
            g["md"] = md - g["off"]
        if g["off"] + mg > g["mg"]:
            g["mg"] = g["off"] + mg
        g["off"] += net
        g["gas"] += sum(OPCODE_INFO[i.opcode].gas for i in ins_list)
        g["steps"] += len(ins_list)
        path.append(blk.start)
        _emit_segment(blk, analysis, cfg, mask, ns, hname, sname, bname,
                      out, stats, goto, chain_or_goto, emit_branch_record)
        path.pop()
        if not cont:
            cur.pop()

    emit_segment(block)

    # patch each group's placeholder into its merged decline guard +
    # merged gas/steps pre-charge (everything the group covers is
    # statically guaranteed to execute once the guard passes)
    patched: list[str] = []
    for line in out:
        if "\x00" not in line:
            patched.append(line)
            continue
        indent, _, gid = line.partition("\x00")
        g = groups[int(gid)]
        checks = []
        if g["gas"]:
            checks.append(f"gas < {g['gas']}")
        checks.append(f"steps + {g['steps']} > m.max_steps")
        if g["md"] > 0:
            checks.append(f"len(values) < {g['md']}")
        if g["mg"] > 0:
            checks.append(f"len(values) + {g['mg']} > {STACK_LIMIT}")
        patched.append(f"{indent}if {' or '.join(checks)}:")
        patched.append(f"{indent}    return FB, gas, steps, {g['start']}")
        if g["gas"]:
            patched.append(f"{indent}gas -= {g['gas']}")
        patched.append(f"{indent}steps += {g['steps']}")
        patched.append(f"{indent}FS[0] += {g['steps']}")
    out = patched

    uses_stack = any("stack." in line for line in out)
    uses_values = any("values" in line or "shadows" in line for line in out)
    uses_mem = any("mem." in line for line in out)
    lines.append(f"def B{start}(m, frame, depth, gas, steps):")
    if uses_stack or uses_values:
        lines.append("    stack = frame.stack")
    if uses_values:
        lines.append("    values = stack.values")
        lines.append("    shadows = stack.shadows")
    if uses_mem:
        lines.append("    mem = frame.memory")
    lines.extend(out)
    lines.append("")


def _emit_segment(block, analysis, cfg, mask, ns, hname, sname, bname, out,
                  stats, goto, chain_or_goto, emit_branch_record) -> None:
    """Emit one basic block's body and terminator into ``out`` (one
    segment of a superblock — see :func:`_emit_fused_block`).  The
    decline guard and gas/steps pre-charge are *not* emitted here: the
    caller accounts this segment to its guard group and patches the
    merged guard in afterwards."""
    code_len = analysis.code_len
    jumpdests = analysis.jumpdests
    ins_list = block.instructions
    term = ins_list[-1]
    has_term = term.opcode in _TERMINATOR_OPS
    body = ins_list[:-1] if has_term else ins_list

    #: symbolic entries logically on top of the runtime stack — baked
    #: constants, pure context expressions, and single-assignment inline
    #: result temps; flushed (materialized as appends) before any op
    #: that needs the real stack
    pending: list[_Pend] = []

    def flush() -> None:
        for p in pending:
            out.append(f"    values.append({p.vexpr})")
            out.append(f"    shadows.append({p.sexpr})")
        pending.clear()

    tmp = [0]

    for ins in body:
        op = ins.opcode
        if 0x60 <= op <= 0x7F:  # PUSH: defer the constant
            pending.append(_Pend(str(ins.operand), "ES",
                                 ins.operand, EMPTY_SHADOW))
            continue
        if op == Op.PC:
            pending.append(_Pend(str(ins.pc), "ES", ins.pc, EMPTY_SHADOW))
            continue
        if op == Op.JUMPDEST:
            continue
        if 0x80 <= op <= 0x8F:  # DUPn
            n = op - 0x7F
            if len(pending) >= n:
                if pending[-n].dup_ok:
                    # entries are immutable, so DUP may alias them
                    pending.append(pending[-n])
                    stats["folded"] += 1
                    continue
                flush()
            # the copy binds to a temp and stays pending; the original
            # keeps its list slot.  Pending entries sit above the list,
            # so the source index shifts by however many are deferred.
            # Depth is guard-validated: direct indexing, no checks.
            idx = n - len(pending)
            q, qs = f"q{tmp[0]}", f"qs{tmp[0]}"
            tmp[0] += 1
            out.append(f"    {q} = values[-{idx}]")
            out.append(f"    {qs} = shadows[-{idx}]")
            pending.append(_Pend(q, qs))
            stats["inlined"] += 1
            continue
        if 0x90 <= op <= 0x9F:  # SWAPn
            n = op - 0x8F
            if len(pending) >= n + 1:
                pending[-1], pending[-n - 1] = pending[-n - 1], pending[-1]
                stats["folded"] += 1
                continue
            if pending:
                # top is pending, its swap partner is on the list: lift
                # the list slot into a temp, write the pending value in
                # its place, and the temp becomes the new pending top
                idx = n + 1 - len(pending)
                top = pending[-1]
                q, qs = f"q{tmp[0]}", f"qs{tmp[0]}"
                tmp[0] += 1
                out.append(f"    {q} = values[-{idx}]")
                out.append(f"    {qs} = shadows[-{idx}]")
                out.append(f"    values[-{idx}] = {top.vexpr}")
                out.append(f"    shadows[-{idx}] = {top.sexpr}")
                pending[-1] = _Pend(q, qs)
                stats["inlined"] += 1
                continue
            out.append(f"    values[-1], values[-{n + 1}] = "
                       f"values[-{n + 1}], values[-1]")
            out.append(f"    shadows[-1], shadows[-{n + 1}] = "
                       f"shadows[-{n + 1}], shadows[-1]")
            stats["inlined"] += 1
            continue
        if op == Op.POP:
            if pending:
                pending.pop()
                stats["folded"] += 1
            else:
                out.append("    values.pop()")
                out.append("    shadows.pop()")
            continue
        if _try_fold(op, pending, mask, sname):
            stats["folded"] += 1
            continue
        if _emit_inline(op, ins.pc, pending, out, sname, bname, flush,
                        mask, tmp):
            stats["inlined"] += 1
            continue
        flush()
        out.append(f"    {hname(op)}(m, {ins.pc}, frame, depth, gas)")

    # -- terminator ----------------------------------------------------------
    if not has_term:
        flush()
        chain_or_goto(block.end, cont=True)
    elif term.opcode == Op.STOP:
        flush()
        out.append('    return None, gas, steps, b""')
    elif term.opcode in (Op.RETURN, Op.SELFDESTRUCT):
        flush()
        out.append(f"    r = {hname(term.opcode)}"
                   f"(m, {term.pc}, frame, depth, gas)")
        out.append("    return None, gas, steps, r[1]")
    elif term.opcode == Op.REVERT:
        flush()
        out.append("    m._steps = steps")
        out.append("    m._sync_gas = gas")
        out.append(f"    {hname(term.opcode)}"
                   f"(m, {term.pc}, frame, depth, gas)")
    elif term.opcode == Op.INVALID:
        flush()
        out.append("    m._steps = steps")
        out.append(f"    {hname(term.opcode)}"
                   f"(m, {term.pc}, frame, depth, gas)")
    elif term.opcode == Op.JUMP:
        if pending and pending[-1].vconst is not None:
            dest = pending.pop().vconst
            flush()
            if dest in jumpdests:
                stats["threaded"] += 1
                chain_or_goto(dest, cont=True)
            else:
                out.append("    m._steps = steps")
                out.append('    raise IJ("JUMP to ' + str(dest)
                           + " at pc=" + str(term.pc) + '")')
        else:
            if pending:
                de = pending.pop().vexpr
                flush()
            else:
                out.append("    shadows.pop()")
                out.append("    dest = values.pop()")
                de = "dest"
            out.append(f"    if {de} not in JD:")
            out.append("        m._steps = steps")
            out.append(f'        raise IJ(f"JUMP to {{{de}}} at pc='
                       + str(term.pc) + '")')
            out.append(f"    nb = BL.get({de})")
            out.append("    if nb is None:")
            out.append(f"        return FB, gas, steps, {de}")
            out.append("    return nb, gas, steps, None")
    else:  # JUMPI
        pc = term.pc
        fall = pc + 1
        # stack order: dest on top, condition below — pending entries
        # always sit above any runtime list items
        if pending:
            pd = pending.pop()
            dest_c, dest_e = pd.vconst, pd.vexpr
        else:
            out.append("    dest = values.pop()")
            out.append("    shadows.pop()")
            dest_c, dest_e = None, "dest"
        if pending:
            pcnd = pending.pop()
            cond_c, cond_e = pcnd.vconst, pcnd.vexpr
            cs_e, cs_c = pcnd.sexpr, pcnd.sconst
        else:
            out.append("    cond = values.pop()")
            out.append("    cs = shadows.pop()")
            cond_c, cond_e, cs_e, cs_c = None, "cond", "cs", None
        flush()
        if cond_c is not None and dest_c is not None:
            taken = cond_c != 0
            emit_branch_record(pc, cond_c, taken, dest_c, cs_e,
                               static_shadow=cs_c)
            if taken:
                if dest_c in jumpdests:
                    stats["threaded"] += 1
                    chain_or_goto(dest_c, cont=True)
                else:
                    out.append("    m._steps = steps")
                    out.append('    raise IJ("JUMPI to ' + str(dest_c)
                               + " at pc=" + str(pc) + '")')
            else:
                chain_or_goto(fall, cont=True)
        elif dest_c is not None:
            out.append(f"    taken = {cond_e} != 0")
            emit_branch_record(pc, cond_e, "taken", dest_c, cs_e,
                               static_shadow=cs_c)
            out.append("    if taken:")
            if dest_c in jumpdests:
                stats["threaded"] += 1
                chain_or_goto(dest_c, indent="        ")
            else:
                out.append("        m._steps = steps")
                out.append('        raise IJ("JUMPI to ' + str(dest_c)
                           + " at pc=" + str(pc) + '")')
            chain_or_goto(fall)
        else:
            out.append(f"    taken = {cond_e} != 0")
            emit_branch_record(pc, cond_e, "taken", dest_e, cs_e,
                               static_shadow=cs_c)
            out.append("    if taken:")
            out.append(f"        if {dest_e} not in JD:")
            out.append("            m._steps = steps")
            out.append(f'            raise IJ(f"JUMPI to {{{dest_e}}} at pc='
                       + str(pc) + '")')
            out.append(f"        nb = BL.get({dest_e})")
            out.append("        if nb is None:")
            out.append(f"            return FB, gas, steps, {dest_e}")
            out.append("        return nb, gas, steps, None")
            chain_or_goto(fall)


# -- interp tier --------------------------------------------------------------


def _make_interp_block(block, analysis, blocks):
    """Per-opcode execution over a precomputed entry list: exact table-loop
    semantics (gas decremented and step budget checked per instruction —
    required because this tier exists precisely for the handlers that read
    the running gas counter), minus the per-pc decode probes."""
    decoded = analysis.decoded
    jumpdests = analysis.jumpdests
    code_len = analysis.code_len
    end = block.end
    entries = []
    for ins in block.instructions:
        kind, cost, a, b = decoded[ins.pc]
        entries.append((kind, cost, a, b, ins.pc,
                        ins.opcode == Op.REVERT))

    def run(m, frame, depth, gas, steps):
        stack = frame.stack
        values = stack.values
        shadows = stack.shadows
        max_steps = m.max_steps
        try:
            for kind, cost, a, b, pc, sync in entries:
                steps += 1
                if steps > max_steps:
                    raise OutOfGas("per-transaction step budget exhausted")
                gas -= cost
                if gas < 0:
                    raise OutOfGas(f"out of gas at pc={pc}")
                if kind == KIND_PUSH:
                    if len(values) >= STACK_LIMIT:
                        raise StackOverflow("stack limit of 1024 exceeded")
                    values.append(a)
                    shadows.append(EMPTY_SHADOW)
                    continue
                if kind == KIND_SIMPLE:
                    if sync:
                        m._sync_gas = gas
                    result = a(m, pc, frame, depth, gas)
                    if result is not None:
                        tag, payload = result
                        if tag == "halt":
                            return None, gas, steps, payload
                        gas = payload
                    continue
                if kind == KIND_CALL:
                    m._steps = steps
                    result = a(m, pc, frame, depth, gas)
                    steps = m._steps
                    gas = result[1]
                    continue
                if kind == KIND_DUP:
                    stack.dup(a)
                    continue
                if kind == KIND_SWAP:
                    stack.swap(a)
                    continue
                if kind == KIND_JUMPI:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    dest = values.pop()
                    shadows.pop()
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    cond = values.pop()
                    cond_shadow = shadows.pop()
                    taken = cond != 0
                    m._record_branch(pc, frame.msg.address, depth, cond,
                                     taken, dest, cond_shadow)
                    if taken:
                        if dest not in jumpdests:
                            raise InvalidJump(f"JUMPI to {dest} at pc={pc}")
                        nb = blocks.get(dest)
                        if nb is None:
                            return FUSION_BAILOUT, gas, steps, dest
                        return nb, gas, steps, None
                    continue
                if kind == KIND_JUMP:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    shadows.pop()
                    dest = values.pop()
                    if dest not in jumpdests:
                        raise InvalidJump(f"JUMP to {dest} at pc={pc}")
                    nb = blocks.get(dest)
                    if nb is None:
                        return FUSION_BAILOUT, gas, steps, dest
                    return nb, gas, steps, None
                if kind == KIND_JUMPDEST:
                    continue
                if kind == KIND_STOP:
                    return None, gas, steps, b""
            if end >= code_len:
                return None, gas, steps, b""
            nb = blocks.get(end)
            if nb is None:
                return FUSION_BAILOUT, gas, steps, end
            return nb, gas, steps, None
        finally:
            # keep the machine's step count exact across raising paths —
            # the table loop's finally clause does the same
            if steps > m._steps:
                m._steps = steps

    return run


def _make_bailout_block(start: int):
    def run(m, frame, depth, gas, steps):
        return FUSION_BAILOUT, gas, steps, start

    return run


# -- program compilation ------------------------------------------------------


def _compile_program(code: bytes, mask: int) -> FusedProgram:
    global _programs, _blocks_fused, _blocks_interp, _blocks_bailout
    global _folded_ops, _inlined_ops, _threaded_jumps, _chained_blocks
    analysis = analyze_code(code)
    cfg = build_cfg(code)
    blocks: dict[int, object] = {}
    stats = {"blocks": len(cfg.blocks), "fused": 0, "interp": 0,
             "bailout": 0, "folded": 0, "inlined": 0, "threaded": 0,
             "chained": 0, "reasons": {}}
    ns: dict = {
        "FB": FUSION_BAILOUT,
        "FS": _FUSED_STEPS,
        "ES": EMPTY_SHADOW,
        "IJ": InvalidJump,
        "JD": analysis.jumpdests,
        "BL": blocks,
        # inline-superinstruction support (see _emit_inline)
        "BE": BranchEvent,
        "CE": CompareEvent,
        "OE": OverflowEvent,
        "SE": StorageEvent,
        "ICR": is_call_result_tag,
        "CSH": comparison_shadow,
        "MT": merge_taints,
        "TC": Taint.CALLER,
        "SH": Shadow,
        "UM": U256_MAX,
        "CA": combine_and,
        "CO": combine_or,
        "CDS": CALLDATA_SHADOW,
        "CALLER_SH": CALLER_SHADOW,
        "CALLVALUE_SH": CALLVALUE_SHADOW,
        "ORIGIN_SH": ORIGIN_SHADOW,
    }

    #: chaining needs every block's tier before any block is emitted
    tiers: dict[int, str] = {}
    reasons: dict[int, str | None] = {}
    for start in sorted(cfg.blocks):
        tiers[start], reasons[start] = _classify(cfg.blocks[start])

    def hname(op: int) -> str:
        name = f"H{op:02X}"
        if name not in ns:
            ns[name] = SIMPLE_HANDLERS[op]
        return name

    shadow_names: dict[Shadow, str] = {}

    def sname(shadow: Shadow) -> str:
        if shadow == EMPTY_SHADOW:
            return "ES"
        name = shadow_names.get(shadow)
        if name is None:
            name = f"S{len(shadow_names)}"
            shadow_names[shadow] = name
            ns[name] = shadow
        return name

    word_names: dict[bytes, str] = {}

    def bname(value: int) -> str:
        """Interned 32-byte big-endian constant (baked MSTORE words)."""
        data = value.to_bytes(32, "big")
        name = word_names.get(data)
        if name is None:
            name = f"W{len(word_names)}"
            word_names[data] = name
            ns[name] = data
        return name

    lines: list[str] = []
    fused_starts: list[int] = []
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        tier, reason = tiers[start], reasons[start]
        if tier == TIER_FUSED:
            _emit_fused_block(block, analysis, cfg, mask, ns, hname, sname,
                              bname, lines, stats, tiers)
            fused_starts.append(start)
            stats["fused"] += 1
        elif tier == TIER_INTERP:
            blocks[start] = _make_interp_block(block, analysis, blocks)
            stats["interp"] += 1
            stats["reasons"][reason] = stats["reasons"].get(reason, 0) + 1
        else:
            blocks[start] = _make_bailout_block(start)
            stats["bailout"] += 1
            stats["reasons"][reason] = stats["reasons"].get(reason, 0) + 1

    source = "\n".join(lines)
    if fused_starts:
        digest = hashlib.sha256(code).hexdigest()[:12]
        exec(compile(source, f"<fusion:{digest}:{mask:#x}>", "exec"), ns)
        for start in fused_starts:
            blocks[start] = ns[f"B{start}"]
    # every block closure is reachable by name from generated code
    # (threaded returns may target interp/bailout blocks too)
    for start, closure in blocks.items():
        ns[f"B{start}"] = closure

    _programs += 1
    _blocks_fused += stats["fused"]
    _blocks_interp += stats["interp"]
    _blocks_bailout += stats["bailout"]
    _folded_ops += stats["folded"]
    _inlined_ops += stats["inlined"]
    _threaded_jumps += stats["threaded"]
    _chained_blocks += stats["chained"]
    for reason, count in stats["reasons"].items():
        _fallback_reasons[reason] = _fallback_reasons.get(reason, 0) + count
    return FusedProgram(blocks.get(0), blocks, tiers, stats, source)


# -- process-level cache ------------------------------------------------------

CACHE_CAPACITY = 256
_cache: OrderedDict[tuple, FusedProgram] = OrderedDict()
#: identity fast path, same contract as evm.analysis's memo — but keyed on
#: ``(id(code), event_mask)``: unlike CodeAnalysis, programs are
#: mask-specialized, and pool workers interleave campaigns with different
#: oracle subscriptions over the same code objects
_id_memo: dict[tuple, tuple] = {}
_ID_MEMO_CAPACITY = 128
_hits = 0
_misses = 0


def fused_program(code: bytes, event_mask: int) -> FusedProgram:
    """The (cached) fused program for ``code`` under ``event_mask``."""
    global _hits, _misses
    memo_key = (id(code), event_mask)
    memo = _id_memo.get(memo_key)
    if memo is not None and memo[0] is code:
        _hits += 1
        return memo[1]
    key = (hashlib.sha256(code).digest(), event_mask)
    entry = _cache.get(key)
    if entry is not None:
        _hits += 1
        _cache.move_to_end(key)
    else:
        _misses += 1
        entry = _compile_program(code, event_mask)
        _cache[key] = entry
        while len(_cache) > CACHE_CAPACITY:
            _cache.popitem(last=False)
    if len(_id_memo) >= _ID_MEMO_CAPACITY:
        _id_memo.clear()
    _id_memo[memo_key] = (code, entry)
    return entry


def fusion_stats() -> dict:
    """Compile/runtime counters (tests, benches, ``--profile``)."""
    return {
        "programs": _programs,
        "blocks_fused": _blocks_fused,
        "blocks_interp": _blocks_interp,
        "blocks_bailout": _blocks_bailout,
        "folded_ops": _folded_ops,
        "inlined_ops": _inlined_ops,
        "threaded_jumps": _threaded_jumps,
        "chained_blocks": _chained_blocks,
        "fused_steps": _FUSED_STEPS[0],
        "runtime_bailouts": _runtime_bailouts,
        "fallback_reasons": dict(_fallback_reasons),
        "hits": _hits,
        "misses": _misses,
        "entries": len(_cache),
    }


def clear_cache() -> None:
    """Drop every cached program and reset the counters (tests)."""
    global _programs, _blocks_fused, _blocks_interp, _blocks_bailout
    global _folded_ops, _inlined_ops, _threaded_jumps, _chained_blocks
    global _runtime_bailouts, _hits, _misses
    _cache.clear()
    _id_memo.clear()
    _programs = 0
    _blocks_fused = 0
    _blocks_interp = 0
    _blocks_bailout = 0
    _folded_ops = 0
    _inlined_ops = 0
    _threaded_jumps = 0
    _chained_blocks = 0
    _runtime_bailouts = 0
    _fallback_reasons.clear()
    _FUSED_STEPS[0] = 0
    _hits = 0
    _misses = 0
