"""Exception hierarchy for EVM execution.

Every abnormal-halt condition is a subclass of :class:`EVMError`.  The machine
catches these internally and converts them into a failed
:class:`~repro.evm.machine.ExecutionResult`; they only propagate to callers of
the raw step API.
"""

from __future__ import annotations


class EVMError(Exception):
    """Base class for all abnormal EVM halts."""


class StackUnderflow(EVMError):
    """An instruction popped more items than the stack holds."""


class StackOverflow(EVMError):
    """The stack exceeded the 1024-item EVM limit."""


class InvalidJump(EVMError):
    """A JUMP/JUMPI targeted a byte that is not a JUMPDEST."""


class OutOfGas(EVMError):
    """The gas counter dropped below zero."""


class InvalidOpcode(EVMError):
    """Execution reached an undefined or INVALID opcode."""


class Revert(EVMError):
    """Execution reverted explicitly (REVERT opcode or require failure)."""


class CallDepthExceeded(EVMError):
    """The 1024-frame call-depth limit was exceeded."""


class InsufficientBalance(EVMError):
    """A value transfer exceeded the sender's balance."""
