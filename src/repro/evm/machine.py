"""The EVM interpreter.

:class:`Machine` executes one *message call* (and, recursively, its nested
calls) against a ``world`` object supplied by :mod:`repro.chain.state`.  It
maintains taint shadows, records semantic trace events, and implements real
revert/rollback semantics via world snapshots, so that reentrancy, unhandled
exceptions, and overflow truncation behave exactly as they would on Ethereum.

The hot loop is table-dispatched: :func:`repro.evm.analysis.analyze_code`
predecodes each bytecode once per process (jumpdests, PUSH immediates,
per-opcode gas, handler functions from :mod:`repro.evm.handlers`), and
``_run`` walks that table with no per-step dict probes or enum
constructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.analysis import (
    KIND_CALL,
    KIND_DUP,
    KIND_JUMP,
    KIND_JUMPDEST,
    KIND_JUMPI,
    KIND_PUSH,
    KIND_SIMPLE,
    KIND_STOP,
    KIND_SWAP,
    analyze_code,
)
from repro.evm.errors import (
    CallDepthExceeded,
    EVMError,
    InsufficientBalance,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from repro.evm import fusion
from repro.evm.fusion import FUSION_BAILOUT, fused_program
from repro.evm.handlers import keccak  # noqa: F401  (public API, re-export)
from repro.evm.memory import Memory
from repro.evm.stack import STACK_LIMIT, Stack
from repro.evm.trace import (
    EMPTY_SHADOW,
    EV_ALL,
    EV_BLOCK,
    EV_BRANCH,
    EV_CALL,
    EV_COMPARE,
    EV_ETHER,
    EV_OVERFLOW,
    EV_SELFDESTRUCT,
    EV_STORAGE,
    BranchEvent,
    CallEvent,
    EtherEvent,
    ExecutionTrace,
    Shadow,
    call_result_tag,
    is_call_result_tag,
)

from repro.telemetry import metrics as _metrics

#: per-transaction telemetry.  The transaction boundary is the hottest
#: instrumented point in the system (tx bodies can be a few microseconds),
#: so it self-counts with plain module ints — no cheaper operation exists
#: in CPython, enabled or not — and a snapshot-time collector mirrors the
#: totals into the registry's counters.  Only the rare revert path touches
#: a real instrument.
_T_TXS = _metrics.counter("evm.transactions")
_T_STEPS = _metrics.counter("evm.steps")
_T_REVERTS = _metrics.counter("evm.reverted_transactions")

_txs = 0
_steps_total = 0
_reverts = 0


def _collect_tx_counters() -> None:
    _T_TXS.set_total(_txs)
    _T_STEPS.set_total(_steps_total)
    _T_REVERTS.set_total(_reverts)


_metrics.register_collector(_collect_tx_counters)

WORD = 1 << 256
CALL_DEPTH_LIMIT = 1024
#: Gas stipend forwarded by ``transfer``/``send``; the reentrancy oracle keys
#: off calls forwarding *more* than this.
CALL_STIPEND = 2300


@dataclass(slots=True)
class Message:
    """One message call: the unit the machine executes."""

    address: int          # storage/balance context
    caller: int
    origin: int
    value: int
    data: bytes
    gas: int
    code: bytes
    is_delegate: bool = False


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of executing a message."""

    success: bool
    returndata: bytes = b""
    error: str | None = None
    gas_left: int = 0


@dataclass(slots=True)
class CallContext:
    """Per-frame execution context."""

    msg: Message
    stack: Stack = field(default_factory=Stack)
    memory: Memory = field(default_factory=Memory)
    pc: int = 0
    #: whether this frame already made an external CALL (for RE refinement)
    made_external_call: bool = False
    #: whether msg.sender was compared in this frame (modifier-guard signal)
    caller_checked: bool = False


class Machine:
    """Executes messages against a world, collecting an :class:`ExecutionTrace`.

    Parameters
    ----------
    world:
        Provides code/balance/storage plus snapshot/rollback; see
        :class:`repro.chain.state.WorldState`.
    block:
        Block environment (``number``, ``timestamp``, ...); see
        :class:`repro.chain.blockchain.BlockContext`.
    max_steps:
        Hard per-transaction instruction budget, protecting fuzzing campaigns
        from runaway loops independent of gas.
    event_mask:
        ``EV_*`` bitmask selecting which trace-event kinds are materialized
        at all.  The default records everything (library behaviour);
        fuzzing campaigns pass the union of what the feedback loop and the
        subscribed oracles actually consume, so unneeded kinds cost one
        boolean check per opcode instead of an allocation plus an append.
    bus:
        Optional :class:`~repro.oracles.bus.OracleBus`.  When present, its
        subscription mask is OR-ed into ``event_mask`` and every recorded
        event of a subscribed kind is dispatched to the subscribed oracles
        *while the transaction executes*; subcall-revert rollback is
        forwarded to the oracles' transactional buffers in lockstep with
        the trace's own rollback.
    """

    def __init__(self, world, block, max_steps: int = 200_000,
                 event_mask: int = EV_ALL, bus=None,
                 block_fusion: bool | None = None) -> None:
        self.world = world
        self.block = block
        self.max_steps = max_steps
        self.trace = ExecutionTrace()
        self._steps = 0
        #: gas at the most recent REVERT site — closures on the fused tier
        #: sync it just before the raising handler so the Revert catch can
        #: report the exact refund the table loop would have
        self._sync_gas = 0
        self.block_fusion = (fusion.default_enabled() if block_fusion is None
                             else block_fusion)
        self._executed = False
        self._active_addresses: list[int] = []
        self.bus = bus
        # machines are built once per transaction: the dispatch tables come
        # prebuilt from the bus, and the rec_* gates are plain ints (bit
        # test results) — cheap to set up, truthy to check
        if bus is not None:
            event_mask |= bus.mask  # subscribed kinds always materialize
            (self.sub_branch, self.sub_compare, self.sub_call,
             self.sub_overflow, self.sub_storage, self.sub_selfdestruct,
             self.sub_block, self.sub_ether) = bus.dispatch_tables
            self.oracle_ctx = bus.ctx
        else:
            self.sub_branch = self.sub_compare = self.sub_call = \
                self.sub_overflow = self.sub_storage = \
                self.sub_selfdestruct = self.sub_block = self.sub_ether = ()
            self.oracle_ctx = None
        self.event_mask = event_mask
        self.rec_branch = event_mask & EV_BRANCH
        self.rec_compare = event_mask & EV_COMPARE
        self.rec_call = event_mask & EV_CALL
        self.rec_overflow = event_mask & EV_OVERFLOW
        self.rec_storage = event_mask & EV_STORAGE
        self.rec_selfdestruct = event_mask & EV_SELFDESTRUCT
        self.rec_block = event_mask & EV_BLOCK
        self.rec_ether = event_mask & EV_ETHER

    # -- public API ---------------------------------------------------------

    def execute(self, msg: Message) -> ExecutionResult:
        """Execute ``msg`` as the outermost frame of a transaction."""
        self._steps = 0
        if self._executed:  # machines are usually single-use: reuse the
            self.trace = ExecutionTrace()  # __init__ trace on first execute
        self._executed = True
        if self.bus is not None:
            self.bus.begin_transaction()
        snapshot = self.world.snapshot()
        result = self._call(msg, depth=0)
        if not result.success:
            self.world.revert_to(snapshot)
            self.trace.reverted = True
            self.trace.error = result.error
        else:
            self.world.commit(snapshot)
        self.trace.steps = self._steps
        global _txs, _steps_total, _reverts
        _txs += 1
        _steps_total += self._steps
        if not result.success:
            _reverts += 1
        return result

    # -- internal call handling ----------------------------------------------

    def _call(self, msg: Message, depth: int) -> ExecutionResult:
        if depth > CALL_DEPTH_LIMIT:
            return ExecutionResult(False, error="call depth exceeded")
        if msg.value:
            try:
                self.world.transfer(msg.caller, msg.address, msg.value)
            except InsufficientBalance as exc:
                return ExecutionResult(False, error=str(exc))
            if self.rec_ether:
                self.trace.ether_received[msg.address] = (
                    self.trace.ether_received.get(msg.address, 0) + msg.value
                )
                if self.sub_ether:
                    event = EtherEvent(pc=0, address=msg.address,
                                       depth=depth, amount=msg.value)
                    for deliver in self.sub_ether:
                        deliver(event, self.oracle_ctx)
        agent = self.world.get_agent(msg.address)
        if agent is not None and not msg.is_delegate:
            return agent.on_call(self, msg, depth)
        if not msg.code:
            return ExecutionResult(True, gas_left=msg.gas)

        self._active_addresses.append(msg.address)
        frame = CallContext(msg=msg)
        try:
            return self._run(frame, depth)
        finally:
            self._active_addresses.pop()

    # -- the interpreter loop -------------------------------------------------

    def _run(self, frame: CallContext, depth: int) -> ExecutionResult:
        code = frame.msg.code
        analysis = analyze_code(code)
        if self.block_fusion and frame.pc == 0:
            program = fused_program(code, self.event_mask)
            entry = program.entry
            if entry is not None:
                return self._run_fused(entry, frame, depth, analysis)
        return self._run_table(frame, depth, analysis)

    def _run_fused(self, block, frame: CallContext, depth: int,
                   analysis) -> ExecutionResult:
        """Block-threaded outer loop (see :mod:`repro.evm.fusion`).

        Each closure returns the next block's closure directly, ``None``
        for a successful halt, or :data:`FUSION_BAILOUT` to hand the rest
        of the frame to the table loop (always before executing any part
        of the declining block, so the replay is byte-identical).
        """
        gas = frame.msg.gas
        steps = self._steps
        try:
            while True:
                nxt, gas, steps, payload = block(self, frame, depth, gas,
                                                 steps)
                if nxt is None:
                    return ExecutionResult(True, payload, gas_left=gas)
                if nxt is FUSION_BAILOUT:
                    frame.pc = payload
                    fusion.note_runtime_bailout()
                    return self._run_table(frame, depth, analysis,
                                           gas=gas, steps=steps)
                block = nxt
        except Revert as exc:
            return ExecutionResult(False, error=f"revert: {exc}",
                                   gas_left=self._sync_gas)
        except EVMError as exc:
            return ExecutionResult(
                False, error=f"{type(exc).__name__}: {exc}", gas_left=0)
        finally:
            # raising closures sync self._steps themselves; the max keeps
            # the count exact when an exception escaped a nested call
            if steps > self._steps:
                self._steps = steps

    def _run_table(self, frame: CallContext, depth: int, analysis,
                   gas: int | None = None,
                   steps: int | None = None) -> ExecutionResult:
        msg = frame.msg
        code = msg.code
        stack = frame.stack
        if gas is None:
            gas = msg.gas
        jumpdests = analysis.jumpdests
        decoded = analysis.decoded
        n = analysis.code_len
        values = stack.values
        shadows = stack.shadows
        max_steps = self.max_steps
        address = msg.address
        pc = frame.pc
        # local step counter: synced with self._steps only around nested
        # calls (KIND_CALL) and on frame exit — see the finally clause
        if steps is None:
            steps = self._steps

        try:
            while pc < n:
                steps += 1
                if steps > max_steps:
                    raise OutOfGas("per-transaction step budget exhausted")
                entry = decoded[pc]
                if entry is None:
                    raise InvalidOpcode(
                        f"undefined opcode {code[pc]:#x} at pc={pc}")
                kind, cost, a, b = entry
                gas -= cost
                if gas < 0:
                    raise OutOfGas(f"out of gas at pc={pc}")

                if kind == KIND_PUSH:
                    # inlined stack.push(a) with the interned empty shadow
                    if len(values) >= STACK_LIMIT:
                        raise StackOverflow("stack limit of 1024 exceeded")
                    values.append(a)
                    shadows.append(EMPTY_SHADOW)
                    pc = b
                    continue

                if kind == KIND_SIMPLE:
                    result = a(self, pc, frame, depth, gas)
                    if result is not None:
                        tag, payload = result
                        if tag == "halt":
                            return ExecutionResult(True, payload,
                                                   gas_left=gas)
                        gas = payload
                    pc = b
                    continue

                if kind == KIND_DUP:
                    stack.dup(a)
                    pc = b
                    continue

                if kind == KIND_SWAP:
                    stack.swap(a)
                    pc = b
                    continue

                if kind == KIND_JUMPI:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    dest = values.pop()
                    shadows.pop()
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    cond = values.pop()
                    cond_shadow = shadows.pop()
                    taken = cond != 0
                    self._record_branch(pc, address, depth, cond, taken,
                                        dest, cond_shadow)
                    if taken:
                        if dest not in jumpdests:
                            raise InvalidJump(f"JUMPI to {dest} at pc={pc}")
                        pc = dest
                    else:
                        pc = b
                    continue

                if kind == KIND_JUMP:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    shadows.pop()
                    dest = values.pop()
                    if dest not in jumpdests:
                        raise InvalidJump(f"JUMP to {dest} at pc={pc}")
                    pc = dest
                    continue

                if kind == KIND_JUMPDEST:
                    pc = b
                    continue

                if kind == KIND_CALL:
                    # nested frames advance self._steps: sync out, reload
                    self._steps = steps
                    result = a(self, pc, frame, depth, gas)
                    steps = self._steps
                    gas = result[1]
                    pc = b
                    continue

                # KIND_STOP
                return ExecutionResult(True, gas_left=gas)

            return ExecutionResult(True, gas_left=gas)
        except Revert as exc:
            return ExecutionResult(False, error=f"revert: {exc}", gas_left=gas)
        except EVMError as exc:
            return ExecutionResult(
                False, error=f"{type(exc).__name__}: {exc}", gas_left=0)
        finally:
            # steps may lag self._steps when an exception escaped a nested
            # call (the callee already synced a larger total); take the max
            if steps > self._steps:
                self._steps = steps
            frame.pc = pc

    # -- calls -----------------------------------------------------------------

    def _op_call(self, pc: int, frame: CallContext, depth: int, gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        value, value_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        event = None
        if self.rec_call:
            event = CallEvent(
                pc=pc, address=msg.address, depth=depth, kind="call",
                target=target, value=value, gas=call_gas,
                reentrant=target in self._active_addresses,
                target_taints=target_shadow.taints,
                value_taints=value_shadow.taints,
                guarded=frame.caller_checked, index=len(self.trace.calls))
            self.trace.calls.append(event)
            for deliver in self.sub_call:
                deliver(event, self.oracle_ctx)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        trace_mark = self.trace.subcall_mark()
        bus = self.bus
        bus_mark = bus.subcall_mark() if bus is not None else None
        inner = Message(
            address=target, caller=msg.address, origin=msg.origin,
            value=value, data=data, gas=call_gas,
            code=self.world.get_code(target))
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            self.trace.rollback_subcall(trace_mark)
            if bus is not None:
                bus.rollback_subcall(bus_mark)
            if event is not None:
                event.callee_error = result.error
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        if event is not None:
            event.success = result.success
            # the success flag is tainted with the call's index so a later
            # JUMPI can mark the call *checked* — only meaningful while
            # call events are recorded at all
            stack.push(1 if result.success else 0,
                       Shadow(frozenset({call_result_tag(event.index)})))
        else:
            stack.push(1 if result.success else 0)
        return gas - (call_gas - result.gas_left)

    def _op_delegatecall(self, pc: int, frame: CallContext, depth: int,
                         gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        event = None
        if self.rec_call:
            event = CallEvent(
                pc=pc, address=msg.address, depth=depth,
                kind="delegatecall", target=target, value=0, gas=call_gas,
                target_taints=target_shadow.taints,
                guarded=frame.caller_checked, index=len(self.trace.calls))
            self.trace.calls.append(event)
            for deliver in self.sub_call:
                deliver(event, self.oracle_ctx)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        trace_mark = self.trace.subcall_mark()
        bus = self.bus
        bus_mark = bus.subcall_mark() if bus is not None else None
        inner = Message(
            address=msg.address, caller=msg.caller, origin=msg.origin,
            value=msg.value, data=data, gas=call_gas,
            code=self.world.get_code(target), is_delegate=True)
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            self.trace.rollback_subcall(trace_mark)
            if bus is not None:
                bus.rollback_subcall(bus_mark)
            if event is not None:
                event.callee_error = result.error
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        if event is not None:
            event.success = result.success
            stack.push(1 if result.success else 0,
                       Shadow(frozenset({call_result_tag(event.index)})))
        else:
            stack.push(1 if result.success else 0)
        return gas - (call_gas - result.gas_left)

    # -- branch recording -------------------------------------------------------

    def _record_branch(self, pc: int, address: int, depth: int, cond: int,
                       taken: bool, dest: int, shadow: Shadow) -> None:
        if not self.rec_branch:
            return
        event = BranchEvent(
            pc=pc, address=address, depth=depth, condition=cond, taken=taken,
            dest=dest, taints=shadow.taints,
            dist_true=shadow.dist_true, dist_false=shadow.dist_false)
        self.trace.branches.append(event)
        self.trace.branch_edges.add((address, pc, taken))
        for tag in shadow.taints:
            if is_call_result_tag(tag):
                idx = int(tag.split(":", 1)[1])
                if idx < len(self.trace.calls):
                    self.trace.calls[idx].checked = True
        for deliver in self.sub_branch:
            deliver(event, self.oracle_ctx)


