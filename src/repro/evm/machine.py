"""The EVM interpreter.

:class:`Machine` executes one *message call* (and, recursively, its nested
calls) against a ``world`` object supplied by :mod:`repro.chain.state`.  It
maintains taint shadows, records semantic trace events, and implements real
revert/rollback semantics via world snapshots, so that reentrancy, unhandled
exceptions, and overflow truncation behave exactly as they would on Ethereum.

The hot loop is table-dispatched: :func:`repro.evm.analysis.analyze_code`
predecodes each bytecode once per process (jumpdests, PUSH immediates,
per-opcode gas, handler functions from :mod:`repro.evm.handlers`), and
``_run`` walks that table with no per-step dict probes or enum
constructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.analysis import (
    KIND_CALL,
    KIND_DUP,
    KIND_JUMP,
    KIND_JUMPDEST,
    KIND_JUMPI,
    KIND_PUSH,
    KIND_SIMPLE,
    KIND_STOP,
    KIND_SWAP,
    analyze_code,
)
from repro.evm.errors import (
    CallDepthExceeded,
    EVMError,
    InsufficientBalance,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from repro.evm.handlers import keccak  # noqa: F401  (public API, re-export)
from repro.evm.memory import Memory
from repro.evm.stack import STACK_LIMIT, Stack
from repro.evm.trace import (
    EMPTY_SHADOW,
    BranchEvent,
    CallEvent,
    ExecutionTrace,
    Shadow,
    call_result_tag,
    is_call_result_tag,
)

WORD = 1 << 256
CALL_DEPTH_LIMIT = 1024
#: Gas stipend forwarded by ``transfer``/``send``; the reentrancy oracle keys
#: off calls forwarding *more* than this.
CALL_STIPEND = 2300


@dataclass(slots=True)
class Message:
    """One message call: the unit the machine executes."""

    address: int          # storage/balance context
    caller: int
    origin: int
    value: int
    data: bytes
    gas: int
    code: bytes
    is_delegate: bool = False


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of executing a message."""

    success: bool
    returndata: bytes = b""
    error: str | None = None
    gas_left: int = 0


@dataclass(slots=True)
class CallContext:
    """Per-frame execution context."""

    msg: Message
    stack: Stack = field(default_factory=Stack)
    memory: Memory = field(default_factory=Memory)
    pc: int = 0
    #: whether this frame already made an external CALL (for RE refinement)
    made_external_call: bool = False
    #: whether msg.sender was compared in this frame (modifier-guard signal)
    caller_checked: bool = False


class Machine:
    """Executes messages against a world, collecting an :class:`ExecutionTrace`.

    Parameters
    ----------
    world:
        Provides code/balance/storage plus snapshot/rollback; see
        :class:`repro.chain.state.WorldState`.
    block:
        Block environment (``number``, ``timestamp``, ...); see
        :class:`repro.chain.blockchain.BlockContext`.
    max_steps:
        Hard per-transaction instruction budget, protecting fuzzing campaigns
        from runaway loops independent of gas.
    """

    def __init__(self, world, block, max_steps: int = 200_000) -> None:
        self.world = world
        self.block = block
        self.max_steps = max_steps
        self.trace = ExecutionTrace()
        self._steps = 0
        self._executed = False
        self._active_addresses: list[int] = []

    # -- public API ---------------------------------------------------------

    def execute(self, msg: Message) -> ExecutionResult:
        """Execute ``msg`` as the outermost frame of a transaction."""
        self._steps = 0
        if self._executed:  # machines are usually single-use: reuse the
            self.trace = ExecutionTrace()  # __init__ trace on first execute
        self._executed = True
        snapshot = self.world.snapshot()
        result = self._call(msg, depth=0)
        if not result.success:
            self.world.revert_to(snapshot)
            self.trace.reverted = True
            self.trace.error = result.error
        else:
            self.world.commit(snapshot)
        self.trace.steps = self._steps
        return result

    # -- internal call handling ----------------------------------------------

    def _call(self, msg: Message, depth: int) -> ExecutionResult:
        if depth > CALL_DEPTH_LIMIT:
            return ExecutionResult(False, error="call depth exceeded")
        if msg.value:
            try:
                self.world.transfer(msg.caller, msg.address, msg.value)
            except InsufficientBalance as exc:
                return ExecutionResult(False, error=str(exc))
            self.trace.ether_received[msg.address] = (
                self.trace.ether_received.get(msg.address, 0) + msg.value
            )
        agent = self.world.get_agent(msg.address)
        if agent is not None and not msg.is_delegate:
            return agent.on_call(self, msg, depth)
        if not msg.code:
            return ExecutionResult(True, gas_left=msg.gas)

        self._active_addresses.append(msg.address)
        frame = CallContext(msg=msg)
        try:
            return self._run(frame, depth)
        finally:
            self._active_addresses.pop()

    # -- the interpreter loop -------------------------------------------------

    def _run(self, frame: CallContext, depth: int) -> ExecutionResult:
        msg = frame.msg
        code = msg.code
        stack = frame.stack
        gas = msg.gas
        analysis = analyze_code(code)
        jumpdests = analysis.jumpdests
        decoded = analysis.decoded
        n = analysis.code_len
        values = stack.values
        shadows = stack.shadows
        max_steps = self.max_steps
        address = msg.address
        pc = frame.pc
        # local step counter: synced with self._steps only around nested
        # calls (KIND_CALL) and on frame exit — see the finally clause
        steps = self._steps

        try:
            while pc < n:
                steps += 1
                if steps > max_steps:
                    raise OutOfGas("per-transaction step budget exhausted")
                entry = decoded[pc]
                if entry is None:
                    raise InvalidOpcode(
                        f"undefined opcode {code[pc]:#x} at pc={pc}")
                kind, cost, a, b = entry
                gas -= cost
                if gas < 0:
                    raise OutOfGas(f"out of gas at pc={pc}")

                if kind == KIND_PUSH:
                    # inlined stack.push(a) with the interned empty shadow
                    if len(values) >= STACK_LIMIT:
                        raise StackOverflow("stack limit of 1024 exceeded")
                    values.append(a)
                    shadows.append(EMPTY_SHADOW)
                    pc = b
                    continue

                if kind == KIND_SIMPLE:
                    result = a(self, pc, frame, depth, gas)
                    if result is not None:
                        tag, payload = result
                        if tag == "halt":
                            return ExecutionResult(True, payload,
                                                   gas_left=gas)
                        gas = payload
                    pc = b
                    continue

                if kind == KIND_DUP:
                    stack.dup(a)
                    pc = b
                    continue

                if kind == KIND_SWAP:
                    stack.swap(a)
                    pc = b
                    continue

                if kind == KIND_JUMPI:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    dest = values.pop()
                    shadows.pop()
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    cond = values.pop()
                    cond_shadow = shadows.pop()
                    taken = cond != 0
                    self._record_branch(pc, address, depth, cond, taken,
                                        dest, cond_shadow)
                    if taken:
                        if dest not in jumpdests:
                            raise InvalidJump(f"JUMPI to {dest} at pc={pc}")
                        pc = dest
                    else:
                        pc = b
                    continue

                if kind == KIND_JUMP:
                    if not values:
                        raise StackUnderflow("pop from empty stack")
                    shadows.pop()
                    dest = values.pop()
                    if dest not in jumpdests:
                        raise InvalidJump(f"JUMP to {dest} at pc={pc}")
                    pc = dest
                    continue

                if kind == KIND_JUMPDEST:
                    pc = b
                    continue

                if kind == KIND_CALL:
                    # nested frames advance self._steps: sync out, reload
                    self._steps = steps
                    result = a(self, pc, frame, depth, gas)
                    steps = self._steps
                    gas = result[1]
                    pc = b
                    continue

                # KIND_STOP
                return ExecutionResult(True, gas_left=gas)

            return ExecutionResult(True, gas_left=gas)
        except Revert as exc:
            return ExecutionResult(False, error=f"revert: {exc}", gas_left=gas)
        except EVMError as exc:
            return ExecutionResult(
                False, error=f"{type(exc).__name__}: {exc}", gas_left=0)
        finally:
            # steps may lag self._steps when an exception escaped a nested
            # call (the callee already synced a larger total); take the max
            if steps > self._steps:
                self._steps = steps
            frame.pc = pc

    # -- calls -----------------------------------------------------------------

    def _op_call(self, pc: int, frame: CallContext, depth: int, gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        value, value_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        reentrant = target in self._active_addresses
        event = CallEvent(
            pc=pc, address=msg.address, depth=depth, kind="call",
            target=target, value=value, gas=call_gas, reentrant=reentrant,
            target_taints=target_shadow.taints,
            value_taints=value_shadow.taints,
            guarded=frame.caller_checked, index=len(self.trace.calls))
        self.trace.calls.append(event)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        trace_mark = self.trace.subcall_mark()
        inner = Message(
            address=target, caller=msg.address, origin=msg.origin,
            value=value, data=data, gas=call_gas,
            code=self.world.get_code(target))
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            self.trace.rollback_subcall(trace_mark)
            event.callee_error = result.error
        event.success = result.success
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        stack.push(1 if result.success else 0,
                   Shadow(frozenset({call_result_tag(event.index)})))
        return gas - (call_gas - result.gas_left)

    def _op_delegatecall(self, pc: int, frame: CallContext, depth: int,
                         gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        event = CallEvent(
            pc=pc, address=msg.address, depth=depth, kind="delegatecall",
            target=target, value=0, gas=call_gas,
            target_taints=target_shadow.taints,
            guarded=frame.caller_checked, index=len(self.trace.calls))
        self.trace.calls.append(event)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        trace_mark = self.trace.subcall_mark()
        inner = Message(
            address=msg.address, caller=msg.caller, origin=msg.origin,
            value=msg.value, data=data, gas=call_gas,
            code=self.world.get_code(target), is_delegate=True)
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            self.trace.rollback_subcall(trace_mark)
            event.callee_error = result.error
        event.success = result.success
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        stack.push(1 if result.success else 0,
                   Shadow(frozenset({call_result_tag(event.index)})))
        return gas - (call_gas - result.gas_left)

    # -- branch recording -------------------------------------------------------

    def _record_branch(self, pc: int, address: int, depth: int, cond: int,
                       taken: bool, dest: int, shadow: Shadow) -> None:
        event = BranchEvent(
            pc=pc, address=address, depth=depth, condition=cond, taken=taken,
            dest=dest, taints=shadow.taints,
            dist_true=shadow.dist_true, dist_false=shadow.dist_false)
        self.trace.branches.append(event)
        self.trace.branch_edges.add((address, pc, taken))
        for tag in shadow.taints:
            if is_call_result_tag(tag):
                idx = int(tag.split(":", 1)[1])
                if idx < len(self.trace.calls):
                    self.trace.calls[idx].checked = True


