"""The EVM interpreter.

:class:`Machine` executes one *message call* (and, recursively, its nested
calls) against a ``world`` object supplied by :mod:`repro.chain.state`.  It
maintains taint shadows, records semantic trace events, and implements real
revert/rollback semantics via world snapshots, so that reentrancy, unhandled
exceptions, and overflow truncation behave exactly as they would on Ethereum.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.evm import opcodes
from repro.evm.errors import (
    CallDepthExceeded,
    EVMError,
    InsufficientBalance,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
)
from repro.evm.memory import Memory
from repro.evm.opcodes import Op
from repro.evm.stack import Stack
from repro.evm.trace import (
    EMPTY_SHADOW,
    BlockStateEvent,
    BranchEvent,
    CallEvent,
    CompareEvent,
    ExecutionTrace,
    OverflowEvent,
    SelfDestructEvent,
    Shadow,
    StorageEvent,
    Taint,
    U256_MAX,
    call_result_tag,
    combine_and,
    combine_or,
    comparison_shadow,
    is_call_result_tag,
    merge_taints,
)

WORD = 1 << 256
CALL_DEPTH_LIMIT = 1024
#: Gas stipend forwarded by ``transfer``/``send``; the reentrancy oracle keys
#: off calls forwarding *more* than this.
CALL_STIPEND = 2300


def keccak(data: bytes) -> int:
    """Contract-visible hash (sha3-256 stands in for keccak-256 offline)."""
    return int.from_bytes(hashlib.sha3_256(data).digest(), "big")


@dataclass
class Message:
    """One message call: the unit the machine executes."""

    address: int          # storage/balance context
    caller: int
    origin: int
    value: int
    data: bytes
    gas: int
    code: bytes
    is_delegate: bool = False


@dataclass
class ExecutionResult:
    """Outcome of executing a message."""

    success: bool
    returndata: bytes = b""
    error: str | None = None
    gas_left: int = 0


@dataclass
class CallContext:
    """Per-frame execution context."""

    msg: Message
    stack: Stack = field(default_factory=Stack)
    memory: Memory = field(default_factory=Memory)
    pc: int = 0
    #: whether this frame already made an external CALL (for RE refinement)
    made_external_call: bool = False
    #: whether msg.sender was compared in this frame (modifier-guard signal)
    caller_checked: bool = False


class Machine:
    """Executes messages against a world, collecting an :class:`ExecutionTrace`.

    Parameters
    ----------
    world:
        Provides code/balance/storage plus snapshot/rollback; see
        :class:`repro.chain.state.WorldState`.
    block:
        Block environment (``number``, ``timestamp``, ...); see
        :class:`repro.chain.blockchain.BlockContext`.
    max_steps:
        Hard per-transaction instruction budget, protecting fuzzing campaigns
        from runaway loops independent of gas.
    """

    def __init__(self, world, block, max_steps: int = 200_000) -> None:
        self.world = world
        self.block = block
        self.max_steps = max_steps
        self.trace = ExecutionTrace()
        self._steps = 0
        self._active_addresses: list[int] = []
        self._jumpdests_cache: dict[bytes, frozenset] = {}

    # -- public API ---------------------------------------------------------

    def execute(self, msg: Message) -> ExecutionResult:
        """Execute ``msg`` as the outermost frame of a transaction."""
        self._steps = 0
        self.trace = ExecutionTrace()
        snapshot = self.world.snapshot()
        result = self._call(msg, depth=0)
        if not result.success:
            self.world.revert_to(snapshot)
            self.trace.reverted = True
            self.trace.error = result.error
        else:
            self.world.commit(snapshot)
        self.trace.steps = self._steps
        return result

    # -- internal call handling ----------------------------------------------

    def _call(self, msg: Message, depth: int) -> ExecutionResult:
        if depth > CALL_DEPTH_LIMIT:
            return ExecutionResult(False, error="call depth exceeded")
        if msg.value:
            try:
                self.world.transfer(msg.caller, msg.address, msg.value)
            except InsufficientBalance as exc:
                return ExecutionResult(False, error=str(exc))
            self.trace.ether_received[msg.address] = (
                self.trace.ether_received.get(msg.address, 0) + msg.value
            )
        agent = self.world.get_agent(msg.address)
        if agent is not None and not msg.is_delegate:
            return agent.on_call(self, msg, depth)
        if not msg.code:
            return ExecutionResult(True, gas_left=msg.gas)

        self._active_addresses.append(msg.address)
        frame = CallContext(msg=msg)
        try:
            return self._run(frame, depth)
        finally:
            self._active_addresses.pop()

    def _jumpdests(self, code: bytes) -> frozenset:
        cached = self._jumpdests_cache.get(code)
        if cached is not None:
            return cached
        dests = set()
        i = 0
        n = len(code)
        while i < n:
            op = code[i]
            if op == Op.JUMPDEST:
                dests.add(i)
            if opcodes.is_push(op):
                i += opcodes.push_width(op)
            i += 1
        frozen = frozenset(dests)
        self._jumpdests_cache[code] = frozen
        return frozen

    # -- the interpreter loop -------------------------------------------------

    def _run(self, frame: CallContext, depth: int) -> ExecutionResult:
        msg = frame.msg
        code = msg.code
        stack = frame.stack
        memory = frame.memory
        gas = msg.gas
        jumpdests = self._jumpdests(code)
        push_val = stack.push
        n = len(code)

        try:
            while frame.pc < n:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise OutOfGas("per-transaction step budget exhausted")
                pc = frame.pc
                op = code[pc]
                info = opcodes.OPCODE_INFO.get(op)
                if info is None:
                    raise InvalidOpcode(f"undefined opcode {op:#x} at pc={pc}")
                gas -= info.gas
                if gas < 0:
                    raise OutOfGas(f"out of gas at pc={pc}")

                if opcodes.is_push(op):
                    width = opcodes.push_width(op)
                    imm = code[pc + 1: pc + 1 + width]
                    push_val(int.from_bytes(imm, "big"))
                    frame.pc = pc + 1 + width
                    continue

                if opcodes.is_dup(op):
                    stack.dup(op - 0x80 + 1)
                    frame.pc = pc + 1
                    continue

                if opcodes.is_swap(op):
                    stack.swap(op - 0x90 + 1)
                    frame.pc = pc + 1
                    continue

                if op == Op.STOP:
                    return ExecutionResult(True, gas_left=gas)

                if op == Op.JUMPDEST:
                    frame.pc = pc + 1
                    continue

                if op == Op.JUMP:
                    dest = stack.pop_value()
                    if dest not in jumpdests:
                        raise InvalidJump(f"JUMP to {dest} at pc={pc}")
                    frame.pc = dest
                    continue

                if op == Op.JUMPI:
                    dest, dest_shadow = stack.pop()
                    cond, cond_shadow = stack.pop()
                    taken = cond != 0
                    self._record_branch(pc, msg.address, depth, cond, taken,
                                        dest, cond_shadow)
                    if taken:
                        if dest not in jumpdests:
                            raise InvalidJump(f"JUMPI to {dest} at pc={pc}")
                        frame.pc = dest
                    else:
                        frame.pc = pc + 1
                    continue

                handler_result = self._execute_simple(
                    op, pc, frame, depth, gas)
                if handler_result is not None:
                    kind, payload = handler_result
                    if kind == "halt":
                        return ExecutionResult(True, payload, gas_left=gas)
                    if kind == "gas":
                        gas = payload
                frame.pc = pc + 1

            return ExecutionResult(True, gas_left=gas)
        except Revert as exc:
            return ExecutionResult(False, error=f"revert: {exc}", gas_left=gas)
        except EVMError as exc:
            return ExecutionResult(
                False, error=f"{type(exc).__name__}: {exc}", gas_left=0)

    # -- individual opcode semantics -----------------------------------------

    def _execute_simple(self, op: int, pc: int, frame: CallContext,
                        depth: int, gas: int):
        """Execute one non-control-flow opcode.

        Returns ``None`` for ordinary fallthrough, ``("halt", returndata)``
        for RETURN, or ``("gas", new_gas)`` when the opcode consumed dynamic
        gas (CALL family).
        """
        stack = frame.stack
        memory = frame.memory
        msg = frame.msg
        addr = msg.address

        if op == Op.ADD or op == Op.SUB or op == Op.MUL:
            x, sx = stack.pop()
            y, sy = stack.pop()
            if op == Op.ADD:
                raw = x + y
            elif op == Op.SUB:
                raw = x - y
            else:
                raw = x * y
            result = raw % WORD
            if raw != result:
                self.trace.overflows.append(OverflowEvent(
                    pc=pc, address=addr, depth=depth,
                    op_name=Op(op).name, lhs=x, rhs=y, result=result))
            stack.push(result, Shadow(merge_taints(sx, sy)))
            return None

        if op in (Op.DIV, Op.MOD):
            x, sx = stack.pop()
            y, sy = stack.pop()
            if y == 0:
                result = 0
            elif op == Op.DIV:
                result = x // y
            else:
                result = x % y
            stack.push(result, Shadow(merge_taints(sx, sy)))
            return None

        if op in (Op.SDIV, Op.SMOD):
            x, sx = stack.pop()
            y, sy = stack.pop()
            sx_v = x - WORD if x >= WORD // 2 else x
            sy_v = y - WORD if y >= WORD // 2 else y
            if sy_v == 0:
                result = 0
            elif op == Op.SDIV:
                result = abs(sx_v) // abs(sy_v) * (1 if sx_v * sy_v > 0 else -1)
            else:
                result = abs(sx_v) % abs(sy_v) * (1 if sx_v >= 0 else -1)
            stack.push(result % WORD, Shadow(merge_taints(sx, sy)))
            return None

        if op == Op.ADDMOD or op == Op.MULMOD:
            x, sx = stack.pop()
            y, sy = stack.pop()
            m, sm = stack.pop()
            if m == 0:
                result = 0
            elif op == Op.ADDMOD:
                result = (x + y) % m
            else:
                result = (x * y) % m
            stack.push(result, Shadow(merge_taints(sx, sy, sm)))
            return None

        if op == Op.EXP:
            x, sx = stack.pop()
            y, sy = stack.pop()
            stack.push(pow(x, y, WORD), Shadow(merge_taints(sx, sy)))
            return None

        if op == Op.SIGNEXTEND:
            b, sb = stack.pop()
            x, sx = stack.pop()
            if b < 31:
                bit = 8 * (b + 1) - 1
                if x & (1 << bit):
                    x |= WORD - (1 << (bit + 1))
                else:
                    x &= (1 << (bit + 1)) - 1
            stack.push(x % WORD, Shadow(merge_taints(sb, sx)))
            return None

        if op in (Op.LT, Op.GT, Op.SLT, Op.SGT, Op.EQ):
            x, sx = stack.pop()
            y, sy = stack.pop()
            name = Op(op).name
            taints = merge_taints(sx, sy)
            shadow = comparison_shadow(name, x, y, taints)
            result = 1 if shadow.dist_true == 0 else 0
            self.trace.compares.append(CompareEvent(
                pc=pc, address=addr, depth=depth,
                op_name=name, lhs=x, rhs=y, taints=taints))
            if Taint.CALLER in taints:
                frame.caller_checked = True
            stack.push(result, shadow)
            return None

        if op == Op.ISZERO:
            x, sx = stack.pop()
            if sx.dist_true is None:
                sx = comparison_shadow("EQ", x, 0, sx.taints)
            stack.push(0 if x else 1, sx.negated())
            return None

        if op == Op.AND:
            x, sx = stack.pop()
            y, sy = stack.pop()
            # Boolean AND of two comparison results keeps distance info.
            if sx.dist_true is not None and sy.dist_true is not None:
                shadow = combine_and(sx, sy)
            else:
                shadow = Shadow(merge_taints(sx, sy))
            stack.push(x & y, shadow)
            return None

        if op == Op.OR:
            x, sx = stack.pop()
            y, sy = stack.pop()
            if sx.dist_true is not None and sy.dist_true is not None:
                shadow = combine_or(sx, sy)
            else:
                shadow = Shadow(merge_taints(sx, sy))
            stack.push(x | y, shadow)
            return None

        if op == Op.XOR:
            x, sx = stack.pop()
            y, sy = stack.pop()
            stack.push(x ^ y, Shadow(merge_taints(sx, sy)))
            return None

        if op == Op.NOT:
            x, sx = stack.pop()
            stack.push(U256_MAX ^ x, Shadow(sx.taints))
            return None

        if op == Op.BYTE:
            i, si = stack.pop()
            x, sx = stack.pop()
            result = (x >> (8 * (31 - i))) & 0xFF if i < 32 else 0
            stack.push(result, Shadow(merge_taints(si, sx)))
            return None

        if op == Op.SHL:
            shift, ss = stack.pop()
            x, sx = stack.pop()
            result = (x << shift) % WORD if shift < 256 else 0
            stack.push(result, Shadow(merge_taints(ss, sx)))
            return None

        if op == Op.SHR:
            shift, ss = stack.pop()
            x, sx = stack.pop()
            result = x >> shift if shift < 256 else 0
            stack.push(result, Shadow(merge_taints(ss, sx)))
            return None

        if op == Op.SHA3:
            offset = stack.pop_value()
            size = stack.pop_value()
            data = memory.read(offset, size)
            taints = memory.range_taints(offset, size)
            stack.push(keccak(data), Shadow(taints))
            return None

        if op == Op.ADDRESS:
            stack.push(addr)
            return None

        if op == Op.BALANCE:
            target, _ = stack.pop()
            stack.push(self.world.get_balance(target),
                       Shadow(frozenset({Taint.BALANCE})))
            return None

        if op == Op.ORIGIN:
            stack.push(msg.origin, Shadow(frozenset({Taint.ORIGIN})))
            return None

        if op == Op.CALLER:
            stack.push(msg.caller, Shadow(frozenset({Taint.CALLER})))
            return None

        if op == Op.CALLVALUE:
            stack.push(msg.value, Shadow(frozenset({Taint.CALLVALUE})))
            return None

        if op == Op.CALLDATALOAD:
            offset = stack.pop_value()
            word = msg.data[offset:offset + 32]
            word = word + b"\x00" * (32 - len(word))
            stack.push(int.from_bytes(word, "big"),
                       Shadow(frozenset({Taint.CALLDATA})))
            return None

        if op == Op.CALLDATASIZE:
            stack.push(len(msg.data))
            return None

        if op == Op.CODESIZE:
            stack.push(len(msg.code))
            return None

        if op == Op.GASPRICE:
            stack.push(1)
            return None

        if op in (Op.TIMESTAMP, Op.NUMBER, Op.COINBASE, Op.DIFFICULTY,
                  Op.GASLIMIT, Op.BLOCKHASH):
            name = Op(op).name
            self.trace.block_reads.append(BlockStateEvent(
                pc=pc, address=addr, depth=depth, op_name=name))
            if op == Op.BLOCKHASH:
                height = stack.pop_value()
                value = keccak(height.to_bytes(32, "big")) if height else 0
            elif op == Op.TIMESTAMP:
                value = self.block.timestamp
            elif op == Op.NUMBER:
                value = self.block.number
            elif op == Op.COINBASE:
                value = self.block.coinbase
            elif op == Op.DIFFICULTY:
                value = self.block.difficulty
            else:
                value = self.block.gas_limit
            stack.push(value, Shadow(frozenset({Taint.BLOCK})))
            return None

        if op == Op.POP:
            stack.pop()
            return None

        if op == Op.MLOAD:
            offset = stack.pop_value()
            value, shadow = memory.load_word(offset)
            stack.push(value, shadow)
            return None

        if op == Op.MSTORE:
            offset = stack.pop_value()
            value, shadow = stack.pop()
            memory.store_word(offset, value, shadow)
            return None

        if op == Op.MSTORE8:
            offset = stack.pop_value()
            value = stack.pop_value()
            memory.store_byte(offset, value)
            return None

        if op == Op.SLOAD:
            slot = stack.pop_value()
            value, shadow = self.world.get_storage(addr, slot)
            self.trace.storage_ops.append(StorageEvent(
                pc=pc, address=addr, depth=depth, kind="read",
                slot=slot, value=value))
            stack.push(value, shadow)
            return None

        if op == Op.SSTORE:
            slot = stack.pop_value()
            value, shadow = stack.pop()
            self.world.set_storage(addr, slot, value, Shadow(shadow.taints))
            self.trace.storage_ops.append(StorageEvent(
                pc=pc, address=addr, depth=depth, kind="write",
                slot=slot, value=value,
                after_external_call=frame.made_external_call))
            return None

        if op == Op.PC:
            stack.push(pc)
            return None

        if op == Op.MSIZE:
            stack.push(len(memory))
            return None

        if op == Op.GAS:
            stack.push(max(gas, 0))
            return None

        if op == Op.LOG0:
            stack.pop()
            stack.pop()
            return None

        if op == Op.LOG1:
            stack.pop()
            stack.pop()
            stack.pop()
            return None

        if op == Op.RETURN:
            offset = stack.pop_value()
            size = stack.pop_value()
            return ("halt", memory.read(offset, size))

        if op == Op.REVERT:
            offset = stack.pop_value()
            size = stack.pop_value()
            raise Revert(memory.read(offset, size).hex() or "explicit revert")

        if op == Op.INVALID:
            raise InvalidOpcode(f"INVALID at pc={pc}")

        if op == Op.SELFDESTRUCT:
            beneficiary = stack.pop_value()
            self.trace.selfdestructs.append(SelfDestructEvent(
                pc=pc, address=addr, depth=depth,
                beneficiary=beneficiary, caller=msg.caller, origin=msg.origin,
                guarded_by_caller_check=frame.caller_checked))
            balance = self.world.get_balance(addr)
            if balance:
                self.world.transfer(addr, beneficiary, balance)
            self.world.mark_destroyed(addr)
            return ("halt", b"")

        if op == Op.CALL:
            return ("gas", self._op_call(pc, frame, depth, gas))

        if op == Op.DELEGATECALL:
            return ("gas", self._op_delegatecall(pc, frame, depth, gas))

        if op == Op.CREATE:
            raise InvalidOpcode("CREATE is not supported by the MiniSol EVM")

        raise InvalidOpcode(f"unhandled opcode {op:#x} at pc={pc}")

    # -- calls -----------------------------------------------------------------

    def _op_call(self, pc: int, frame: CallContext, depth: int, gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        value, value_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        reentrant = target in self._active_addresses
        event = CallEvent(
            pc=pc, address=msg.address, depth=depth, kind="call",
            target=target, value=value, gas=call_gas, reentrant=reentrant,
            target_taints=target_shadow.taints,
            value_taints=value_shadow.taints,
            guarded=frame.caller_checked, index=len(self.trace.calls))
        self.trace.calls.append(event)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        inner = Message(
            address=target, caller=msg.address, origin=msg.origin,
            value=value, data=data, gas=call_gas,
            code=self.world.get_code(target))
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            event.callee_error = result.error
        event.success = result.success
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        stack.push(1 if result.success else 0,
                   Shadow(frozenset({call_result_tag(event.index)})))
        return gas - (call_gas - result.gas_left)

    def _op_delegatecall(self, pc: int, frame: CallContext, depth: int,
                         gas: int) -> int:
        stack = frame.stack
        msg = frame.msg
        call_gas = stack.pop_value()
        target, target_shadow = stack.pop()
        args_off = stack.pop_value()
        args_size = stack.pop_value()
        ret_off = stack.pop_value()
        ret_size = stack.pop_value()

        call_gas = min(call_gas, max(gas - gas // 64, 0))
        data = frame.memory.read(args_off, args_size)
        event = CallEvent(
            pc=pc, address=msg.address, depth=depth, kind="delegatecall",
            target=target, value=0, gas=call_gas,
            target_taints=target_shadow.taints,
            guarded=frame.caller_checked, index=len(self.trace.calls))
        self.trace.calls.append(event)
        frame.made_external_call = True

        snapshot = self.world.snapshot()
        inner = Message(
            address=msg.address, caller=msg.caller, origin=msg.origin,
            value=msg.value, data=data, gas=call_gas,
            code=self.world.get_code(target), is_delegate=True)
        result = self._call(inner, depth + 1)
        if result.success:
            self.world.commit(snapshot)
        else:
            self.world.revert_to(snapshot)
            event.callee_error = result.error
        event.success = result.success
        if ret_size and result.returndata:
            frame.memory.write(ret_off, result.returndata[:ret_size])
        stack.push(1 if result.success else 0,
                   Shadow(frozenset({call_result_tag(event.index)})))
        return gas - (call_gas - result.gas_left)

    # -- branch recording -------------------------------------------------------

    def _record_branch(self, pc: int, address: int, depth: int, cond: int,
                       taken: bool, dest: int, shadow: Shadow) -> None:
        event = BranchEvent(
            pc=pc, address=address, depth=depth, condition=cond, taken=taken,
            dest=dest, taints=shadow.taints,
            dist_true=shadow.dist_true, dist_false=shadow.dist_false)
        self.trace.branches.append(event)
        self.trace.branch_edges.add((address, pc, taken))
        for tag in shadow.taints:
            if is_call_result_tag(tag):
                idx = int(tag.split(":", 1)[1])
                if idx < len(self.trace.calls):
                    self.trace.calls[idx].checked = True


