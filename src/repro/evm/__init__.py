"""A 256-bit stack-machine EVM subset with tracing and taint propagation.

The machine executes the bytecode emitted by :mod:`repro.compiler` and exposes
per-instruction trace hooks that the fuzzer (:mod:`repro.core`) and the bug
oracles (:mod:`repro.oracles`) consume.  Opcode numbering follows the real
Ethereum Virtual Machine so that disassembly and analyses read like analyses
of genuine EVM output.
"""

from repro.evm.opcodes import Op, OPCODE_INFO, is_push, push_width
from repro.evm.machine import Machine, CallContext, ExecutionResult
from repro.evm.trace import (
    Taint,
    TraceEvent,
    BranchEvent,
    CallEvent,
    OverflowEvent,
    StorageEvent,
    SelfDestructEvent,
    ExecutionTrace,
)
from repro.evm.errors import (
    EVMError,
    StackUnderflow,
    StackOverflow,
    InvalidJump,
    OutOfGas,
    InvalidOpcode,
    Revert,
)

__all__ = [
    "Op",
    "OPCODE_INFO",
    "is_push",
    "push_width",
    "Machine",
    "CallContext",
    "ExecutionResult",
    "Taint",
    "TraceEvent",
    "BranchEvent",
    "CallEvent",
    "OverflowEvent",
    "StorageEvent",
    "SelfDestructEvent",
    "ExecutionTrace",
    "EVMError",
    "StackUnderflow",
    "StackOverflow",
    "InvalidJump",
    "OutOfGas",
    "InvalidOpcode",
    "Revert",
]
