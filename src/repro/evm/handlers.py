"""Per-opcode handler functions for the table-dispatch interpreter.

Each handler executes one non-control-flow opcode against a
:class:`~repro.evm.machine.Machine` (passed explicitly — this module never
imports the machine, keeping the dependency graph acyclic:
``opcodes/trace/errors → handlers → analysis → machine``).

Handler signature::

    handler(machine, pc, frame, depth, gas) -> None | ("halt", bytes) | ("gas", int)

``None`` means ordinary fallthrough; ``("halt", returndata)`` ends the
frame successfully; ``("gas", new_gas)`` reports dynamic gas consumption
(the CALL family).  Exceptional halts raise :class:`~repro.evm.errors`
types exactly like the pre-table interpreter did.

Hot-loop discipline: opcode names are baked into the handlers as literal
strings (no ``Op(op).name`` enum construction per event), taint-source
shadows are interned module-level singletons, and merged-taint shadows
reuse :data:`EMPTY_SHADOW` whenever the union is empty.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.evm.errors import InvalidOpcode, Revert, StackUnderflow
from repro.evm.opcodes import Op
from repro.evm.trace import (
    EMPTY_SHADOW,
    BlockStateEvent,
    CompareEvent,
    OverflowEvent,
    SelfDestructEvent,
    Shadow,
    StorageEvent,
    Taint,
    U256_MAX,
    combine_and,
    combine_or,
    comparison_shadow,
    merge_taints,
)

WORD = 1 << 256

#: interned shadows for the taint-source opcodes (one frozenset + Shadow
#: allocation per process instead of one per executed instruction)
BALANCE_SHADOW = Shadow(frozenset({Taint.BALANCE}))
ORIGIN_SHADOW = Shadow(frozenset({Taint.ORIGIN}))
CALLER_SHADOW = Shadow(frozenset({Taint.CALLER}))
CALLVALUE_SHADOW = Shadow(frozenset({Taint.CALLVALUE}))
CALLDATA_SHADOW = Shadow(frozenset({Taint.CALLDATA}))
BLOCK_SHADOW = Shadow(frozenset({Taint.BLOCK}))


#: SHA3 preimages during a campaign are overwhelmingly repeated (storage
#: slot derivation over a handful of keys), so a small LRU in front of the
#: digest pays for itself; bounded to keep long-tail campaigns flat.
_KECCAK_CACHE: OrderedDict[bytes, int] = OrderedDict()
_KECCAK_CACHE_CAPACITY = 1024


def keccak(data: bytes) -> int:
    """Contract-visible hash (sha3-256 stands in for keccak-256 offline)."""
    cached = _KECCAK_CACHE.get(data)
    if cached is not None:
        _KECCAK_CACHE.move_to_end(data)
        return cached
    value = int.from_bytes(hashlib.sha3_256(data).digest(), "big")
    if len(_KECCAK_CACHE) >= _KECCAK_CACHE_CAPACITY:
        _KECCAK_CACHE.popitem(last=False)
    _KECCAK_CACHE[bytes(data)] = value
    return value


def _shadow(taints: frozenset) -> Shadow:
    """Taint-only shadow, interned for the (very common) untainted case."""
    return Shadow(taints) if taints else EMPTY_SHADOW


#: handlers with net-negative or neutral stack effect manipulate the
#: value/shadow lists directly (no push/pop method-call overhead); the
#: underflow message matches :meth:`repro.evm.stack.Stack.pop` exactly
_UNDERFLOW = "pop from empty stack"


# -- arithmetic ---------------------------------------------------------------


def _make_wrapping_arith(name: str, compute):
    """ADD / SUB / MUL: wraps mod 2**256 and records truncation events."""

    def handler(m, pc, frame, depth, gas):
        stack = frame.stack
        values = stack.values
        shadows = stack.shadows
        if len(values) < 2:
            raise StackUnderflow(_UNDERFLOW)
        x = values.pop()
        sx = shadows.pop()
        y = values.pop()
        sy = shadows.pop()
        raw = compute(x, y)
        result = raw % WORD
        if raw != result and m.rec_overflow:
            event = OverflowEvent(
                pc=pc, address=frame.msg.address, depth=depth,
                op_name=name, lhs=x, rhs=y, result=result)
            m.trace.overflows.append(event)
            for deliver in m.sub_overflow:
                deliver(event, m.oracle_ctx)
        values.append(result)
        shadows.append(_shadow(merge_taints(sx, sy)))

    return handler


def _op_div(m, pc, frame, depth, gas):
    stack = frame.stack
    x, sx = stack.pop()
    y, sy = stack.pop()
    stack.push(x // y if y else 0, _shadow(merge_taints(sx, sy)))


def _op_mod(m, pc, frame, depth, gas):
    stack = frame.stack
    x, sx = stack.pop()
    y, sy = stack.pop()
    stack.push(x % y if y else 0, _shadow(merge_taints(sx, sy)))


def _make_signed_divmod(is_div: bool):
    def handler(m, pc, frame, depth, gas):
        stack = frame.stack
        x, sx = stack.pop()
        y, sy = stack.pop()
        sx_v = x - WORD if x >= WORD // 2 else x
        sy_v = y - WORD if y >= WORD // 2 else y
        if sy_v == 0:
            result = 0
        elif is_div:
            result = abs(sx_v) // abs(sy_v) * (1 if sx_v * sy_v > 0 else -1)
        else:
            result = abs(sx_v) % abs(sy_v) * (1 if sx_v >= 0 else -1)
        stack.push(result % WORD, _shadow(merge_taints(sx, sy)))

    return handler


def _make_modular(is_add: bool):
    def handler(m, pc, frame, depth, gas):
        stack = frame.stack
        x, sx = stack.pop()
        y, sy = stack.pop()
        mod, sm = stack.pop()
        if mod == 0:
            result = 0
        elif is_add:
            result = (x + y) % mod
        else:
            result = (x * y) % mod
        stack.push(result, _shadow(merge_taints(sx, sy, sm)))

    return handler


def _op_exp(m, pc, frame, depth, gas):
    stack = frame.stack
    x, sx = stack.pop()
    y, sy = stack.pop()
    stack.push(pow(x, y, WORD), _shadow(merge_taints(sx, sy)))


def _op_signextend(m, pc, frame, depth, gas):
    stack = frame.stack
    b, sb = stack.pop()
    x, sx = stack.pop()
    if b < 31:
        bit = 8 * (b + 1) - 1
        if x & (1 << bit):
            x |= WORD - (1 << (bit + 1))
        else:
            x &= (1 << (bit + 1)) - 1
    stack.push(x % WORD, _shadow(merge_taints(sb, sx)))


# -- comparisons / boolean logic ----------------------------------------------


def _make_comparison(name: str):
    def handler(m, pc, frame, depth, gas):
        stack = frame.stack
        values = stack.values
        shadows = stack.shadows
        if len(values) < 2:
            raise StackUnderflow(_UNDERFLOW)
        x = values.pop()
        sx = shadows.pop()
        y = values.pop()
        sy = shadows.pop()
        taints = merge_taints(sx, sy)
        shadow = comparison_shadow(name, x, y, taints)
        if m.rec_compare:
            event = CompareEvent(
                pc=pc, address=frame.msg.address, depth=depth,
                op_name=name, lhs=x, rhs=y, taints=taints)
            m.trace.compares.append(event)
            for deliver in m.sub_compare:
                deliver(event, m.oracle_ctx)
        if taints and Taint.CALLER in taints:
            frame.caller_checked = True
        values.append(1 if shadow.dist_true == 0 else 0)
        shadows.append(shadow)

    return handler


def _op_iszero(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    x = values.pop()
    sx = shadows.pop()
    if sx.dist_true is None:
        sx = comparison_shadow("EQ", x, 0, sx.taints)
    values.append(0 if x else 1)
    shadows.append(sx.negated())


def _op_and(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    x = values.pop()
    sx = shadows.pop()
    y = values.pop()
    sy = shadows.pop()
    # Boolean AND of two comparison results keeps distance info.
    if sx.dist_true is not None and sy.dist_true is not None:
        shadow = combine_and(sx, sy)
    else:
        shadow = _shadow(merge_taints(sx, sy))
    values.append(x & y)
    shadows.append(shadow)


def _op_or(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    x = values.pop()
    sx = shadows.pop()
    y = values.pop()
    sy = shadows.pop()
    if sx.dist_true is not None and sy.dist_true is not None:
        shadow = combine_or(sx, sy)
    else:
        shadow = _shadow(merge_taints(sx, sy))
    values.append(x | y)
    shadows.append(shadow)


def _op_xor(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    x = values.pop()
    sx = shadows.pop()
    y = values.pop()
    sy = shadows.pop()
    values.append(x ^ y)
    shadows.append(_shadow(merge_taints(sx, sy)))


def _op_not(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    x = values.pop()
    sx = shadows.pop()
    values.append(U256_MAX ^ x)
    shadows.append(_shadow(sx.taints))


def _op_byte(m, pc, frame, depth, gas):
    stack = frame.stack
    i, si = stack.pop()
    x, sx = stack.pop()
    result = (x >> (8 * (31 - i))) & 0xFF if i < 32 else 0
    stack.push(result, _shadow(merge_taints(si, sx)))


def _op_shl(m, pc, frame, depth, gas):
    stack = frame.stack
    shift, ss = stack.pop()
    x, sx = stack.pop()
    result = (x << shift) % WORD if shift < 256 else 0
    stack.push(result, _shadow(merge_taints(ss, sx)))


def _op_shr(m, pc, frame, depth, gas):
    stack = frame.stack
    shift, ss = stack.pop()
    x, sx = stack.pop()
    result = x >> shift if shift < 256 else 0
    stack.push(result, _shadow(merge_taints(ss, sx)))


def _op_sha3(m, pc, frame, depth, gas):
    stack = frame.stack
    offset = stack.pop_value()
    size = stack.pop_value()
    data = frame.memory.read(offset, size)
    taints = frame.memory.range_taints(offset, size)
    stack.push(keccak(data), _shadow(taints))


# -- environment --------------------------------------------------------------


def _op_address(m, pc, frame, depth, gas):
    frame.stack.push(frame.msg.address)


def _op_balance(m, pc, frame, depth, gas):
    target = frame.stack.pop_value()
    frame.stack.push(m.world.get_balance(target), BALANCE_SHADOW)


def _op_origin(m, pc, frame, depth, gas):
    frame.stack.push(frame.msg.origin, ORIGIN_SHADOW)


def _op_caller(m, pc, frame, depth, gas):
    frame.stack.push(frame.msg.caller, CALLER_SHADOW)


def _op_callvalue(m, pc, frame, depth, gas):
    frame.stack.push(frame.msg.value, CALLVALUE_SHADOW)


def _op_calldataload(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    offset = values.pop()
    shadows.pop()
    word = frame.msg.data[offset:offset + 32]
    if len(word) < 32:
        word = word + b"\x00" * (32 - len(word))
    values.append(int.from_bytes(word, "big"))
    shadows.append(CALLDATA_SHADOW)


def _op_calldatasize(m, pc, frame, depth, gas):
    frame.stack.push(len(frame.msg.data))


def _op_codesize(m, pc, frame, depth, gas):
    frame.stack.push(len(frame.msg.code))


def _op_gasprice(m, pc, frame, depth, gas):
    frame.stack.push(1)


def _make_blockstate(name: str, read):
    """TIMESTAMP / NUMBER / COINBASE / DIFFICULTY / GASLIMIT."""

    def handler(m, pc, frame, depth, gas):
        if m.rec_block:
            event = BlockStateEvent(
                pc=pc, address=frame.msg.address, depth=depth, op_name=name)
            m.trace.block_reads.append(event)
            for deliver in m.sub_block:
                deliver(event, m.oracle_ctx)
        frame.stack.push(read(m), BLOCK_SHADOW)

    return handler


def _op_blockhash(m, pc, frame, depth, gas):
    if m.rec_block:
        event = BlockStateEvent(
            pc=pc, address=frame.msg.address, depth=depth,
            op_name="BLOCKHASH")
        m.trace.block_reads.append(event)
        for deliver in m.sub_block:
            deliver(event, m.oracle_ctx)
    height = frame.stack.pop_value()
    value = keccak(height.to_bytes(32, "big")) if height else 0
    frame.stack.push(value, BLOCK_SHADOW)


# -- stack / memory / storage -------------------------------------------------


def _op_pop(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    values.pop()
    stack.shadows.pop()


def _op_mload(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    offset = values.pop()
    shadows.pop()
    value, shadow = frame.memory.load_word(offset)
    values.append(value)
    shadows.append(shadow)


def _op_mstore(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    offset = values.pop()
    shadows.pop()
    value = values.pop()
    shadow = shadows.pop()
    frame.memory.store_word(offset, value, shadow)


def _op_mstore8(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    offset = values.pop()
    shadows.pop()
    value = values.pop()
    shadows.pop()
    frame.memory.store_byte(offset, value)


def _op_sload(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if not values:
        raise StackUnderflow(_UNDERFLOW)
    slot = values.pop()
    shadows.pop()
    addr = frame.msg.address
    value, shadow = m.world.get_storage(addr, slot)
    if m.rec_storage:
        event = StorageEvent(
            pc=pc, address=addr, depth=depth, kind="read",
            slot=slot, value=value)
        m.trace.storage_ops.append(event)
        for deliver in m.sub_storage:
            deliver(event, m.oracle_ctx)
    values.append(value)
    shadows.append(shadow)


def _op_sstore(m, pc, frame, depth, gas):
    stack = frame.stack
    values = stack.values
    shadows = stack.shadows
    if len(values) < 2:
        raise StackUnderflow(_UNDERFLOW)
    slot = values.pop()
    shadows.pop()
    value = values.pop()
    shadow = shadows.pop()
    addr = frame.msg.address
    if not shadow.taints:
        stored = EMPTY_SHADOW
    elif shadow.dist_true is None and shadow.dist_false is None:
        stored = shadow  # already taint-only: no stripping copy needed
    else:
        stored = Shadow(shadow.taints)
    m.world.set_storage(addr, slot, value, stored)
    if m.rec_storage:
        event = StorageEvent(
            pc=pc, address=addr, depth=depth, kind="write",
            slot=slot, value=value,
            after_external_call=frame.made_external_call)
        m.trace.storage_ops.append(event)
        for deliver in m.sub_storage:
            deliver(event, m.oracle_ctx)


def _op_pc(m, pc, frame, depth, gas):
    frame.stack.push(pc)


def _op_msize(m, pc, frame, depth, gas):
    frame.stack.push(len(frame.memory))


def _op_gas(m, pc, frame, depth, gas):
    frame.stack.push(max(gas, 0))


def _make_log(topics: int):
    def handler(m, pc, frame, depth, gas):
        pop = frame.stack.pop
        for _ in range(2 + topics):
            pop()

    return handler


# -- halting ------------------------------------------------------------------


def _op_return(m, pc, frame, depth, gas):
    stack = frame.stack
    offset = stack.pop_value()
    size = stack.pop_value()
    return ("halt", frame.memory.read(offset, size))


def _op_revert(m, pc, frame, depth, gas):
    stack = frame.stack
    offset = stack.pop_value()
    size = stack.pop_value()
    raise Revert(frame.memory.read(offset, size).hex() or "explicit revert")


def _op_invalid(m, pc, frame, depth, gas):
    raise InvalidOpcode(f"INVALID at pc={pc}")


def _op_selfdestruct(m, pc, frame, depth, gas):
    msg = frame.msg
    addr = msg.address
    beneficiary = frame.stack.pop_value()
    if m.rec_selfdestruct:
        event = SelfDestructEvent(
            pc=pc, address=addr, depth=depth,
            beneficiary=beneficiary, caller=msg.caller, origin=msg.origin,
            guarded_by_caller_check=frame.caller_checked)
        m.trace.selfdestructs.append(event)
        for deliver in m.sub_selfdestruct:
            deliver(event, m.oracle_ctx)
    balance = m.world.get_balance(addr)
    if balance:
        m.world.transfer(addr, beneficiary, balance)
    m.world.mark_destroyed(addr)
    return ("halt", b"")


def _op_call(m, pc, frame, depth, gas):
    return ("gas", m._op_call(pc, frame, depth, gas))


def _op_delegatecall(m, pc, frame, depth, gas):
    return ("gas", m._op_delegatecall(pc, frame, depth, gas))


def _op_create(m, pc, frame, depth, gas):
    raise InvalidOpcode("CREATE is not supported by the MiniSol EVM")


def make_unhandled(op: int):
    """Defined-but-unimplemented opcode: defer the error to execution time."""

    def handler(m, pc, frame, depth, gas):
        raise InvalidOpcode(f"unhandled opcode {op:#x} at pc={pc}")

    return handler


#: op byte → handler, for every opcode executed outside the dispatch loop's
#: inlined control-flow cases (PUSH/DUP/SWAP/JUMP/JUMPI/JUMPDEST/STOP)
SIMPLE_HANDLERS: dict[int, object] = {
    Op.ADD: _make_wrapping_arith("ADD", lambda x, y: x + y),
    Op.SUB: _make_wrapping_arith("SUB", lambda x, y: x - y),
    Op.MUL: _make_wrapping_arith("MUL", lambda x, y: x * y),
    Op.DIV: _op_div,
    Op.MOD: _op_mod,
    Op.SDIV: _make_signed_divmod(is_div=True),
    Op.SMOD: _make_signed_divmod(is_div=False),
    Op.ADDMOD: _make_modular(is_add=True),
    Op.MULMOD: _make_modular(is_add=False),
    Op.EXP: _op_exp,
    Op.SIGNEXTEND: _op_signextend,
    Op.LT: _make_comparison("LT"),
    Op.GT: _make_comparison("GT"),
    Op.SLT: _make_comparison("SLT"),
    Op.SGT: _make_comparison("SGT"),
    Op.EQ: _make_comparison("EQ"),
    Op.ISZERO: _op_iszero,
    Op.AND: _op_and,
    Op.OR: _op_or,
    Op.XOR: _op_xor,
    Op.NOT: _op_not,
    Op.BYTE: _op_byte,
    Op.SHL: _op_shl,
    Op.SHR: _op_shr,
    Op.SHA3: _op_sha3,
    Op.ADDRESS: _op_address,
    Op.BALANCE: _op_balance,
    Op.ORIGIN: _op_origin,
    Op.CALLER: _op_caller,
    Op.CALLVALUE: _op_callvalue,
    Op.CALLDATALOAD: _op_calldataload,
    Op.CALLDATASIZE: _op_calldatasize,
    Op.CODESIZE: _op_codesize,
    Op.GASPRICE: _op_gasprice,
    Op.BLOCKHASH: _op_blockhash,
    Op.TIMESTAMP: _make_blockstate(
        "TIMESTAMP", lambda m: m.block.timestamp),
    Op.NUMBER: _make_blockstate("NUMBER", lambda m: m.block.number),
    Op.COINBASE: _make_blockstate("COINBASE", lambda m: m.block.coinbase),
    Op.DIFFICULTY: _make_blockstate(
        "DIFFICULTY", lambda m: m.block.difficulty),
    Op.GASLIMIT: _make_blockstate("GASLIMIT", lambda m: m.block.gas_limit),
    Op.POP: _op_pop,
    Op.MLOAD: _op_mload,
    Op.MSTORE: _op_mstore,
    Op.MSTORE8: _op_mstore8,
    Op.SLOAD: _op_sload,
    Op.SSTORE: _op_sstore,
    Op.PC: _op_pc,
    Op.MSIZE: _op_msize,
    Op.GAS: _op_gas,
    Op.LOG0: _make_log(0),
    Op.LOG1: _make_log(1),
    Op.RETURN: _op_return,
    Op.REVERT: _op_revert,
    Op.INVALID: _op_invalid,
    Op.SELFDESTRUCT: _op_selfdestruct,
    Op.CALL: _op_call,
    Op.DELEGATECALL: _op_delegatecall,
    Op.CREATE: _op_create,
}
