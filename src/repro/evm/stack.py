"""The EVM operand stack with a parallel shadow (taint/distance) stack."""

from __future__ import annotations

from repro.evm.errors import StackOverflow, StackUnderflow
from repro.evm.trace import EMPTY_SHADOW, Shadow

STACK_LIMIT = 1024


class Stack:
    """A 256-bit word stack whose entries carry :class:`Shadow` metadata.

    Values and shadows live in two parallel lists so the hot integer path
    stays a plain ``list`` of ``int``.
    """

    __slots__ = ("values", "shadows")

    def __init__(self) -> None:
        self.values: list[int] = []
        self.shadows: list[Shadow] = []

    def __len__(self) -> int:
        return len(self.values)

    def push(self, value: int, shadow: Shadow = EMPTY_SHADOW) -> None:
        """Push ``value`` (already reduced mod 2**256) with its shadow."""
        if len(self.values) >= STACK_LIMIT:
            raise StackOverflow("stack limit of 1024 exceeded")
        self.values.append(value)
        self.shadows.append(shadow)

    def pop(self) -> tuple[int, Shadow]:
        """Pop and return ``(value, shadow)``."""
        if not self.values:
            raise StackUnderflow("pop from empty stack")
        return self.values.pop(), self.shadows.pop()

    def pop_value(self) -> int:
        """Pop and return only the integer value (shadow discarded)."""
        if not self.values:
            raise StackUnderflow("pop from empty stack")
        self.shadows.pop()
        return self.values.pop()

    def peek(self, depth: int = 0) -> int:
        """Value ``depth`` items below the top (0 = top) without popping."""
        if depth >= len(self.values):
            raise StackUnderflow(f"peek({depth}) on stack of {len(self.values)}")
        return self.values[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: duplicate the n-th item (1 = top) onto the top."""
        if n > len(self.values):
            raise StackUnderflow(f"DUP{n} on stack of {len(self.values)}")
        if len(self.values) >= STACK_LIMIT:
            raise StackOverflow("stack limit of 1024 exceeded")
        self.values.append(self.values[-n])
        self.shadows.append(self.shadows[-n])

    def swap(self, n: int) -> None:
        """SWAPn: swap the top with the (n+1)-th item."""
        if n + 1 > len(self.values):
            raise StackUnderflow(f"SWAP{n} on stack of {len(self.values)}")
        self.values[-1], self.values[-1 - n] = self.values[-1 - n], self.values[-1]
        self.shadows[-1], self.shadows[-1 - n] = self.shadows[-1 - n], self.shadows[-1]
