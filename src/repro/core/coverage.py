"""Branch-coverage accounting for one campaign.

The coverage unit is a basic-block transition: one direction of one JUMPI
(§V-B "the number of basic block transitions covered, which is also referred
to as branch coverage").  The denominator is the compiler-known total over
the runtime code, so percentages are comparable across fuzzers.

The coverage curve is recorded with *bounded* memory: one sample per
execution until ``curve_capacity`` points accumulate, then the buffer is
decimated (every second point dropped) and the recording interval doubles.
A week-long time-budgeted campaign therefore stays O(curve_capacity)
instead of O(executions), while short campaigns keep their exact
one-point-per-execution curves and :meth:`sample_curve` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.artifacts import CompiledContract
from repro.evm.trace import ExecutionTrace

#: default bound on stored curve points; far above any iteration-budgeted
#: bench campaign, so their curves are bit-identical to unbounded recording
DEFAULT_CURVE_CAPACITY = 4096


@dataclass
class CoverageTracker:
    """Covered JUMPI directions for one deployed contract."""

    artifact: CompiledContract
    address: int
    covered: set = field(default_factory=set)   # (pc, taken)
    #: (cumulative executed steps, coverage fraction) samples
    curve: list = field(default_factory=list)
    total_steps: int = 0
    curve_capacity: int = DEFAULT_CURVE_CAPACITY
    #: executions observed (recorded or skipped by the interval)
    _samples_seen: int = 0
    #: record every k-th sample; doubles on each decimation
    _record_interval: int = 1

    @property
    def total(self) -> int:
        return self.artifact.total_branches

    def add_trace(self, trace: ExecutionTrace,
                  step_multiplier: float = 1.0) -> int:
        """Merge one execution; returns the number of newly covered edges."""
        new = 0
        for address, pc, taken in trace.branch_edges:
            if address != self.address:
                continue
            edge = (pc, taken)
            if edge not in self.covered:
                self.covered.add(edge)
                new += 1
        self.total_steps += int(trace.steps * step_multiplier)
        self._samples_seen += 1
        if self._samples_seen % self._record_interval == 0:
            self.curve.append((self.total_steps, self.coverage()))
            if len(self.curve) >= self.curve_capacity:
                # decimate keeping samples aligned with the doubled
                # interval (sample numbers divisible by the new interval)
                self.curve = self.curve[1::2]
                self._record_interval *= 2
        return new

    def coverage(self) -> float:
        """Covered fraction in [0, 1]."""
        if self.total == 0:
            return 1.0
        return min(1.0, len(self.covered) / self.total)

    def uncovered_targets(self) -> list:
        """Branch directions seen statically but not yet covered, as
        (address, pc, taken) targets for distance feedback."""
        out = []
        for pc in self.artifact.branch_info:
            for taken in (True, False):
                if (pc, taken) not in self.covered:
                    out.append((self.address, pc, taken))
        return out

    def sample_curve(self, points: int = 20) -> list:
        """Down-sample the curve to ``points`` (for plotting/benches)."""
        if not self.curve:
            return []
        if len(self.curve) <= points:
            return list(self.curve)
        step = len(self.curve) / points
        return [self.curve[min(len(self.curve) - 1, int(i * step))]
                for i in range(points)] + [self.curve[-1]]

    # -- checkpoint serialization ---------------------------------------------

    def state_dict(self) -> dict:
        return {
            "covered": sorted([pc, taken] for pc, taken in self.covered),
            "curve": [[int(steps), float(cov)] for steps, cov in self.curve],
            "total_steps": self.total_steps,
            "samples_seen": self._samples_seen,
            "record_interval": self._record_interval,
        }

    def restore_state(self, data: dict) -> None:
        self.covered = {(int(pc), bool(taken))
                        for pc, taken in data.get("covered", ())}
        self.curve = [(int(steps), float(cov))
                      for steps, cov in data.get("curve", ())]
        self.total_steps = int(data.get("total_steps", 0))
        self._samples_seen = int(data.get("samples_seen", len(self.curve)))
        self._record_interval = int(data.get("record_interval", 1))
