"""Branch-coverage accounting for one campaign.

The coverage unit is a basic-block transition: one direction of one JUMPI
(§V-B "the number of basic block transitions covered, which is also referred
to as branch coverage").  The denominator is the compiler-known total over
the runtime code, so percentages are comparable across fuzzers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.artifacts import CompiledContract
from repro.evm.trace import ExecutionTrace


@dataclass
class CoverageTracker:
    """Covered JUMPI directions for one deployed contract."""

    artifact: CompiledContract
    address: int
    covered: set = field(default_factory=set)   # (pc, taken)
    #: (cumulative executed steps, coverage fraction) samples
    curve: list = field(default_factory=list)
    total_steps: int = 0

    @property
    def total(self) -> int:
        return self.artifact.total_branches

    def add_trace(self, trace: ExecutionTrace,
                  step_multiplier: float = 1.0) -> int:
        """Merge one execution; returns the number of newly covered edges."""
        new = 0
        for address, pc, taken in trace.branch_edges:
            if address != self.address:
                continue
            edge = (pc, taken)
            if edge not in self.covered:
                self.covered.add(edge)
                new += 1
        self.total_steps += int(trace.steps * step_multiplier)
        self.curve.append((self.total_steps, self.coverage()))
        return new

    def coverage(self) -> float:
        """Covered fraction in [0, 1]."""
        if self.total == 0:
            return 1.0
        return min(1.0, len(self.covered) / self.total)

    def uncovered_targets(self) -> list:
        """Branch directions seen statically but not yet covered, as
        (address, pc, taken) targets for distance feedback."""
        out = []
        for pc in self.artifact.branch_info:
            for taken in (True, False):
                if (pc, taken) not in self.covered:
                    out.append((self.address, pc, taken))
        return out

    def sample_curve(self, points: int = 20) -> list:
        """Down-sample the curve to ``points`` (for plotting/benches)."""
        if not self.curve:
            return []
        if len(self.curve) <= points:
            return list(self.curve)
        step = len(self.curve) / points
        return [self.curve[min(len(self.curve) - 1, int(i * step))]
                for i in range(points)] + [self.curve[-1]]
