"""Mask-guided seed mutation (§IV-B, Algorithms 1 and 2).

A test input is a byte stream (argument words + value word, see
:class:`~repro.core.seeds.TxCall`).  A mutation is a tuple ``(x, n)`` with
``x ∈ {O, I, R, D}`` — overwrite, insert, replace-with-interesting, delete —
applied at a position.  The *mask* marks, per position, which mutation types
preserve the property that made the seed valuable (still hits its nested
branch, or still improves a branch distance); positions/types outside the
mask are never mutated by the masked mutator, which is exactly
``OKTOMUTATE`` in Algorithm 1.

Probing every (position, type) pair costs one execution each (the paper's
Algorithm 2 does exactly that); pure-Python EVM runs make that expensive, so
the implementation probes a bounded sample of positions and lets unprobed
positions inherit the nearest probe's verdict — an explicitly documented
cost-control approximation (DESIGN.md §5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.core.inputs import INTERESTING_UINTS
from repro.core.seeds import TxCall


class MutationType(Enum):
    """The four mutation operators of §IV-B."""

    OVERWRITE = "O"
    INSERT = "I"
    REPLACE = "R"
    DELETE = "D"


ALL_MUTATIONS = tuple(MutationType)

#: single-byte interesting values used by REPLACE
_INTERESTING_BYTES = (0x00, 0x01, 0x7F, 0x80, 0xFF)


def mutate_stream(stream: bytes, mutation: MutationType, pos: int, n: int,
                  rng: random.Random) -> bytes:
    """Apply ``mutation`` of width ``n`` at ``pos`` (Algorithm 2's MUTATE)."""
    if not stream:
        stream = b"\x00" * 32
    pos = max(0, min(pos, len(stream) - 1))
    n = max(1, min(n, len(stream) - pos))

    if mutation is MutationType.OVERWRITE:
        patch = bytes(rng.randrange(256) for _ in range(n))
        return stream[:pos] + patch + stream[pos + n:]
    if mutation is MutationType.INSERT:
        patch = bytes(rng.randrange(256) for _ in range(n))
        return stream[:pos] + patch + stream[pos:]
    if mutation is MutationType.REPLACE:
        if n >= 32 and pos % 32 == 0:
            word = rng.choice(INTERESTING_UINTS).to_bytes(32, "big")
            return stream[:pos] + word + stream[pos + 32:]
        patch = bytes(rng.choice(_INTERESTING_BYTES) for _ in range(n))
        return stream[:pos] + patch + stream[pos + n:]
    # DELETE
    return stream[:pos] + stream[pos + n:]


@dataclass
class MutationMask:
    """Which (position, mutation-type) pairs are allowed for one seed stream."""

    length: int
    allowed: dict = field(default_factory=dict)  # pos -> set[MutationType]
    _pairs: list | None = field(default=None, init=False, repr=False,
                                compare=False)

    def allow(self, pos: int, mutation: MutationType) -> None:
        self.allowed.setdefault(pos, set()).add(mutation)
        self._pairs = None

    def ok_to_mutate(self, pos: int, mutation: MutationType) -> bool:
        """Algorithm 1's OKTOMUTATE."""
        return mutation in self.allowed.get(pos, ())

    def allowed_pairs(self) -> list:
        # sorted: MutationType hashes by object id, so raw set order would
        # vary with process memory layout and break cross-process
        # reproducibility of campaigns (the orchestrator's determinism
        # guarantee); cached because masks are reused across iterations
        if self._pairs is None:
            self._pairs = [
                (pos, mutation)
                for pos, mutations in self.allowed.items()
                for mutation in sorted(mutations, key=lambda m: m.value)]
        return self._pairs

    # -- checkpoint serialization ---------------------------------------------

    def to_dict(self) -> dict:
        """JSON form; ``allowed`` keeps its insertion order because
        :meth:`allowed_pairs` iterates it (mutation-choice determinism)."""
        return {
            "length": self.length,
            "allowed": [[pos, sorted(m.value for m in mutations)]
                        for pos, mutations in self.allowed.items()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutationMask":
        mask = cls(length=int(data["length"]))
        for pos, values in data.get("allowed", ()):
            mask.allowed[int(pos)] = {MutationType(v) for v in values}
        return mask

    def spread(self, length: int) -> None:
        """Let unprobed positions inherit the nearest probed verdict."""
        if not self.allowed:
            return
        self._pairs = None
        probed = sorted(self.allowed)
        for pos in range(length):
            if pos in self.allowed:
                continue
            nearest = min(probed, key=lambda p: abs(p - pos))
            self.allowed[pos] = set(self.allowed[nearest])


def compute_mask(stream: bytes, probe, rng: random.Random,
                 probe_limit: int = 24) -> MutationMask:
    """Algorithm 2: approximate the critical input regions.

    ``probe(mutated_stream) -> bool`` must return True when the mutated
    input still hits the target nested branch or still shrinks the distance
    to the uncovered branch (lines 7/10/13/16).  Each probe call is expected
    to execute the seed — the caller accounts for that energy.
    """
    length = max(1, len(stream))
    mask = MutationMask(length=length)
    n = rng.randint(1, max(1, length // 4))
    positions = _sample_positions(length, probe_limit)
    for pos in positions:
        for mutation in ALL_MUTATIONS:
            mutated = mutate_stream(stream, mutation, pos, n, rng)
            if probe(mutated):
                mask.allow(pos, mutation)
    mask.spread(length)
    return mask


def _spread_sample(seq: list, k: int) -> list:
    """Up to ``k`` elements of ``seq``, evenly spaced, first and last kept."""
    if k <= 0:
        return []
    if k >= len(seq):
        return list(seq)
    if k == 1:
        return [seq[0]]
    last = len(seq) - 1
    return sorted({seq[i * last // (k - 1)] for i in range(k)})


def _sample_positions(length: int, limit: int) -> list:
    """Evenly spread probe positions, always including word boundaries.

    Streams are sequences of 32-byte ABI words, so aligned word starts are
    the highest-value probe points (each one decides a whole argument's
    mutability): every boundary is probed while the budget allows, and the
    remaining budget is spread evenly over the interior bytes.  When there
    are more words than budget, the boundaries themselves are sampled
    evenly across the whole stream (never truncated from the front), so
    the tail arguments of long calldata stay probed.
    """
    if length <= limit:
        return list(range(length))
    boundaries = list(range(0, length, 32))
    if len(boundaries) >= limit:
        return _spread_sample(boundaries, limit)
    interior = _spread_sample(
        [p for p in range(length) if p % 32 != 0],
        limit - len(boundaries))
    return sorted(set(boundaries) | set(interior))


class SeedMutator:
    """Input-level mutation: AFL-style (baselines) or mask-guided (MuFuzz).

    ``constants`` is the vulnerability surface's mutation dictionary
    (PUSH immediates plus guard-comparison constants harvested by the
    abstract interpreter); the word-level mutations draw from it like
    AFL's ``-x`` dictionary mode.
    """

    def __init__(self, rng: random.Random, constants=()) -> None:
        self.rng = rng
        self.constants = tuple(constants)

    # -- AFL-style (sFuzz / ConFuzzius / Smartian / IR-Fuzz) ---------------------

    def afl_mutate(self, call: TxCall) -> TxCall:
        """One random mutation: byte-level op, word arithmetic, or a
        dictionary word splice."""
        stream = call.to_stream()
        roll = self.rng.random()
        if roll < 0.25:
            return call.apply_stream(self._word_arith(stream))
        if roll < 0.4 and self.constants:
            return call.apply_stream(self._word_dictionary(stream))
        mutation = self.rng.choice(ALL_MUTATIONS)
        pos = self.rng.randrange(max(1, len(stream)))
        n = self.rng.choice((1, 2, 4, 8, 32))
        return call.apply_stream(
            mutate_stream(stream, mutation, pos, n, self.rng))

    def _word_arith(self, stream: bytes) -> bytes:
        """AFL-style arithmetic: nudge one aligned word by a small delta."""
        if len(stream) < 32:
            return stream
        word_index = self.rng.randrange(len(stream) // 32)
        offset = word_index * 32
        value = int.from_bytes(stream[offset:offset + 32], "big")
        delta = self.rng.choice((1, -1, 2, -2, 16, -16, 256, -256))
        value = (value + delta) % (1 << 256)
        return (stream[:offset] + value.to_bytes(32, "big")
                + stream[offset + 32:])

    def _word_dictionary(self, stream: bytes) -> bytes:
        """Splice a harvested program constant into one aligned word."""
        if len(stream) < 32:
            return stream
        word_index = self.rng.randrange(len(stream) // 32)
        offset = word_index * 32
        value = self.rng.choice(self.constants) % (1 << 256)
        return (stream[:offset] + value.to_bytes(32, "big")
                + stream[offset + 32:])

    # -- mask-guided (MuFuzz) ------------------------------------------------------

    def masked_mutate(self, call: TxCall, mask: MutationMask) -> TxCall | None:
        """One mutation restricted to the mask; None when nothing is allowed
        (the whole input is critical — do not mutate it).

        The mutation width is clamped to the contiguous allowed span from
        the chosen position, so masked-out (critical) bytes are never
        touched — a strictly stronger guarantee than Algorithm 1's
        position-only OKTOMUTATE check.
        """
        pairs = mask.allowed_pairs()
        if not pairs:
            return None
        pos, mutation = self.rng.choice(pairs)
        stream = call.to_stream()
        span = 0
        while mask.ok_to_mutate(pos + span, mutation) and \
                pos + span < len(stream):
            span += 1
        n = min(self.rng.choice((1, 2, 4, 8, 32)), max(span, 1))
        return call.apply_stream(
            mutate_stream(stream, mutation, pos, n, self.rng))
