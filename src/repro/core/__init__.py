"""MuFuzz core: the sequence-aware, mask-guided, energy-adaptive fuzzer.

The public entry point is :class:`~repro.core.fuzzer.Fuzzer` configured by a
:class:`~repro.core.config.FuzzerConfig`; ``mufuzz_config()`` yields the
paper's full system, and the named baseline configs
(:func:`~repro.core.config.sfuzz_config`, ...) re-use the same campaign loop
with individual strategies swapped out — exactly how the paper's ablation
(§V-D) and baseline comparisons are organized.
"""

from repro.core.config import (
    FuzzerConfig,
    PRESET_CONFIGS,
    mufuzz_config,
    preset_config,
    sfuzz_config,
    confuzzius_config,
    irfuzz_config,
    smartian_config,
)
from repro.core.seeds import Seed, SeedQueue, TxCall
from repro.core.sequence import SequenceGenerator
from repro.core.masking import MutationMask, MutationType, SeedMutator
from repro.core.energy import EnergyScheduler
from repro.core.coverage import CoverageTracker
from repro.core.campaign import CampaignResult
from repro.core.fuzzer import Fuzzer, fuzz_contract
from repro.core.replay import (
    ReplayOutcome,
    replay_finding,
    replay_findings,
    replay_record,
)

__all__ = [
    "FuzzerConfig",
    "PRESET_CONFIGS",
    "preset_config",
    "mufuzz_config",
    "sfuzz_config",
    "confuzzius_config",
    "irfuzz_config",
    "smartian_config",
    "Seed",
    "SeedQueue",
    "TxCall",
    "SequenceGenerator",
    "MutationMask",
    "MutationType",
    "SeedMutator",
    "EnergyScheduler",
    "CoverageTracker",
    "CampaignResult",
    "Fuzzer",
    "ReplayOutcome",
    "fuzz_contract",
    "replay_finding",
    "replay_findings",
    "replay_record",
]
