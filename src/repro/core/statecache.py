"""Prefix-state caching — the paper's §VI future-work optimization.

MuFuzz (like sFuzz and Smartian) re-executes every transaction sequence
from a fresh state each round; §VI names the promising improvement: *"not
to re-execute the previous transactions, but to move directly to some
intermediate state"*.  This module implements exactly that: chain states
are memoized keyed by the executed transaction prefix, and a new seed that
shares a prefix with an earlier one forks the cached state and replays only
its suffix.

Correctness notes:

* a cache key covers everything that determines a transaction's effect —
  function, arguments, msg.value, and sender — plus all preceding keys, so
  a hit guarantees a bit-identical world state (block numbers advance
  deterministically per transaction);
* the trace of the skipped prefix is replayed into the seed's merged trace
  (its coverage still belongs to the seed) but with ``steps`` zeroed — the
  whole point is that the skipped work costs no execution time;
* cached entries are point-in-time deep forks (``Chain.fork``), so they are
  unaffected by the fuzzer's journal-based ``reset_to_base`` of the base
  chain: a cache *miss* resets the base chain in place, while a *hit*
  executes on a private fork of the memoized state — the base mark is never
  copied into either.

Enabled via ``FuzzerConfig.use_state_cache``; off by default so the
benchmarked system stays faithful to the published design.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.chain.blockchain import Chain
from repro.core.seeds import TxCall
from repro.evm.trace import ExecutionTrace


def call_key(call: TxCall) -> tuple:
    """The cache-key component of one transaction."""
    return (call.function, tuple(call.args), call.value, call.sender)


def _copy_trace(trace: ExecutionTrace) -> ExecutionTrace:
    clone = ExecutionTrace()
    clone.merge(trace)
    return clone


class PrefixStateCache:
    """LRU cache: transaction-prefix key → (chain state, merged trace)."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._store: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.steps_saved = 0

    def __len__(self) -> int:
        return len(self._store)

    # -- lookup ---------------------------------------------------------------

    def longest_prefix(self, calls) -> tuple:
        """Longest cached prefix of ``calls``.

        Returns ``(depth, chain_fork, trace_copy)`` where ``depth`` is the
        number of leading transactions that can be skipped (0 = no hit).
        The returned chain is a private fork; the trace is a private copy
        with ``steps`` zeroed.
        """
        keys = tuple(call_key(c) for c in calls)
        for depth in range(len(keys), 0, -1):
            entry = self._store.get(keys[:depth])
            if entry is None:
                continue
            chain, trace = entry
            self._store.move_to_end(keys[:depth])
            self.hits += 1
            self.steps_saved += trace.steps
            replay = _copy_trace(trace)
            replay.steps = 0
            return depth, chain.fork(), replay
        self.misses += 1
        return 0, None, None

    # -- insertion --------------------------------------------------------------

    def insert(self, calls, upto: int, chain: Chain,
               trace: ExecutionTrace) -> None:
        """Memoize the state after executing ``calls[:upto]``."""
        if upto == 0:
            return
        key = tuple(call_key(c) for c in calls[:upto])
        if key in self._store:
            self._store.move_to_end(key)
            return
        self._store[key] = (chain.fork(), _copy_trace(trace))
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def stats(self) -> dict:
        """Cache effectiveness counters (for the ablation bench)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "steps_saved": self.steps_saved,
            "entries": len(self._store),
        }
