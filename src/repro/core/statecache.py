"""Prefix-state snapshot tree — the paper's §VI future-work optimization.

MuFuzz (like sFuzz and Smartian) re-executes every transaction sequence
from a fresh state each round; §VI names the promising improvement: *"not
to re-execute the previous transactions, but to move directly to some
intermediate state"*.  This module memoizes post-transaction chain states
so a seed that shares a prefix with earlier executions skips straight to
the prefix's end state and runs only its suffix.

The first implementation was a flat LRU of deep ``Chain.fork()`` copies:
every transaction of every seed paid a full copy of the world on insert,
every hit paid another on restore, and lookups rebuilt O(depth²) tuple
keys.  This rewrite stores a **snapshot tree** instead:

* **Tree keyed by call keys.**  Nodes hang off their parent by the one
  transaction's :func:`call_key`; the fuzzer walks the tree *alongside*
  the executing sequence, one O(1) child lookup per transaction — the
  incremental equivalent of a rolling hash over the prefix, except the
  exact tuple key makes collisions (and ``PYTHONHASHSEED`` sensitivity)
  structurally impossible.  No prefix tuple is ever rebuilt.
* **Journal redo deltas, not world copies.**  A materialized node stores
  its transaction's receipt plus the *forward* delta captured from the
  world journal segment the transaction committed
  (:meth:`~repro.chain.state.WorldState.capture_redo`).  A hit restores
  by ``reset_to_base()`` and then :meth:`~repro.chain.blockchain.Chain.
  replay_delta` down the path — O(slots the prefix touched), with the
  replayed deltas journaled so the *next* reset undoes them too.  Neither
  path calls ``WorldState.fork()``.
* **Selective insertion.**  A first-seen prefix costs one dict entry (a
  skeleton node counting visits); the delta is captured only when the
  prefix *recurs*, so cold prefixes never pay for memoization.  Hits
  begin on the third visit.
* **Depth-weighted leaf-first LRU.**  Every hit or materialization
  refreshes the whole root→node path deepest-first, so a parent is
  always at least as recent as any materialized descendant — which means
  the LRU front is always a safe victim: evicting it can never strand a
  materialized child below a missing parent.  Evicted nodes fall back to
  skeletons (their visit counts survive, so hot prefixes re-materialize
  on their next recurrence).

The cache is a pure performance layer: replayed prefixes keep their
recorded steps, their transactions still consume campaign budget, and
their trace events are re-dispatched through the oracle bus
(:meth:`~repro.oracles.bus.OracleBus.replay_transaction`) — campaign
results are byte-identical with the cache on or off, which is why
``FuzzerConfig.use_state_cache`` now defaults to True and checkpoints
simply rebuild the cache cold on resume.
"""

from __future__ import annotations

from collections import OrderedDict
from weakref import WeakSet

from repro.core.seeds import TxCall
from repro.telemetry import metrics as _metrics


def call_key(call: TxCall) -> tuple:
    """The cache-key component of one transaction (everything that
    determines its effect)."""
    return (call.function, tuple(call.args), call.value, call.sender)


# -- telemetry ---------------------------------------------------------------
#
# Counters are module-level cumulative totals mirrored into the registry by
# a snapshot-time collector (Counter.set_total), so the hot path pays
# nothing when telemetry is disabled and diff_snapshots still sees
# monotonic per-process values even as cache instances come and go.
# Gauges report live sizes summed over the instances still alive.

_T_HITS = _metrics.counter("statecache.hits")
_T_MISSES = _metrics.counter("statecache.misses")
_T_STEPS_SAVED = _metrics.counter("statecache.steps_saved")
_T_TXS_SKIPPED = _metrics.counter("statecache.transactions_skipped")
_T_NODES = _metrics.gauge("statecache.nodes")
_T_MATERIALIZED = _metrics.gauge("statecache.materialized")
_T_BYTES = _metrics.gauge("statecache.bytes_estimate")

_hits_total = 0
_misses_total = 0
_steps_saved_total = 0
_txs_skipped_total = 0
_live_caches: WeakSet = WeakSet()


def _collect_statecache() -> None:
    _T_HITS.set_total(_hits_total)
    _T_MISSES.set_total(_misses_total)
    _T_STEPS_SAVED.set_total(_steps_saved_total)
    _T_TXS_SKIPPED.set_total(_txs_skipped_total)
    nodes = materialized = size = 0
    for cache in _live_caches:
        nodes += cache.node_count
        materialized += cache.materialized_count
        size += cache.bytes_estimate()
    _T_NODES.set_value(nodes)
    _T_MATERIALIZED.set_value(materialized)
    _T_BYTES.set_value(size)


_metrics.register_collector(_collect_statecache)

#: rough per-object costs for the bytes-estimate gauge (node shell,
#: one redo op, one recorded trace event)
_NODE_BYTES = 200
_REDO_OP_BYTES = 96
_EVENT_BYTES = 72


class _Node:
    """One tree node = one transaction extending its parent's prefix.

    A *skeleton* node (``receipt is None``) only counts visits; a
    *materialized* one also holds the transaction's receipt (whose trace
    is shared, never copied) and the journal redo delta from the parent's
    world state to its own.
    """

    __slots__ = ("key", "parent", "depth", "children", "visits",
                 "receipt", "redo")

    def __init__(self, key, parent) -> None:
        self.key = key
        self.parent = parent
        self.depth = parent.depth + 1 if parent is not None else 0
        self.children: dict = {}
        self.visits = 0
        self.receipt = None
        self.redo: tuple = ()


class PrefixStateCache:
    """Snapshot tree of memoized transaction-prefix states."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("state-cache capacity must be >= 1")
        self.capacity = capacity
        #: total tree-size bound; skeletons beyond it are pruned oldest-first
        self.max_nodes = max(8 * capacity, 256)
        self.root = _Node(None, None)
        #: materialized nodes, stale → fresh (path-touch keeps every
        #: parent fresher than its children, so the front is always a
        #: materialized leaf — see the module docstring)
        self._lru: OrderedDict = OrderedDict()
        #: prunable skeleton leaves in creation order
        self._skeletons: OrderedDict = OrderedDict()
        self._node_count = 0
        self.hits = 0
        self.misses = 0
        self.steps_saved = 0
        self.transactions_skipped = 0
        _live_caches.add(self)

    def __len__(self) -> int:
        """Number of memoized (materialized) prefix states."""
        return len(self._lru)

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def materialized_count(self) -> int:
        return len(self._lru)

    # -- lookup ---------------------------------------------------------------

    def match(self, calls) -> list:
        """The longest materialized prefix of ``calls``, as the root→leaf
        node path (empty = miss).  One dict probe per transaction."""
        global _hits_total, _misses_total, _steps_saved_total, \
            _txs_skipped_total
        node = self.root
        path = []
        for call in calls:
            child = node.children.get(call_key(call))
            if child is None or child.receipt is None:
                break
            path.append(child)
            node = child
        if not path:
            self.misses += 1
            _misses_total += 1
            return path
        saved = sum(n.receipt.trace.steps for n in path)
        self.hits += 1
        self.steps_saved += saved
        self.transactions_skipped += len(path)
        _hits_total += 1
        _steps_saved_total += saved
        _txs_skipped_total += len(path)
        self._touch(path[-1])
        return path

    def restore(self, chain, path) -> None:
        """Fast-forward ``chain`` (already reset to its base) through the
        matched prefix by replaying each node's redo delta."""
        for node in path:
            chain.replay_delta(node.redo, node.receipt)

    # -- insertion --------------------------------------------------------------

    def note(self, node, call, chain, receipt, journal_mark) -> "_Node":
        """Record that ``call`` just executed, extending prefix ``node``
        (None = sequence start).  Returns the child node — the walk state
        the fuzzer threads through its transaction loop.

        Selective insertion: the first visit creates a skeleton; the
        second captures the transaction's journal segment
        (``journal_mark`` is the world's journal length from just before
        execution) and materializes the node.
        """
        parent = self.root if node is None else node
        child = parent.children.get(call_key(call))
        if child is None:
            child = _Node(call_key(call), parent)
            parent.children[child.key] = child
            self._node_count += 1
            self._skeletons[child] = None
            if self._node_count > self.max_nodes:
                self._prune_skeletons(protect=child)
        child.visits += 1
        if child.receipt is None and child.visits >= 2 \
                and (parent is self.root or parent.receipt is not None):
            child.receipt = receipt
            child.redo = chain.world.capture_redo(journal_mark)
            self._skeletons.pop(child, None)
            self._lru[child] = None
            self._touch(child)
            while len(self._lru) > self.capacity:
                victim, _ = self._lru.popitem(last=False)
                self._dematerialize(victim)
        return child

    # -- eviction ---------------------------------------------------------------

    def _touch(self, node) -> None:
        """Refresh the root→node path, deepest first, so every ancestor
        ends up strictly fresher than ``node`` (the leaf-first LRU
        invariant)."""
        lru = self._lru
        while node is not None and node.parent is not None:
            lru.move_to_end(node)
            node = node.parent

    def _dematerialize(self, node) -> None:
        """Drop a node's memoized state but keep its tree position and
        visit count, so a still-hot prefix re-materializes on its next
        recurrence."""
        node.receipt = None
        node.redo = ()
        if not node.children:
            self._skeletons[node] = None

    def _prune_skeletons(self, protect) -> None:
        """Bound total tree size: drop the oldest childless skeleton
        leaves (never ``protect`` — the node the live walk is on)."""
        while self._node_count > self.max_nodes and self._skeletons:
            node, _ = self._skeletons.popitem(last=False)
            if node is protect:
                self._skeletons[node] = None
                if len(self._skeletons) == 1:
                    break
                continue
            if node.children or node.receipt is not None:
                continue  # became an interior node: structural, keep it
            del node.parent.children[node.key]
            self._node_count -= 1

    # -- introspection -----------------------------------------------------------

    def bytes_estimate(self) -> int:
        """Rough resident size of the memoized state (nodes, redo ops,
        and the recorded trace events the cached receipts keep alive)."""
        size = self._node_count * _NODE_BYTES
        for node in self._lru:
            trace = node.receipt.trace
            events = (len(trace.branches) + len(trace.compares)
                      + len(trace.calls) + len(trace.overflows)
                      + len(trace.storage_ops) + len(trace.selfdestructs)
                      + len(trace.block_reads) + len(trace.ether_received))
            size += len(node.redo) * _REDO_OP_BYTES + events * _EVENT_BYTES
        return size

    def stats(self) -> dict:
        """Cache effectiveness counters (ablation bench, heartbeats)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "steps_saved": self.steps_saved,
            "transactions_skipped": self.transactions_skipped,
            "nodes": self._node_count,
            "materialized": len(self._lru),
            "bytes_estimate": self.bytes_estimate(),
        }
