"""Typed transaction-input generation.

Initial seeds need plausible argument values per ABI type; mutation then
refines them.  The value pools mirror AFL's "interesting values" plus the
ether denominations the paper's benchmarks use (e.g. ``88 finney``).
"""

from __future__ import annotations

import random

from repro.compiler.abi import FunctionABI
from repro.lang.types import Type

U256_MAX = (1 << 256) - 1

#: AFL-style interesting integers plus ether denominations.
INTERESTING_UINTS = (
    0, 1, 2, 7, 8, 16, 31, 32, 64, 100, 127, 128, 255, 256, 1024,
    10 ** 12,               # 1 szabo
    88 * 10 ** 15,          # 88 finney (Fig. 4's magic constant)
    10 ** 15, 10 ** 18,     # 1 finney / 1 ether
    100 * 10 ** 18,         # 100 ether (Crowdsale goal)
    U256_MAX, U256_MAX - 1, 1 << 128, (1 << 255),
)

#: msg.value candidates for payable functions.
INTERESTING_VALUES = (
    0, 1, 10 ** 12, 88 * 10 ** 15, 10 ** 15, 10 ** 18, 5 * 10 ** 18,
    100 * 10 ** 18,
)


class InputGenerator:
    """Draws typed argument values and msg.value for transactions.

    ``extra_constants`` carries the vulnerability surface's mutation
    dictionary: the contract's wide PUSH immediates plus the constants
    its guards compare against tainted values — the standard trick (used
    by sFuzz, ConFuzzius, and Smartian alike) that makes
    ``require(x == MAGIC)`` gates crossable.
    """

    def __init__(self, rng: random.Random, account_pool,
                 extra_constants=(), sender_weights=None) -> None:
        self.rng = rng
        self.accounts = list(account_pool)
        self.constants = tuple(extra_constants)
        self.sender_weights = (list(sender_weights) if sender_weights
                               else [1.0] * len(self.accounts))

    def value_for_type(self, abi_type: Type) -> int:
        """One random value of the given MiniSol type."""
        kind = abi_type.kind
        if kind == "bool":
            return self.rng.randint(0, 1)
        if kind == "address":
            # Address arguments skew toward the adversarial agents: a
            # recipient that re-enters and one whose fallback reverts are
            # the interesting corner cases for call-related oracles.
            return self.rng.choices(self.accounts,
                                    weights=self.sender_weights, k=1)[0]
        if kind == "bytes32":
            return self.rng.getrandbits(256)
        # uint / int
        roll = self.rng.random()
        if roll < 0.25 and self.constants:
            base = self.rng.choice(self.constants)
            jitter = self.rng.choice((0, 0, 0, 1, -1))
            return max(0, base + jitter)
        if roll < 0.6:
            return self.rng.choice(INTERESTING_UINTS)
        if roll < 0.85:
            return self.rng.randint(0, 10 ** 21)
        return self.rng.getrandbits(256)

    def args_for(self, fn: FunctionABI) -> list:
        """A full argument vector for ``fn``."""
        return [self.value_for_type(t) for t in fn.inputs]

    def call_value_for(self, fn: FunctionABI) -> int:
        """A msg.value: zero unless the function is payable."""
        if not fn.payable:
            return 0
        if self.rng.random() < 0.7:
            return self.rng.choice(INTERESTING_VALUES)
        return self.rng.randint(0, 10 ** 19)

    def sender(self) -> int:
        """A transaction sender drawn from the (weighted) account pool —
        fuzzing harnesses bias toward the attacker account."""
        return self.rng.choices(self.accounts,
                                weights=self.sender_weights, k=1)[0]
