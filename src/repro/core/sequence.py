"""Sequence-aware transaction ordering and mutation (§IV-A).

The generator derives a base order from the write→read dependency graph of
state variables (transaction T1 before T2 when T1 writes what T2 reads), and
the *sequence mutation* duplicates a function in the sequence when it has a
read-after-write self-dependency on a state variable that some branch
condition reads — the rule that turns ``[invest, refund, withdraw]`` into
``[invest, refund, invest, withdraw]`` for the Crowdsale contract.

Baseline orderings (random for sFuzz, plain data-flow for
ConFuzzius/Smartian, prolongation for IR-Fuzz) live here too so every
fuzzer shares one implementation surface.
"""

from __future__ import annotations

import random

from repro.analysis.dataflow import ContractDataflow
from repro.core import config as cfg
from repro.lang import ast_nodes as ast


class SequenceGenerator:
    """Produces and mutates function-name sequences for one contract."""

    def __init__(self, contract: ast.ContractDef | None,
                 dataflow: ContractDataflow, rng: random.Random,
                 strategy: str, max_length: int = 8) -> None:
        self.contract = contract
        self.dataflow = dataflow
        self.rng = rng
        self.strategy = strategy
        self.max_length = max_length
        # All external functions are fuzzed; the data-flow facts only shape
        # the *order* (state-less functions have no dependency edges, so the
        # paper's "ignore functions without state variables" rule applies to
        # the ordering analysis, not to whether a function is exercised).
        # Without an AST (source-absent contracts) the function list comes
        # from the dataflow adapter (SurfaceDataflow over the ABI).
        if contract is not None:
            self._stateful = [fn.name for fn in contract.external_functions]
        else:
            self._stateful = list(dataflow.external_names())
        self._repeat_candidates = dataflow.repeat_candidates()

    # -- base sequences ----------------------------------------------------------

    def base_sequence(self) -> list:
        """One ordered sequence according to the configured strategy."""
        if self.strategy == cfg.SEQ_RANDOM:
            order = list(self._stateful)
            self.rng.shuffle(order)
        else:
            order = self.dependency_order()
            if self.strategy == cfg.SEQ_DATAFLOW_REPEAT:
                # §IV-A: the sequence mutation both repeats critical
                # transactions and *extends* the sequence.
                order = self.apply_repeat_mutation(order)
                order = self.apply_prolongation(order)
            elif self.strategy == cfg.SEQ_DATAFLOW_PROLONG:
                order = self.apply_prolongation(order)
        # Every smart-contract fuzzer generates sequences with repetition up
        # to a fixed length; pad very short sequences so single-function
        # contracts still see multi-call interactions.
        while len(order) < min(3, self.max_length):
            order.append(self.rng.choice(self._stateful))
        return order[:self.max_length]

    def cover_sequences(self) -> list:
        """Sequences that jointly call *every* external function once,
        chunked to ``max_length`` in strategy order — the initial population
        for contracts with more functions than one sequence can hold."""
        if self.strategy == cfg.SEQ_RANDOM:
            order = list(self._stateful)
            self.rng.shuffle(order)
        else:
            order = self.dependency_order()
        chunks = [order[i:i + self.max_length]
                  for i in range(0, len(order), self.max_length)]
        if self.strategy == cfg.SEQ_DATAFLOW_REPEAT and chunks:
            chunks[0] = self.apply_repeat_mutation(
                chunks[0])[:self.max_length]
        return chunks or [self.base_sequence()]

    def dependency_order(self) -> list:
        """Kahn topological order over write→read edges (declaration order
        breaks ties and cycles)."""
        functions = list(self._stateful)
        index = {name: i for i, name in enumerate(functions)}
        edges = [(w, r) for w, r, _ in self.dataflow.write_read_edges()
                 if w in index and r in index]

        preds: dict[str, set] = {name: set() for name in functions}
        for writer, reader in edges:
            if writer != reader:
                preds[reader].add(writer)

        order: list[str] = []
        remaining = set(functions)
        while remaining:
            ready = [name for name in functions
                     if name in remaining and not (preds[name] & remaining)]
            if not ready:
                # dependency cycle: emit the declaration-first function
                ready = [min(remaining, key=index.__getitem__)]
            chosen = ready[0]
            order.append(chosen)
            remaining.discard(chosen)
        return order

    # -- MuFuzz's sequence mutation (§IV-A) ----------------------------------------

    def apply_repeat_mutation(self, order: list) -> list:
        """Duplicate RAW-candidate functions so they execute consecutively
        enough to flip self-dependent branch conditions."""
        result = list(order)
        for name in order:
            if name not in self._repeat_candidates:
                continue
            df = self.dataflow.of(name)
            affected = df.writes | df.raw_self_deps
            insert_at = self._position_before_reader(result, name, affected)
            result.insert(insert_at, name)
            if len(result) >= self.max_length:
                break
        return result

    def _position_before_reader(self, seq: list, name: str,
                                affected: set) -> int:
        """Index just before the *last* later function whose branch condition
        reads a variable the repeated function affects (append when none
        does) — this yields the paper's ``[invest, refund, invest,
        withdraw]`` shape for the Crowdsale contract."""
        start = seq.index(name) + 1
        position = len(seq)
        for i in range(start, len(seq)):
            reader_df = self.dataflow.functions.get(seq[i])
            if reader_df is not None and reader_df.branch_reads & affected:
                position = i
        return position

    # -- IR-Fuzz's prolongation -------------------------------------------------------

    def apply_prolongation(self, order: list) -> list:
        """Extend the ordered sequence with random stateful functions."""
        result = list(order)
        while len(result) < min(self.max_length, len(order) + 3):
            result.append(self.rng.choice(self._stateful))
        return result

    # -- sequence-level mutation operators ----------------------------------------------

    def mutate_sequence(self, functions: list) -> list:
        """One random sequence mutation (used by every fuzzer when it
        mutates at the transaction-order level)."""
        if not functions:
            return [self.rng.choice(self._stateful)]
        result = list(functions)
        op = self.rng.random()
        if op < 0.3 and len(result) >= 2:            # swap two positions
            i, j = self.rng.sample(range(len(result)), 2)
            result[i], result[j] = result[j], result[i]
        elif op < 0.55 and len(result) < self.max_length:  # insert
            pos = self.rng.randint(0, len(result))
            result.insert(pos, self.rng.choice(self._stateful))
        elif op < 0.75 and len(result) >= 2:         # delete
            result.pop(self.rng.randrange(len(result)))
        else:                                        # replace
            pos = self.rng.randrange(len(result))
            result[pos] = self.rng.choice(self._stateful)
        return result

    def repeat_candidates(self) -> set:
        """Functions eligible for RAW-driven duplication (for reporting)."""
        return set(self._repeat_candidates)
