"""Fuzzer configuration and the named tool presets.

Every fuzzer the paper evaluates shares one campaign loop; what
distinguishes MuFuzz, sFuzz, ConFuzzius, IR-Fuzz, and Smartian — and the
three ablated MuFuzz variants of Fig. 7 — is captured by the strategy knobs
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: sequence construction strategies (§IV-A and baselines' documented behaviour)
SEQ_RANDOM = "random"                  # sFuzz: random ordering
SEQ_DATAFLOW = "dataflow"              # ConFuzzius/Smartian: write-before-read
SEQ_DATAFLOW_REPEAT = "dataflow-repeat"  # MuFuzz: + RAW-driven repetition
SEQ_DATAFLOW_PROLONG = "dataflow-prolong"  # IR-Fuzz: + random prolongation

#: energy strategies (§IV-C and baselines)
ENERGY_UNIFORM = "uniform"   # sFuzz default scheme
ENERGY_DYNAMIC = "dynamic"   # MuFuzz: nested-score + vulnerable-reach weights
ENERGY_REVISIT = "revisit"   # IR-Fuzz: rare-branch revisiting


@dataclass
class FuzzerConfig:
    """All tunables of one fuzzing campaign.

    A campaign stops when *any* configured budget is exhausted; the three
    limits combine into the single :class:`repro.engine.budget.Budget`
    authority every engine stage consults.  ``iterations`` may be ``None``
    for open-ended time- or transaction-budgeted campaigns, but at least
    one of the three limits must be set.

    ``bug_classes`` restricts which oracles the campaign runs (``None`` =
    all nine; an empty tuple = coverage-only, no oracles).  The streaming
    oracle bus derives its event-subscription mask from this, so a
    restricted campaign also skips materializing the trace events only the
    excluded oracles would have consumed.
    """

    name: str = "MuFuzz"
    #: execution (full-sequence) budget; None = unlimited iterations
    iterations: int | None = 150
    #: transaction budget; None = unlimited transactions
    tx_budget: int | None = None
    #: wall-clock budget in seconds; None = unlimited time
    time_budget: float | None = None
    rng_seed: int = 1

    # strategy knobs
    sequence_strategy: str = SEQ_DATAFLOW_REPEAT
    use_mask: bool = True
    use_distance_feedback: bool = True
    energy_strategy: str = ENERGY_DYNAMIC

    #: oracle selection: None = all nine bug classes; otherwise a sorted
    #: tuple of BugClass values ("RE", "IO", ...) — normalized by
    #: __post_init__ so configs round-trip canonically through JSON
    bug_classes: tuple | None = None

    # sequence shape
    max_sequence_length: int = 8
    initial_population: int = 3

    # per-iteration mutation energy
    base_energy: int = 4
    max_energy: int = 16

    # mask computation cost control (probe positions per stream) and the
    # fraction of the campaign budget mask probing may consume in total
    mask_probe_limit: int = 4
    mask_budget_fraction: float = 0.15
    # probability of sending a fallback / unknown-selector transaction,
    # which is how real fuzzers cover the dispatcher's failure edges
    fallback_probability: float = 0.05

    # §VI future-work optimization: the prefix-snapshot tree memoizes
    # post-prefix chain states as journal redo deltas and fast-forwards
    # shared prefixes instead of re-executing them.  On by default: the
    # cache is a pure performance layer (campaign results are
    # byte-identical with it on or off — the golden-fixture guard pins
    # this), so the benchmarked behaviour stays faithful to the paper
    # while iterations get cheaper.
    use_state_cache: bool = True
    state_cache_capacity: int = 64

    # Vulnerability-surface oracle pruning: oracles whose bug class the
    # static surface *proves* impossible (whole-code opcode absence, never
    # reachability — see repro.analysis.surface) are dropped from the bus,
    # so their event kinds are never materialized.  On by default and
    # opt-out (--no-surface-pruning): the golden-fixture guard pins
    # campaign results byte-identical with pruning on or off.
    use_surface_pruning: bool = True

    # Block-fused EVM execution: basic blocks compile to superinstruction
    # closures (per-block gas/step prepay, baked PUSH immediates, constant
    # folding, threaded PUSH+JUMP links — see repro.evm.fusion).  On by
    # default and opt-out (--no-block-fusion / REPRO_BLOCK_FUSION=0): a
    # pure performance tier, pinned byte-identical on or off by the
    # golden-fixture guard.
    use_block_fusion: bool = True

    # execution environment
    tx_gas: int = 5_000_000
    max_steps_per_tx: int = 60_000
    deploy_balance: int = 10 ** 19  # 10 ether pre-funded
    attacker_reentry: bool = True

    # Smartian-style fresh-state re-execution per round costs extra "time";
    # modeled as an execution-step multiplier in the coverage curves.
    reexecution_overhead: float = 1.0

    def __post_init__(self) -> None:
        self.bug_classes = normalize_bug_classes(self.bug_classes)

    def variant(self, **overrides) -> "FuzzerConfig":
        """A copy with some knobs replaced (used by the ablation bench)."""
        return replace(self, **overrides)


def normalize_bug_classes(value) -> tuple | None:
    """Canonical oracle-selection form: None, or a sorted, deduplicated
    tuple of :class:`~repro.oracles.base.BugClass` *values* (plain strings,
    so configs serialize to JSON unchanged).  Accepts any iterable of
    BugClass members or their string codes; raises ``ValueError`` on an
    unknown code."""
    if value is None:
        return None
    from repro.oracles.base import BugClass
    return tuple(sorted({BugClass(getattr(bc, "value", bc)).value
                         for bc in value}))


def mufuzz_config(**overrides) -> FuzzerConfig:
    """The full MuFuzz system (§IV)."""
    return FuzzerConfig(name="MuFuzz").variant(**overrides)


def sfuzz_config(**overrides) -> FuzzerConfig:
    """sFuzz: random transaction order, AFL-style mutation, branch-distance
    seed selection, uniform energy."""
    return FuzzerConfig(
        name="sFuzz",
        sequence_strategy=SEQ_RANDOM,
        use_mask=False,
        use_distance_feedback=True,
        energy_strategy=ENERGY_UNIFORM,
    ).variant(**overrides)


def confuzzius_config(**overrides) -> FuzzerConfig:
    """ConFuzzius: data-dependency ordering, random input mutation."""
    return FuzzerConfig(
        name="ConFuzzius",
        sequence_strategy=SEQ_DATAFLOW,
        use_mask=False,
        use_distance_feedback=True,
        energy_strategy=ENERGY_UNIFORM,
    ).variant(**overrides)


def irfuzz_config(**overrides) -> FuzzerConfig:
    """IR-Fuzz: invocation ordering + prolongation + branch revisiting."""
    return FuzzerConfig(
        name="IR-Fuzz",
        sequence_strategy=SEQ_DATAFLOW_PROLONG,
        use_mask=False,
        use_distance_feedback=True,
        energy_strategy=ENERGY_REVISIT,
    ).variant(**overrides)


def smartian_config(**overrides) -> FuzzerConfig:
    """Smartian: data-flow ordering, coverage feedback only, and per-round
    fresh-state re-execution (its documented overhead, §VI)."""
    return FuzzerConfig(
        name="Smartian",
        sequence_strategy=SEQ_DATAFLOW,
        use_mask=False,
        use_distance_feedback=False,
        energy_strategy=ENERGY_UNIFORM,
        reexecution_overhead=1.6,
    ).variant(**overrides)


#: preset key → config factory; the shared registry behind ``repro fuzz
#: --fuzzer``, ``repro campaign --fuzzers`` and the orchestrator job model.
PRESET_CONFIGS = {
    "mufuzz": mufuzz_config,
    "sfuzz": sfuzz_config,
    "confuzzius": confuzzius_config,
    "irfuzz": irfuzz_config,
    "smartian": smartian_config,
}


def preset_config(preset: str, **overrides) -> FuzzerConfig:
    """Build a :class:`FuzzerConfig` from a registry key plus overrides."""
    try:
        factory = PRESET_CONFIGS[preset]
    except KeyError:
        raise ValueError(
            f"unknown fuzzer preset {preset!r}; "
            f"known: {', '.join(sorted(PRESET_CONFIGS))}") from None
    return factory(**overrides)
