"""Seeds: transaction sequences with inputs, plus the seed queue.

A *seed* is one complete test case — an ordered list of transactions
(function, arguments, msg.value, sender).  For byte-level mutation each
transaction exposes a *stream* view: its argument words and value word
concatenated big-endian, exactly the representation Algorithms 1–2 mutate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD = 32


@dataclass
class TxCall:
    """One transaction in a seed."""

    function: str
    args: list = field(default_factory=list)
    value: int = 0
    sender: int = 0

    # -- byte-stream view (Algorithm 1/2 operate on this) ---------------------

    def to_stream(self) -> bytes:
        """Arguments followed by msg.value, one 32-byte word each."""
        words = list(self.args) + [self.value]
        return b"".join((w % (1 << 256)).to_bytes(WORD, "big") for w in words)

    def apply_stream(self, stream: bytes) -> "TxCall":
        """A copy with args/value decoded back from a (possibly resized)
        mutated stream; the word count is restored by zero-pad/truncate."""
        n_args = len(self.args)
        needed = (n_args + 1) * WORD
        stream = stream[:needed] + b"\x00" * max(0, needed - len(stream))
        words = [int.from_bytes(stream[i * WORD:(i + 1) * WORD], "big")
                 for i in range(n_args + 1)]
        return TxCall(function=self.function, args=words[:n_args],
                      value=words[n_args], sender=self.sender)

    def clone(self) -> "TxCall":
        return TxCall(function=self.function, args=list(self.args),
                      value=self.value, sender=self.sender)


@dataclass
class Seed:
    """A test case plus the fitness facts feedback attaches to it."""

    calls: list = field(default_factory=list)  # list[TxCall]
    #: branch edges (pc, taken) this seed covered on its last execution
    covered_edges: set = field(default_factory=set)
    #: min distance per uncovered target (addr, pc, taken) from last run
    distances: dict = field(default_factory=dict)
    #: nested-branch pcs this seed hit (branch events at nesting >= 2)
    nested_hits: set = field(default_factory=set)
    #: True when this seed lowered the global distance to some target
    improved_distance: bool = False
    energy: int = 0
    generation: int = 0

    def clone(self) -> "Seed":
        return Seed(calls=[c.clone() for c in self.calls],
                    generation=self.generation + 1)

    @property
    def functions(self) -> list:
        return [c.function for c in self.calls]

    def __len__(self) -> int:
        return len(self.calls)


class SeedQueue:
    """The evolving corpus: seeds enter on new coverage or better distance."""

    def __init__(self) -> None:
        self.seeds: list[Seed] = []

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self):
        return iter(self.seeds)

    def add(self, seed: Seed) -> None:
        self.seeds.append(seed)

    def best_for_target(self, target) -> Seed | None:
        """The seed with the smallest recorded distance to ``target``
        (branch-distance-feedback selection, Algorithm 1 lines 7–13)."""
        best: Seed | None = None
        best_dist: int | None = None
        for seed in self.seeds:
            dist = seed.distances.get(target)
            if dist is None:
                continue
            if best_dist is None or dist < best_dist:
                best, best_dist = seed, dist
        return best

    def maskable(self) -> list:
        """Seeds eligible for mask-guided mutation (Algorithm 1 line 17):
        they hit a nested branch or improved some branch distance."""
        return [s for s in self.seeds if s.nested_hits or s.improved_distance]
