"""Seeds: transaction sequences with inputs, plus the seed queue.

A *seed* is one complete test case — an ordered list of transactions
(function, arguments, msg.value, sender).  For byte-level mutation each
transaction exposes a *stream* view: its argument words and value word
concatenated big-endian, exactly the representation Algorithms 1–2 mutate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD = 32

#: pseudo-function names for dispatcher-edge probing transactions
FALLBACK_CALL = "#fallback"
BAD_SELECTOR_CALL = "#badselector"
SPECIAL_CALLS = (FALLBACK_CALL, BAD_SELECTOR_CALL)


@dataclass
class TxCall:
    """One transaction in a seed."""

    function: str
    args: list = field(default_factory=list)
    value: int = 0
    sender: int = 0

    # -- byte-stream view (Algorithm 1/2 operate on this) ---------------------

    def to_stream(self) -> bytes:
        """Arguments followed by msg.value, one 32-byte word each."""
        words = list(self.args) + [self.value]
        return b"".join((w % (1 << 256)).to_bytes(WORD, "big") for w in words)

    def apply_stream(self, stream: bytes) -> "TxCall":
        """A copy with args/value decoded back from a (possibly resized)
        mutated stream; the word count is restored by zero-pad/truncate."""
        n_args = len(self.args)
        needed = (n_args + 1) * WORD
        stream = stream[:needed] + b"\x00" * max(0, needed - len(stream))
        words = [int.from_bytes(stream[i * WORD:(i + 1) * WORD], "big")
                 for i in range(n_args + 1)]
        return TxCall(function=self.function, args=words[:n_args],
                      value=words[n_args], sender=self.sender)

    def clone(self) -> "TxCall":
        return TxCall(function=self.function, args=list(self.args),
                      value=self.value, sender=self.sender)

    # -- checkpoint serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return {"function": self.function, "args": list(self.args),
                "value": self.value, "sender": self.sender}

    @classmethod
    def from_dict(cls, data: dict) -> "TxCall":
        return cls(function=data["function"],
                   args=[int(a) for a in data.get("args", ())],
                   value=int(data.get("value", 0)),
                   sender=int(data.get("sender", 0)))


@dataclass
class Seed:
    """A test case plus the fitness facts feedback attaches to it."""

    calls: list = field(default_factory=list)  # list[TxCall]
    #: branch edges (pc, taken) this seed covered on its last execution
    covered_edges: set = field(default_factory=set)
    #: min distance per uncovered target (addr, pc, taken) from last run
    distances: dict = field(default_factory=dict)
    #: nested-branch pcs this seed hit (branch events at nesting >= 2)
    nested_hits: set = field(default_factory=set)
    #: True when this seed lowered the global distance to some target
    improved_distance: bool = False
    generation: int = 0

    def clone(self) -> "Seed":
        return Seed(calls=[c.clone() for c in self.calls],
                    generation=self.generation + 1)

    @property
    def functions(self) -> list:
        return [c.function for c in self.calls]

    def __len__(self) -> int:
        return len(self.calls)

    # -- checkpoint serialization ---------------------------------------------
    # Sets and dicts are serialized in sorted order so checkpoint bytes are
    # canonical; restoring order-insensitive state from sorted form is exact.

    def to_dict(self) -> dict:
        return {
            "calls": [c.to_dict() for c in self.calls],
            "covered_edges": sorted([pc, taken]
                                    for pc, taken in self.covered_edges),
            "distances": sorted(
                [[list(key), dist] for key, dist in self.distances.items()]),
            "nested_hits": sorted(self.nested_hits),
            "improved_distance": self.improved_distance,
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Seed":
        return cls(
            calls=[TxCall.from_dict(c) for c in data.get("calls", ())],
            covered_edges={(int(pc), bool(taken))
                           for pc, taken in data.get("covered_edges", ())},
            distances={(int(a), int(pc), bool(t)): int(dist)
                       for (a, pc, t), dist in data.get("distances", ())},
            nested_hits={int(pc) for pc in data.get("nested_hits", ())},
            improved_distance=bool(data.get("improved_distance", False)),
            generation=int(data.get("generation", 0)),
        )


class SeedQueue:
    """The evolving corpus: seeds enter on new coverage or better distance.

    Alongside the seed list the queue maintains a target → best-seed index
    (smallest recorded branch distance per uncovered target), updated
    incrementally as seeds are added — ``best_for_target`` is O(1) instead
    of a scan over the whole corpus.  A seed's ``distances`` must be final
    before :meth:`add` (the fuzzer attaches feedback before retention).
    """

    def __init__(self) -> None:
        self.seeds: list[Seed] = []
        #: target (addr, pc, taken) -> (best distance, queue index)
        self._target_best: dict = {}

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self):
        return iter(self.seeds)

    def add(self, seed: Seed) -> None:
        index = len(self.seeds)
        self.seeds.append(seed)
        for target, dist in seed.distances.items():
            best = self._target_best.get(target)
            # strict improvement only: on ties the earliest seed wins,
            # matching the historical first-match queue scan
            if best is None or dist < best[0]:
                self._target_best[target] = (dist, index)

    def best_for_target(self, target) -> Seed | None:
        """The seed with the smallest recorded distance to ``target``
        (branch-distance-feedback selection, Algorithm 1 lines 7–13)."""
        index = self.index_for_target(target)
        return None if index is None else self.seeds[index]

    def index_for_target(self, target) -> int | None:
        """Queue index of :meth:`best_for_target`'s answer (engine-internal:
        the campaign loop tracks its selected seed by queue position)."""
        entry = self._target_best.get(target)
        return None if entry is None else entry[1]

    def maskable(self) -> list:
        """Seeds eligible for mask-guided mutation (Algorithm 1 line 17):
        they hit a nested branch or improved some branch distance."""
        return [s for s in self.seeds if s.nested_hits or s.improved_distance]
