"""Campaign results: what one fuzzing run reports."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CampaignResult:
    """Summary of one fuzzing campaign on one contract."""

    fuzzer: str
    contract: str
    coverage: float
    iterations: int
    total_steps: int
    wall_time: float
    findings: list = field(default_factory=list)
    #: (cumulative steps, coverage fraction) samples
    curve: list = field(default_factory=list)
    seeds_in_queue: int = 0
    transactions: int = 0
    #: sequence the fuzzer converged on most recently (for case studies)
    example_sequence: list = field(default_factory=list)

    @property
    def bug_classes(self) -> set:
        return {f.bug_class for f in self.findings}

    def findings_by_class(self) -> dict:
        out: dict = {}
        for finding in self.findings:
            out.setdefault(finding.bug_class, []).append(finding)
        return out

    def coverage_at_step(self, step: int) -> float:
        """Coverage the campaign had reached by ``step`` executed
        instructions (the curves' shared x-axis)."""
        best = 0.0
        for s, cov in self.curve:
            if s <= step:
                best = cov
            else:
                break
        return best
