"""Campaign results: what one fuzzing run reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oracles.base import Finding


@dataclass
class CampaignResult:
    """Summary of one fuzzing campaign on one contract."""

    fuzzer: str
    contract: str
    coverage: float
    iterations: int
    total_steps: int
    wall_time: float
    findings: list = field(default_factory=list)
    #: (cumulative steps, coverage fraction) samples
    curve: list = field(default_factory=list)
    seeds_in_queue: int = 0
    transactions: int = 0
    #: sequence the fuzzer converged on most recently (for case studies)
    example_sequence: list = field(default_factory=list)

    @property
    def bug_classes(self) -> set:
        return {f.bug_class for f in self.findings}

    def findings_by_class(self) -> dict:
        out: dict = {}
        for finding in self.findings:
            out.setdefault(finding.bug_class, []).append(finding)
        return out

    def coverage_at_step(self, step: int) -> float:
        """Coverage the campaign had reached by ``step`` executed
        instructions (the curves' shared x-axis)."""
        best = 0.0
        for s, cov in self.curve:
            if s <= step:
                best = cov
            else:
                break
        return best

    # -- persistence (orchestrator result store) ---------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "fuzzer": self.fuzzer,
            "contract": self.contract,
            "coverage": self.coverage,
            "iterations": self.iterations,
            "total_steps": self.total_steps,
            "wall_time": self.wall_time,
            "findings": [f.to_dict() for f in self.findings],
            "curve": [[int(step), float(cov)] for step, cov in self.curve],
            "seeds_in_queue": self.seeds_in_queue,
            "transactions": self.transactions,
            "example_sequence": list(self.example_sequence),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            fuzzer=data["fuzzer"],
            contract=data["contract"],
            coverage=float(data["coverage"]),
            iterations=int(data["iterations"]),
            total_steps=int(data["total_steps"]),
            wall_time=float(data.get("wall_time", 0.0)),
            findings=[Finding.from_dict(f)
                      for f in data.get("findings", ())],
            curve=[(int(step), float(cov))
                   for step, cov in data.get("curve", ())],
            seeds_in_queue=int(data.get("seeds_in_queue", 0)),
            transactions=int(data.get("transactions", 0)),
            example_sequence=list(data.get("example_sequence", ())),
        )
