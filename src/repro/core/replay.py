"""Deterministic witness replay: re-trigger findings from stored sequences.

Every :class:`~repro.oracles.base.Finding` a campaign reports carries a
*witness* — the serialized transaction prefix that first triggered it.
Replaying a witness rebuilds the campaign's execution environment from the
same config (same RNG seed → same constructor arguments and deployment,
same agents and account set), runs exactly the witness transactions from
the post-deployment base state, and checks that the finding's dedup key
fires again.  ``repro replay`` drives this from persisted result records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.cache import compile_cached
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import Fuzzer
from repro.oracles.base import BugClass, Finding


@dataclass
class ReplayOutcome:
    """The verdict for one finding's witness."""

    finding: Finding
    #: "retriggered" | "missed" | "no-witness"
    status: str

    @property
    def ok(self) -> bool:
        return self.status == "retriggered"


def replay_finding(artifact, config: FuzzerConfig, finding: Finding,
                   supported=None) -> bool:
    """True when ``finding``'s witness re-triggers it (fresh environment)."""
    fuzzer = Fuzzer(artifact, config, supported)
    return fuzzer.replay(finding)


def replay_findings(source_or_artifact, config: FuzzerConfig, findings,
                    contract: str | None = None,
                    supported=None) -> list:
    """Replay each finding's witness; one :class:`ReplayOutcome` apiece.

    ``source_or_artifact`` is MiniSol source (compiled through the
    process-local cache) or a prebuilt
    :class:`~repro.compiler.artifacts.CompiledContract`.  Each finding
    replays in a *fresh* fuzzer so verdicts are independent.
    """
    artifact = source_or_artifact
    if isinstance(artifact, str):
        artifact = compile_cached(artifact, contract)
    outcomes = []
    for finding in findings:
        if not finding.witness:
            outcomes.append(ReplayOutcome(finding, "no-witness"))
            continue
        ok = replay_finding(artifact, config, finding, supported)
        outcomes.append(ReplayOutcome(finding,
                                      "retriggered" if ok else "missed"))
    return outcomes


def replay_record(record: dict) -> list:
    """Replay every finding of one persisted result-store record.

    The record (see :meth:`repro.orchestrator.store.ResultStore.save`)
    embeds the contract source, the resolved config, the oracle
    restriction, and the findings — everything replay needs, so a results
    directory is self-contained evidence.
    """
    config = FuzzerConfig(**record["config"])
    supported = record.get("supported_bug_classes")
    if supported is not None:
        supported = {BugClass(value) for value in supported}
    findings = [Finding.from_dict(data)
                for data in record["result"].get("findings", ())]
    return replay_findings(record["source"], config, findings,
                           contract=record.get("contract"),
                           supported=supported)
