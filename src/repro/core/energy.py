"""Dynamic-adaptive energy adjustment (§IV-C, Algorithm 3).

A pre-fuzz run collects a path; every branch on it receives a weight:

* ``w1`` — its nested score (number of branch instructions on the path
  prefix up to it, Algorithm 3 lines 6–10), and
* ``w2`` — a bonus when the path-prefix analysis shows a vulnerable
  instruction is reachable past the branch (lines 11–15).

During fuzzing, a seed's mutation energy scales with the total weight of the
branches it exercises, so deeply nested and vulnerability-adjacent regions
receive more of the budget.  The scheduler also implements the baselines'
schemes: uniform (sFuzz) and rare-branch revisiting (IR-Fuzz).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.prefix import PrefixAnalyzer
from repro.core import config as cfg
from repro.core.seeds import Seed
from repro.evm.trace import ExecutionTrace

#: extra weight for a branch from which a vulnerable instruction is reachable
VULNERABLE_BONUS = 4.0
#: weight per unit of nested score
NESTED_UNIT = 1.0


@dataclass
class EnergyScheduler:
    """Per-campaign energy bookkeeping."""

    strategy: str
    prefix: PrefixAnalyzer
    base_energy: int = 4
    max_energy: int = 16
    weights: dict = field(default_factory=dict)      # pc -> weight
    hit_counts: dict = field(default_factory=dict)   # (pc, taken) -> hits
    _max_weight: float = 1.0

    # -- pre-fuzz phase (Algorithm 3) -----------------------------------------

    def prefuzz(self, trace: ExecutionTrace, target_address: int) -> None:
        """Initialize branch weights from one instrumented pre-fuzz path."""
        path = [e for e in trace.branches if e.address == target_address]
        nested = self.prefix.nested_scores(path)
        for event in path:
            w1 = NESTED_UNIT * nested.get(event.pc, 1)
            reach = self.prefix.reachability(event.pc)
            w2 = VULNERABLE_BONUS if reach.any_vulnerable else 0.0
            weight = w1 + w2
            if weight > self.weights.get(event.pc, 0.0):
                self.weights[event.pc] = weight
        if self.weights:
            self._max_weight = max(self.weights.values())

    # -- per-execution bookkeeping ------------------------------------------------

    def record(self, trace: ExecutionTrace, target_address: int) -> None:
        """Update hit counts (revisit scheme) and extend weights to newly
        discovered branches."""
        for event in trace.branches:
            if event.address != target_address:
                continue
            key = (event.pc, event.taken)
            self.hit_counts[key] = self.hit_counts.get(key, 0) + 1
            if event.pc not in self.weights:
                reach = self.prefix.reachability(event.pc)
                w2 = VULNERABLE_BONUS if reach.any_vulnerable else 0.0
                self.weights[event.pc] = NESTED_UNIT + w2
                self._max_weight = max(self._max_weight,
                                       self.weights[event.pc])

    # -- energy assignment ------------------------------------------------------------

    def energy_for(self, seed: Seed) -> int:
        """Mutation energy for one selected seed."""
        if self.strategy == cfg.ENERGY_UNIFORM:
            return self.base_energy
        if self.strategy == cfg.ENERGY_REVISIT:
            return self._revisit_energy(seed)
        return self._dynamic_energy(seed)

    def _dynamic_energy(self, seed: Seed) -> int:
        touched = {pc for (pc, _taken) in seed.covered_edges}
        if not touched or not self.weights:
            return self.base_energy
        top = max(self.weights.get(pc, 0.0) for pc in touched)
        scale = 1.0 + top / max(self._max_weight, 1.0)
        return min(self.max_energy, max(1, round(self.base_energy * scale)))

    def _revisit_energy(self, seed: Seed) -> int:
        """IR-Fuzz: seeds covering rarely-hit branches get more energy."""
        if not seed.covered_edges:
            return self.base_energy
        rarest = min(self.hit_counts.get(edge, 1)
                     for edge in seed.covered_edges)
        scale = 1.0 + 1.0 / max(rarest, 1)
        return min(self.max_energy, max(1, round(self.base_energy * scale)))

    # -- reporting ---------------------------------------------------------------------

    def weight_of(self, pc: int) -> float:
        return self.weights.get(pc, 0.0)

    # -- checkpoint serialization ------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "weights": sorted([pc, w] for pc, w in self.weights.items()),
            "hit_counts": sorted([pc, taken, n] for (pc, taken), n
                                 in self.hit_counts.items()),
            "max_weight": self._max_weight,
        }

    def restore_state(self, data: dict) -> None:
        self.weights = {int(pc): float(w)
                        for pc, w in data.get("weights", ())}
        self.hit_counts = {(int(pc), bool(taken)): int(n)
                           for pc, taken, n in data.get("hit_counts", ())}
        self._max_weight = float(data.get("max_weight", 1.0))
